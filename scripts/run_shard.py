#!/usr/bin/env python3
"""Multi-host campaign orchestration: run one shard, or merge shard caches.

The campaign key space is content-addressed, so distributing a figure sweep
across hosts is three commands (see also ``tdm-repro --shard/--merge-shards``,
which exposes the same machinery on the installed CLI)::

    # on each host i of N (shared filesystem: point all at one --cache-dir)
    python scripts/run_shard.py worker figure_12 --shard i/N \\
        --scale 0.2 --jobs 8 --cache-dir shards/i

    # anywhere, after collecting the shard directories
    python scripts/run_shard.py merge figure_12 --sources shards/* \\
        --scale 0.2 --cache-dir merged --output results --csv

Each worker writes a manifest (keys attempted, cache hits, simulations,
failures with their canonical keys and workload parameters, wall time) under
``<cache-dir>/manifests/``.  The merge step unions caches and manifests,
refuses to render unless every planned key is present (``--allow-incomplete``
overrides, simulating the gaps locally), and then renders output that is
byte-identical to a serial ``tdm-repro`` run: a dead shard is repaired by
simply rerunning it — surviving cache entries are pure warm-up hits.

Straggler control: ``--shard-strategy cost`` balances the bins by predicted
wall time (calibrated from ``<cache-dir>/cost_profile.json``, which workers
and merges keep updated from observed per-key timings), and ``--steal``
lets a drained shard absorb unfinished keys of its peers through atomic
claim files in a shared cache directory.  Both affect planning only —
canonical keys and merged bytes are unchanged.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.errors import ExperimentError
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import run_experiment
from repro.experiments.shard import (
    PLAN_STRATEGIES,
    ShardSpec,
    merge_shards,
    run_shard_worker,
)


def add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", help="experiment name (e.g. figure_12)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="problem scale in (0, 1]; must match across shards")
    parser.add_argument("--seed", type=int, default=0,
                        help="workload seed; must match across shards")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmark subset; must match across shards")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes on this host")
    parser.add_argument("--cache-dir", type=pathlib.Path, required=True,
                        help="result cache directory (shared or per-shard)")
    parser.add_argument("--verbose", action="store_true")


def build_runner(args: argparse.Namespace) -> SimulationRunner:
    return SimulationRunner(scale=args.scale, seed=args.seed, jobs=args.jobs,
                            cache_dir=args.cache_dir, verbose=args.verbose)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    commands = parser.add_subparsers(dest="command", required=True)

    worker = commands.add_parser("worker", help="simulate one shard of a sweep")
    add_runner_arguments(worker)
    worker.add_argument("--shard", metavar="I/N", required=True,
                        help="this host's shard (1-based), e.g. 2/3")
    worker.add_argument("--manifest", type=pathlib.Path, default=None,
                        help="manifest path (default: <cache-dir>/manifests/...)")
    worker.add_argument("--shard-strategy", choices=PLAN_STRATEGIES, default="modulo",
                        help="partition strategy: 'modulo' (default) or 'cost' "
                        "(LPT by predicted wall time; must match across shards)")
    worker.add_argument("--steal", action="store_true",
                        help="after draining this shard's bin, claim unfinished keys "
                        "of other shards via atomic claim files (requires a shared "
                        "--cache-dir across workers)")

    merge = commands.add_parser("merge", help="union shard caches, verify, render")
    add_runner_arguments(merge)
    merge.add_argument("--sources", metavar="DIR", nargs="+", type=pathlib.Path,
                       required=True, help="shard cache directories to union")
    merge.add_argument("--output", type=pathlib.Path, default=None,
                       help="directory for Markdown/CSV output (default: stdout)")
    merge.add_argument("--csv", action="store_true", help="also write CSV with --output")
    merge.add_argument("--allow-incomplete", action="store_true",
                       help="render even if planned keys are missing")

    args = parser.parse_args()
    runner = build_runner(args)

    try:
        if args.command == "worker":
            manifest = run_shard_worker(args.experiment, ShardSpec.parse(args.shard),
                                        runner, benchmarks=args.benchmarks,
                                        manifest=args.manifest,
                                        strategy=args.shard_strategy,
                                        steal=args.steal)
            return manifest.report()

        report = merge_shards(args.experiment, args.sources, runner,
                              benchmarks=args.benchmarks)
        print(report.summary())
        if not args.allow_incomplete:
            report.verify()
        result = run_experiment(args.experiment, scale=args.scale,
                                benchmarks=args.benchmarks, runner=runner)
        rendered = runner.cache_info()["simulations_run"]
        if rendered:
            print(f"[merge] note: {rendered} points simulated locally during render")
        if args.output is None:
            print(result.to_markdown())
        else:
            args.output.mkdir(parents=True, exist_ok=True)
            markdown = args.output / f"{result.experiment}.md"
            markdown.write_text(result.to_markdown(), encoding="utf-8")
            if args.csv:
                (args.output / f"{result.experiment}.csv").write_text(
                    result.to_csv(), encoding="utf-8")
            print(f"wrote {markdown}")
        return 0
    except ExperimentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
