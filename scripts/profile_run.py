#!/usr/bin/env python3
"""cProfile one figure run so the next perf PR starts from data, not guesses.

Profiles a single experiment end to end (workload build, simulation,
analysis) under ``cProfile`` and prints the top-N entries by cumulative and
by internal time.  Optionally dumps the raw ``pstats`` file for interactive
drill-down (``python -m pstats dump.prof``) or for tools like snakeviz.

The runner is constructed fresh and uncached, so the profile reflects *cold*
simulation cost — the same thing ``scripts/bench_engine.py`` measures.

Usage::

    PYTHONPATH=src python scripts/profile_run.py --experiment figure_12
    PYTHONPATH=src python scripts/profile_run.py --experiment figure_02 \
        --benchmark blackscholes --benchmark cholesky --scale 0.05 \
        --top 40 --sort tottime --pstats /tmp/fig02.prof
"""

from __future__ import annotations

import argparse
import cProfile
import pathlib
import pstats
import sys


def main() -> None:
    from repro.config import DMU_BACKENDS

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", default="figure_12",
                        help="experiment name from the registry (default: figure_12)")
    parser.add_argument("--benchmark", action="append", default=None,
                        help="benchmark to include (repeatable; default: the "
                             "bench_engine smoke set)")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--backend", choices=DMU_BACKENDS, default=None,
                        help="DMU storage backend to profile (default: pure); "
                             "'accel' falls back to pure when numpy is missing")
    parser.add_argument("--top", type=int, default=30,
                        help="rows to print per table (default: 30)")
    parser.add_argument("--sort", choices=["cumulative", "tottime", "both"],
                        default="both", help="stats ordering (default: both tables)")
    parser.add_argument("--pstats", type=pathlib.Path, default=None,
                        help="also dump the raw pstats file here")
    args = parser.parse_args()

    from repro.core.backends import resolve_backend
    from repro.experiments.common import SimulationRunner
    from repro.experiments.registry import run_experiment

    benchmarks = args.benchmark or ["blackscholes", "cholesky", "qr"]
    # Resolve once up front: the requested backend may fall back (accel
    # without numpy), and the header below must name what actually ran.
    backend = resolve_backend(args.backend).name
    runner = SimulationRunner(scale=args.scale, backend=backend)

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_experiment(
        args.experiment, scale=args.scale, benchmarks=benchmarks, runner=runner
    )
    profiler.disable()

    print(f"profiled {args.experiment} scale={args.scale} backend={backend} "
          f"benchmarks={benchmarks} ({len(result.rows)} rows, "
          f"{runner.cache_info()['simulations_run']} simulations)\n")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    orders = ("cumulative", "tottime") if args.sort == "both" else (args.sort,)
    for order in orders:
        print(f"==== top {args.top} by {order} " + "=" * 30)
        stats.sort_stats(order).print_stats(args.top)
    if args.pstats is not None:
        stats.dump_stats(str(args.pstats))
        print(f"pstats dump written to {args.pstats}")


if __name__ == "__main__":
    main()
