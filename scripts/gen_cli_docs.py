#!/usr/bin/env python3
"""Generate ``docs/cli.md`` from the ``tdm-repro`` argparse tree.

The reference is *generated, never hand-edited*: every option row comes
straight from :func:`repro.experiments.cli.build_parser`, so a flag added,
renamed or re-documented in the parser shows up here by rerunning the
script — and ``tests/test_docs.py`` (plus the CI ``docs`` job) regenerates
the page and fails on any drift between the parser and the committed file.

Usage::

    PYTHONPATH=src python scripts/gen_cli_docs.py           # (re)write docs/cli.md
    PYTHONPATH=src python scripts/gen_cli_docs.py --check   # exit 1 on drift
"""

from __future__ import annotations

import os
import sys

# argparse wraps its usage string to the terminal width; pin it so the
# generated page is identical on every machine (and in CI).
os.environ["COLUMNS"] = "100"

import argparse  # noqa: E402  (after COLUMNS pin, see above)
import pathlib  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.cli import build_parser  # noqa: E402

OUTPUT = REPO_ROOT / "docs" / "cli.md"

HEADER = """\
# `tdm-repro` command-line reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: PYTHONPATH=src python scripts/gen_cli_docs.py
     tests/test_docs.py and the CI docs job fail when this page drifts
     from the argparse tree in src/repro/experiments/cli.py. -->
"""


def _escape(text: str) -> str:
    return text.replace("|", "\\|")


def _value_placeholder(action: argparse.Action) -> str:
    """The value an option consumes, as argparse would render it."""
    if action.nargs == 0:
        return ""
    metavar = action.metavar
    if metavar is None:
        metavar = action.dest.upper()
    if isinstance(metavar, tuple):  # pragma: no cover - not used by tdm-repro
        metavar = " ".join(metavar)
    if action.nargs in ("+", "*"):
        return f"{metavar} [{metavar} ...]" if action.nargs == "+" else f"[{metavar} ...]"
    return str(metavar)


def _default_cell(action: argparse.Action) -> str:
    if action.nargs == 0 or action.default is argparse.SUPPRESS:
        return ""
    if action.default is None:
        return ""
    return f"`{action.default}`"


def generate() -> str:
    parser = build_parser()
    lines = [HEADER]
    lines.append(
        f"One executable, `{parser.prog}` (or `PYTHONPATH=src python -m "
        "repro.experiments.cli` from a checkout): it renders any of the "
        "paper's figures and tables, fans sweeps out over local processes, "
        "persists results in content-addressed caches, and runs/merges "
        "multi-host shards.  See [figures.md](figures.md) for what each "
        "experiment reproduces and [architecture.md](architecture.md) for "
        "the campaign machinery underneath."
    )
    lines.append("")
    lines.append("## Usage")
    lines.append("")
    lines.append("```text")
    lines.append(parser.format_usage().strip())
    lines.append("```")
    lines.append("")
    lines.append(f"{_escape(parser.description or '')}")
    lines.append("")

    positionals = [a for a in parser._actions if not a.option_strings]
    options = [a for a in parser._actions if a.option_strings]

    if positionals:
        lines.append("## Positional arguments")
        lines.append("")
        lines.append("| argument | description |")
        lines.append("| --- | --- |")
        for action in positionals:
            lines.append(f"| `{action.dest}` | {_escape(action.help or '')} |")
        lines.append("")

    lines.append("## Options")
    lines.append("")
    lines.append("| option | default | description |")
    lines.append("| --- | --- | --- |")
    for action in options:
        flags = ", ".join(f"`{flag}`" for flag in action.option_strings)
        placeholder = _value_placeholder(action)
        if placeholder:
            flags += f" `{_escape(placeholder)}`"
        lines.append(
            f"| {flags} | {_default_cell(action)} | {_escape(action.help or '')} |"
        )
    lines.append("")

    lines.append("## Examples")
    lines.append("")
    lines.append(
        "The module docstring of `repro.experiments.cli` is the canonical "
        "example set (shard workers, merges, cache budgets):"
    )
    lines.append("")
    lines.append("```text")
    import repro.experiments.cli as cli_module

    lines.append((cli_module.__doc__ or "").strip())
    lines.append("```")
    lines.append("")
    lines.append(
        "Related drivers (same campaign machinery, no package install "
        "needed): `scripts/run_campaign.py` (full campaign), "
        "`scripts/run_shard.py` (`worker`/`merge` subcommands), "
        "`scripts/run_server.py` (the results daemon, the script twin of "
        "`tdm-repro serve`), `scripts/bench_smoke.py` and "
        "`scripts/bench_engine.py` (benchmark records)."
    )
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    check = "--check" in sys.argv[1:]
    rendered = generate()
    if check:
        current = OUTPUT.read_text(encoding="utf-8") if OUTPUT.exists() else ""
        if current != rendered:
            sys.stderr.write(
                "docs/cli.md is out of date with the tdm-repro argparse tree;\n"
                "regenerate with: PYTHONPATH=src python scripts/gen_cli_docs.py\n"
            )
            return 1
        print("docs/cli.md is up to date")
        return 0
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(rendered, encoding="utf-8")
    print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
