#!/usr/bin/env python3
"""Remaining design-space figures for EXPERIMENTS.md (7, 8, 9, 11).

Environment knobs (all optional): ``REPRO_BENCH_JOBS`` (worker processes,
default 1), ``REPRO_BENCH_CACHE_DIR`` (persistent result cache, default
none) and ``REPRO_BENCH_BACKEND`` (DMU storage backend, default the config
default).  The pre-backend spellings ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
are still honored with a :class:`DeprecationWarning`.
"""
import os, pathlib, time, warnings
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import run_experiment


def bench_env(name: str, deprecated: str = None) -> str:
    """``REPRO_BENCH_<name>`` from the environment, or None when unset.

    ``deprecated`` names the pre-PR6 spelling (e.g. ``REPRO_JOBS``); it is
    accepted with a DeprecationWarning, but the new name wins when both are
    set.  Empty values count as unset either way.
    """
    value = os.environ.get(f"REPRO_BENCH_{name}")
    if value:
        return value
    if deprecated:
        value = os.environ.get(deprecated)
        if value:
            warnings.warn(
                f"{deprecated} is deprecated; use REPRO_BENCH_{name} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return value
    return None


def main() -> None:
    out = pathlib.Path("results"); out.mkdir(exist_ok=True)
    runner = SimulationRunner(scale=0.25, verbose=True,
                              jobs=int(bench_env("JOBS", "REPRO_JOBS") or "1"),
                              cache_dir=bench_env("CACHE_DIR", "REPRO_CACHE_DIR"),
                              backend=bench_env("BACKEND"))
    plan = [
        ("figure_07", dict(benchmarks=["cholesky", "histogram", "qr", "lu", "ferret"])),
        ("figure_08", dict(benchmarks=["cholesky", "histogram", "qr"])),
        ("figure_09", dict(benchmarks=["cholesky", "lu", "qr"])),
        ("figure_11", dict(benchmarks=["blackscholes", "cholesky", "fluidanimate", "histogram", "qr"])),
    ]
    for name, kwargs in plan:
        t0 = time.time()
        print(f"=== running {name}", flush=True)
        result = run_experiment(name, scale=0.25, runner=runner, **kwargs)
        (out / f"{result.experiment}.md").write_text(result.to_markdown(), encoding="utf-8")
        print(f"=== {name} done in {time.time()-t0:.1f}s", flush=True)


if __name__ == "__main__":  # required: the process pool re-imports this module
    main()
