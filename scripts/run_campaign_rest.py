#!/usr/bin/env python3
"""Remaining design-space figures for EXPERIMENTS.md (7, 8, 9, 11).

Environment knobs (all optional): ``REPRO_BENCH_JOBS`` (worker processes,
default 1), ``REPRO_BENCH_CACHE_DIR`` (persistent result cache, default
none) and ``REPRO_BENCH_BACKEND`` (DMU storage backend, default the config
default).  The pre-backend spellings ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``
are still honored with a :class:`DeprecationWarning`; the shared handling
lives in :mod:`repro.experiments.env`.
"""
import pathlib, time
from repro.experiments.common import SimulationRunner
from repro.experiments.env import bench_backend, bench_cache_dir, bench_jobs
from repro.experiments.registry import run_experiment


def main() -> None:
    out = pathlib.Path("results"); out.mkdir(exist_ok=True)
    runner = SimulationRunner(scale=0.25, verbose=True,
                              jobs=bench_jobs(),
                              cache_dir=bench_cache_dir(),
                              backend=bench_backend())
    plan = [
        ("figure_07", dict(benchmarks=["cholesky", "histogram", "qr", "lu", "ferret"])),
        ("figure_08", dict(benchmarks=["cholesky", "histogram", "qr"])),
        ("figure_09", dict(benchmarks=["cholesky", "lu", "qr"])),
        ("figure_11", dict(benchmarks=["blackscholes", "cholesky", "fluidanimate", "histogram", "qr"])),
    ]
    for name, kwargs in plan:
        t0 = time.time()
        print(f"=== running {name}", flush=True)
        result = run_experiment(name, scale=0.25, runner=runner, **kwargs)
        (out / f"{result.experiment}.md").write_text(result.to_markdown(), encoding="utf-8")
        print(f"=== {name} done in {time.time()-t0:.1f}s", flush=True)


if __name__ == "__main__":  # required: the process pool re-imports this module
    main()
