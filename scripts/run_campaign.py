#!/usr/bin/env python3
"""Run the reproduction campaign used to fill EXPERIMENTS.md.

Runs every experiment with a shared simulation cache and writes one Markdown
file per table/figure under ``results/``.  The scale and the benchmark subset
of the heavier design-space sweeps are chosen so the whole campaign finishes
in tens of minutes on a laptop; pass ``--scale 1.0`` for the paper's full task
counts.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.experiments.common import SimulationRunner
from repro.experiments.env import bench_backend, bench_cache_dir, bench_jobs
from repro.experiments.registry import run_experiment


def main() -> None:
    # The REPRO_BENCH_* environment (shared with the benchmark suite and
    # run_campaign_rest.py, see repro.experiments.env) provides the flag
    # defaults, so one exported environment configures every driver alike.
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--output", type=pathlib.Path, default=pathlib.Path("results"))
    parser.add_argument("--sweep-scale", type=float, default=None,
                        help="scale for the design-space sweeps (default: same as --scale)")
    parser.add_argument("--jobs", type=int, default=bench_jobs(),
                        help="worker processes for the campaign engine "
                        "(default: REPRO_BENCH_JOBS or serial)")
    parser.add_argument("--cache-dir", type=pathlib.Path, default=bench_cache_dir(),
                        help="persist simulation results here; reruns resume "
                        "incrementally (default: REPRO_BENCH_CACHE_DIR)")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="size budget for --cache-dir (oldest-mtime entries evicted first)")
    parser.add_argument("--backend", default=bench_backend(),
                        help="DMU storage backend, pure or accel "
                        "(default: REPRO_BENCH_BACKEND or the config default)")
    args = parser.parse_args()
    if args.cache_max_bytes is not None and args.cache_dir is None:
        parser.error("--cache-max-bytes requires --cache-dir")
    args.output.mkdir(parents=True, exist_ok=True)

    runner = SimulationRunner(scale=args.scale, verbose=True,
                              jobs=args.jobs, cache_dir=args.cache_dir,
                              cache_max_bytes=args.cache_max_bytes,
                              backend=args.backend)
    sweep_runner = SimulationRunner(scale=args.sweep_scale or args.scale, verbose=True,
                                    jobs=args.jobs, cache_dir=args.cache_dir,
                                    cache_max_bytes=args.cache_max_bytes,
                                    backend=args.backend)

    plan = [
        ("table_03", dict(runner=runner)),
        ("table_02", dict(scale=1.0)),
        ("figure_02", dict(runner=runner)),
        ("figure_10", dict(runner=runner)),
        ("figure_12", dict(runner=runner)),
        ("figure_13", dict(runner=runner)),
        ("figure_06", dict(runner=sweep_runner,
                           benchmarks=["blackscholes", "cholesky", "lu", "qr", "histogram"])),
        ("figure_07", dict(runner=sweep_runner, benchmarks=["cholesky", "histogram", "qr", "lu", "ferret"])),
        ("figure_08", dict(runner=sweep_runner, benchmarks=["cholesky", "histogram", "qr"])),
        ("figure_09", dict(runner=sweep_runner, benchmarks=["cholesky", "lu", "qr"])),
        ("figure_11", dict(runner=sweep_runner,
                           benchmarks=["blackscholes", "cholesky", "fluidanimate", "histogram", "qr"])),
    ]
    for name, kwargs in plan:
        start = time.time()
        print(f"=== running {name} ...", flush=True)
        result = run_experiment(name, scale=kwargs.pop("scale", args.scale), **kwargs)
        path = args.output / f"{result.experiment}.md"
        path.write_text(result.to_markdown(), encoding="utf-8")
        print(f"=== {name} done in {time.time() - start:.1f}s -> {path}", flush=True)

    evicted = runner.prune_cache() + sweep_runner.prune_cache()
    if evicted:
        print(f"=== cache budget: evicted {evicted} oldest entries", flush=True)


if __name__ == "__main__":
    main()
