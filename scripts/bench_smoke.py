#!/usr/bin/env python3
"""Campaign-engine smoke benchmark: reduced sweep, cold vs warm cache.

Runs a small but representative slice of the evaluation (one breakdown
figure, one scheduler sweep, one comparison figure on three benchmarks)
twice against the same cache directory and records the timings in
``BENCH_campaign.json``.  The second pass must perform **zero** simulations
— its time is pure cache-read and row-assembly overhead — so the record
doubles as an end-to-end check of the content-hashed result cache and
feeds the performance trajectory across PRs.

The record also carries a **shard-balance** metric: the predicted per-shard
loads of the smoke sweep under the modulo hash partition vs cost-aware LPT
binning (``--shard-strategy cost``), as max/mean imbalance ratios.  The
cost bins' peak must not exceed modulo's — the straggler-avoidance claim,
quantified on every refresh.

A **fault-hook overhead** record covers the reliability layer's claim that
instrumentation is free when no fault plan is active: the per-call cost of
``maybe_fault`` with no plan installed (the state every production run is
in), next to the cost with a plan installed whose selectors never fire.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py --jobs 4
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time

from repro.experiments.common import SimulationRunner
from repro.experiments.registry import resolve_plan, run_experiment
from repro.experiments.shard import ShardPlan
from repro.runtime.cost_model import CampaignCostModel

SMOKE_EXPERIMENTS = ("figure_02", "figure_10", "figure_12")
SMOKE_BENCHMARKS = ["blackscholes", "cholesky", "qr"]


def run_pass(scale: float, jobs: int, cache_dir: pathlib.Path) -> dict:
    runner = SimulationRunner(scale=scale, jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    rows = 0
    for name in SMOKE_EXPERIMENTS:
        result = run_experiment(name, scale=scale, benchmarks=SMOKE_BENCHMARKS, runner=runner)
        rows += len(result.rows)
    elapsed = time.perf_counter() - start
    info = runner.cache_info()
    return {"seconds": round(elapsed, 3), "rows": rows, **info}


def shard_balance(scale: float, shards: int) -> dict:
    """Predicted per-shard load balance of the smoke sweep, modulo vs cost."""
    runner = SimulationRunner(scale=scale)
    resolved = [
        item
        for name in SMOKE_EXPERIMENTS
        for item in resolve_plan(name, runner, benchmarks=SMOKE_BENCHMARKS)
    ]
    model = CampaignCostModel(scale=scale)

    def measure(strategy: str) -> dict:
        plan = ShardPlan(resolved, shards, strategy=strategy, cost_model=model)
        loads = plan.shard_loads()
        mean = sum(loads) / len(loads)
        return {
            "max_shard_s": round(max(loads), 4),
            "mean_shard_s": round(mean, 4),
            "imbalance_max_over_mean": round(max(loads) / mean, 3) if mean else None,
        }

    modulo, cost = measure("modulo"), measure("cost")
    return {
        "shards": shards,
        "keys": len({item.key for item in resolved}),
        "modulo": modulo,
        "cost": cost,
        "peak_load_reduction": round(modulo["max_shard_s"] / cost["max_shard_s"], 3)
        if cost["max_shard_s"]
        else None,
    }


def fault_hook_overhead(calls: int = 200_000) -> dict:
    """Per-call cost of the ``maybe_fault`` instrumentation hook.

    The no-plan figure is the one that matters: every instrumented hot
    path (cache reads, commits, claims) pays it on every production run.
    The armed-plan figure uses selectors that never match, isolating the
    dispatch cost of an installed-but-quiet plan.
    """
    from repro.reliability import faults

    def timed(calls: int) -> float:
        start = time.perf_counter()
        for _ in range(calls):
            faults.maybe_fault("sim", "deadbeef", 1)
        return (time.perf_counter() - start) / calls * 1e9

    faults.install_plan(None)
    no_plan_ns = timed(calls)
    faults.install_plan("error@sim:key%3=1")  # deadbeef % 3 == 2: never fires
    armed_ns = timed(calls)
    faults.install_plan(None)
    return {
        "calls": calls,
        "no_plan_ns_per_call": round(no_plan_ns, 1),
        "armed_quiet_plan_ns_per_call": round(armed_ns, 1),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        help="cache directory (default: a fresh temporary one)")
    parser.add_argument("--output", type=pathlib.Path, default=pathlib.Path("BENCH_campaign.json"))
    parser.add_argument("--shards", type=int, default=3,
                        help="shard count for the predicted balance metric")
    args = parser.parse_args()

    cache_dir = args.cache_dir or pathlib.Path(tempfile.mkdtemp(prefix="campaign-cache-"))
    cold = run_pass(args.scale, args.jobs, cache_dir)
    warm = run_pass(args.scale, args.jobs, cache_dir)
    balance = shard_balance(args.scale, args.shards)

    record = {
        "benchmark": "campaign_smoke",
        "experiments": list(SMOKE_EXPERIMENTS),
        "benchmarks": SMOKE_BENCHMARKS,
        "scale": args.scale,
        "jobs": args.jobs,
        "cache_dir": str(cache_dir),
        "cold": cold,
        "warm": warm,
        "warm_is_simulation_free": warm["simulations_run"] == 0,
        "speedup_cold_over_warm": round(cold["seconds"] / warm["seconds"], 2)
        if warm["seconds"] > 0
        else None,
        "shard_balance": balance,
        "fault_hook_overhead": fault_hook_overhead(),
    }
    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))
    if not record["warm_is_simulation_free"]:
        raise SystemExit("warm pass re-simulated cached points — cache regression!")
    if balance["cost"]["max_shard_s"] > balance["modulo"]["max_shard_s"]:
        raise SystemExit("cost binning produced a worse peak shard load than modulo!")


if __name__ == "__main__":
    main()
