#!/usr/bin/env python3
"""Launch the campaign results daemon (the script twin of ``tdm-repro serve``).

Environment knobs (all optional): ``REPRO_BENCH_CACHE_DIR`` (the daemon's
persistent result cache — strongly recommended, reruns serve from disk),
``REPRO_BENCH_JOBS`` (simulation process-pool size, default 2).  Flags win
over the environment.

Examples::

    REPRO_BENCH_CACHE_DIR=cache python scripts/run_server.py --port 8765
    python scripts/run_server.py --cache-dir cache --workers 4
"""
import argparse

from repro.experiments.env import bench_cache_dir, bench_jobs
from repro.service.server import serve


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--cache-dir", default=bench_cache_dir())
    parser.add_argument("--workers", type=int, default=max(bench_jobs(), 2))
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()
    return serve(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        verbose=args.verbose,
    )


if __name__ == "__main__":  # required: the process pool re-imports this module
    raise SystemExit(main())
