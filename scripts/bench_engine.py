#!/usr/bin/env python3
"""Discrete-event kernel benchmark: raw event throughput and cold run time.

Two measurements, recorded in ``BENCH_engine.json``:

* **Raw kernel throughput** — a synthetic pure-kernel workload (processes
  cycling through timeouts, event waits and lock handoffs, with no runtime
  model on top) measured in events per second.  The command-object variant
  (``yield Timeout(n)``) runs on every kernel generation; the bare-int
  variant (``yield n``) is attempted and recorded as ``None`` on kernels
  that predate the fast path.  The short-delay mix exercises the near-future
  time wheel; a mixed near/far bare-int variant forces traffic through the
  far-future heap and its wheel migration as well.  Its delay pattern is
  tier-agnostic, so it runs (and records a real number) on pre-wheel
  kernels too — like every raw-kernel figure it is only meaningful within
  one machine, and cross-generation comparisons belong to the
  ``--record-baseline`` protocol.

* **Raw DMU throughput** — a synthetic dependence chain driving the DMU's
  ISA surface directly (``create_task`` / ``add_dependence`` /
  ``complete_creation`` / ``get_ready_task`` / ``finish_task``) with no
  event kernel at all, measured in instructions per second.  This isolates
  the functional-model hot path (the columnar tables and list arrays) from
  kernel overhead; it uses only the public ISA API, so it runs on older
  trees for ``--record-baseline`` A/B comparisons.  Since the storage
  backend split the figure is an *interleaved* pure-vs-accel A/B:
  ``dmu_ops`` is the pure backend, ``dmu_ops_accel`` the numpy-accelerated
  one (omitted when numpy is unavailable), ``dmu_backend_speedup`` their
  ratio (target >= 1.5x).

* **Cold single-run wall time** — the fig02/fig12 smoke set (three
  benchmarks, serial, no result cache) simulated from scratch.  This is the
  end-to-end number the kernel rewrite is judged by: the PR 1 campaign cache
  makes *warm* sweeps fast, this makes every *cold* simulation fast.
  ``--full`` additionally measures the fig07/fig08 sweeps (the TAT/DAT and
  list-array design-space experiments, the heaviest DMU stress) as a
  separate ``cold_smoke_full`` figure without changing the recorded default
  metric.

Usage::

    # once, before a kernel change: pin the reference numbers
    PYTHONPATH=src python scripts/bench_engine.py --record-baseline

    # after the change: measure again and compute the speedup
    PYTHONPATH=src python scripts/bench_engine.py

    # CI perf gate: re-measure and fail if cold smoke regressed beyond the
    # noise tolerance vs the recorded baseline (advisory print otherwise)
    PYTHONPATH=src python scripts/bench_engine.py --check --tolerance 1.25
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.config import DMU_BACKENDS
from repro.sim.engine import Engine
from repro.sim.events import Timeout, WaitEvent
from repro.sim.resources import Lock

SMOKE_EXPERIMENTS = ("figure_02", "figure_12")
#: --full adds the design-space sweeps that hammer the DMU structures
#: (figure_07: TAT/DAT sizing, figure_08: list-array sizing).
FULL_SMOKE_EXPERIMENTS = ("figure_02", "figure_12", "figure_07", "figure_08")
SMOKE_BENCHMARKS = ["blackscholes", "cholesky", "qr"]


# --------------------------------------------------------------------- raw kernel
def _kernel_workload(
    engine: Engine,
    events_per_process: int,
    use_int_yields: bool,
    far_future: bool = False,
):
    """A synthetic process mix exercising timeouts, events and lock handoffs.

    With ``far_future`` one delay in eight jumps hundreds of cycles ahead,
    pushing traffic through the far-future heap tier and the heap-to-wheel
    migration path of the two-tier queue.
    """
    lock = Lock(engine, "bench")
    channel = engine.event("bench-start")

    def worker(offset: int):
        yield WaitEvent(channel)
        for step in range(events_per_process):
            delay = (step * 7 + offset) % 11
            if far_future and step % 8 == 0:
                delay = 300 + (step * 13 + offset) % 700
            if use_int_yields:
                yield delay
            else:
                yield Timeout(delay)
            if step % 16 == 0:
                from repro.sim.events import Acquire

                yield Acquire(lock)
                if use_int_yields:
                    yield 3
                else:
                    yield Timeout(3)
                lock.release(engine_process_of(engine, offset))

    # Processes need a handle on themselves to release the lock; resolve via
    # a registration list filled as processes are created.
    procs = []

    def engine_process_of(_engine, index):
        return procs[index]

    for index in range(64):
        procs.append(engine.process(worker(index), name=f"bench{index}"))
    channel.trigger()
    return procs


def measure_raw_kernel(
    events_per_process: int = 2000,
    use_int_yields: bool = False,
    far_future: bool = False,
):
    """Events/second of the synthetic kernel workload.

    The bare-int variants return ``None`` on kernels that predate the fast
    path (they reject int yields); any other failure propagates — a kernel
    that cannot run the command-object workload is a regression the
    benchmark must report loudly, not record as ``null``.
    """
    engine = Engine()
    try:
        _kernel_workload(engine, events_per_process, use_int_yields, far_future)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
    except Exception:
        if use_int_yields:
            return None
        raise
    # Each loop iteration is one timeout event plus the periodic lock pair.
    total_events = 64 * events_per_process * (1 + 2 / 16)
    return {
        "seconds": round(elapsed, 4),
        "events": int(total_events),
        "events_per_sec": round(total_events / elapsed),
    }


# --------------------------------------------------------------------- raw DMU
def measure_dmu_ops(num_tasks: int = 6144, window: int = 512, backend: str = None):
    """Instructions/second of a synthetic dependence chain on a bare DMU.

    Each task writes its own block (WAW edge to the task ``window``
    creations earlier, still in flight), reads its predecessor's block (RAW
    edge), and every eighth task also reads a hot shared block (growing
    reader lists, exercising the Reader List Array walks).  From the
    ``window``-th creation on, one ready task is popped and finished per
    creation, holding the in-flight set at the steady-state ``window``.  No
    event kernel is involved: this is the pure functional-model hot path.

    ``backend`` selects the DMU storage backend ('pure'/'accel'); ``None``
    keeps the config default, which also keeps the call compatible with
    pre-backend trees under the ``--record-baseline`` protocol.
    """
    from repro.config import DMUConfig
    from repro.core.dmu import DependenceManagementUnit

    config = DMUConfig() if backend is None else DMUConfig(backend=backend)
    dmu = DependenceManagementUnit(config)
    descriptor_base = 0x8AB0_0000_0000
    descriptor_stride = 0x140
    block = 4096
    dependence_base = 0x10_0000
    shared_block = dependence_base - block
    ops = 0
    start = time.perf_counter()
    def unblocked(result):
        # Every instruction must complete: a blocked op mutates nothing, so
        # counting it would silently measure a different instruction mix.
        if result.blocked:
            raise RuntimeError("DMU blocked in benchmark: sizing bug")
        return result

    for index in range(num_tasks):
        descriptor = descriptor_base + index * descriptor_stride
        unblocked(dmu.create_task(descriptor))
        unblocked(dmu.add_dependence(
            descriptor, dependence_base + (index % window) * block, block, "out"
        ))
        ops += 2
        if index:
            unblocked(dmu.add_dependence(
                descriptor, dependence_base + ((index - 1) % window) * block, block, "in"
            ))
            ops += 1
        if index % 8 == 7:
            unblocked(dmu.add_dependence(descriptor, shared_block, block, "in"))
            ops += 1
        dmu.complete_creation(descriptor)
        ops += 1
        if index >= window:
            ready = dmu.get_ready_task()
            ops += 1
            if ready.descriptor_address is not None:
                dmu.finish_task(ready.descriptor_address)
                ops += 1
    while True:
        ready = dmu.get_ready_task()
        ops += 1
        if ready.descriptor_address is None:
            break
        dmu.finish_task(ready.descriptor_address)
        ops += 1
    elapsed = time.perf_counter() - start
    return {
        "seconds": round(elapsed, 4),
        "instructions": ops,
        "ops_per_sec": round(ops / elapsed),
        "tasks": num_tasks,
        "window": window,
    }


# --------------------------------------------------------------------- cold smoke
def measure_cold_smoke(scale: float = 0.1, experiments=SMOKE_EXPERIMENTS,
                       backend: str = None):
    """Wall time of an experiment smoke set, cold (serial, no cache)."""
    from repro.experiments.common import SimulationRunner
    from repro.experiments.registry import run_experiment

    runner = SimulationRunner(scale=scale, backend=backend)
    start = time.perf_counter()
    rows = 0
    for name in experiments:
        result = run_experiment(name, scale=scale, benchmarks=SMOKE_BENCHMARKS, runner=runner)
        rows += len(result.rows)
    elapsed = time.perf_counter() - start
    info = runner.cache_info()
    return {
        "seconds": round(elapsed, 3),
        "rows": rows,
        "simulations_run": info["simulations_run"],
    }


def _best(measure, repeat: int):
    """Best (minimum-seconds) of ``repeat`` runs — the right statistic on a
    shared/noisy machine, where every disturbance only ever adds time."""
    results = [measure() for _ in range(repeat)]
    results = [result for result in results if result is not None]
    if not results:
        return None
    return min(results, key=lambda result: result["seconds"])


def measure_dmu_backend_ab(repeat: int) -> dict:
    """Interleaved pure-vs-accel A/B of the DMU instruction benchmark.

    Repetitions alternate backends (pure, accel, pure, accel, ...) so both
    sides see the same slice of machine noise — a back-to-back block per
    backend would attribute a background spike entirely to one of them.
    When numpy is missing the accel figure is omitted (recording the silent
    pure fallback as an "accel" number would be a lie).
    """
    from repro.core.backends import numpy_available

    pure_runs, accel_runs = [], []
    for _ in range(repeat):
        pure_runs.append(measure_dmu_ops(backend="pure"))
        if numpy_available():
            accel_runs.append(measure_dmu_ops(backend="accel"))
    pure = min(pure_runs, key=lambda run: run["seconds"])
    figures = {"dmu_ops": dict(pure, backend="pure")}
    if accel_runs:
        accel = min(accel_runs, key=lambda run: run["seconds"])
        figures["dmu_ops_accel"] = dict(accel, backend="accel")
        figures["dmu_backend_speedup"] = round(
            accel["ops_per_sec"] / pure["ops_per_sec"], 2
        )
    return figures


def run_measurements(scale: float, repeat: int, full: bool = False,
                     backend: str = None) -> dict:
    """All figures.  ``backend`` selects the DMU backend of the cold-smoke
    simulations (recorded alongside when set); the ``dmu_ops`` figures are
    always the interleaved pure-vs-accel A/B regardless."""
    measured = {
        "raw_kernel_command_objects": _best(
            lambda: measure_raw_kernel(use_int_yields=False), repeat
        ),
        "raw_kernel_bare_int": _best(lambda: measure_raw_kernel(use_int_yields=True), repeat),
        "raw_kernel_far_future": _best(
            lambda: measure_raw_kernel(use_int_yields=True, far_future=True), repeat
        ),
        "cold_smoke": _best(lambda: measure_cold_smoke(scale, backend=backend), repeat),
        "repeat": repeat,
    }
    if backend is not None:
        measured["cold_smoke"]["backend"] = backend
    measured.update(measure_dmu_backend_ab(repeat))
    if full:
        # Separate figure: the recorded default metric (cold_smoke) stays
        # comparable across records whether or not --full was requested.
        measured["cold_smoke_full"] = _best(
            lambda: measure_cold_smoke(scale, FULL_SMOKE_EXPERIMENTS, backend=backend),
            repeat,
        )
        measured["full_experiments"] = list(FULL_SMOKE_EXPERIMENTS)
    return measured


def _speedup(baseline: dict, measured: dict) -> dict:
    """Baseline/current ratios for every figure present in both records."""
    speedup = {
        "cold_smoke": round(
            baseline["cold_smoke"]["seconds"] / measured["cold_smoke"]["seconds"], 2
        )
    }
    base_raw = baseline.get("raw_kernel_command_objects")
    cur_raw = measured.get("raw_kernel_command_objects")
    if base_raw and cur_raw:
        speedup["raw_events_per_sec"] = round(
            cur_raw["events_per_sec"] / base_raw["events_per_sec"], 2
        )
    base_dmu = baseline.get("dmu_ops")
    cur_dmu = measured.get("dmu_ops")
    if base_dmu and cur_dmu:
        speedup["dmu_ops_per_sec"] = round(
            cur_dmu["ops_per_sec"] / base_dmu["ops_per_sec"], 2
        )
    cur_accel = measured.get("dmu_ops_accel")
    if cur_accel:
        # Pre-backend baselines only have the (pure) dmu_ops figure; it is
        # the honest reference for the accel backend too.
        base_accel = baseline.get("dmu_ops_accel") or base_dmu
        if base_accel:
            speedup["dmu_ops_accel_per_sec"] = round(
                cur_accel["ops_per_sec"] / base_accel["ops_per_sec"], 2
            )
    return speedup


def run_check(args) -> int:
    """CI perf gate: fresh measurements vs the recorded baseline.

    Fails (exit 1) only when the cold-smoke time regressed beyond
    ``--tolerance``; everything else — including improvements and
    within-noise slowdowns — is printed as an advisory delta.  The record
    file is never modified.
    """
    if not args.output.exists():
        print(f"perf-smoke: no record at {args.output}; run --record-baseline first")
        return 1
    record = json.loads(args.output.read_text(encoding="utf-8"))
    baseline = record.get("baseline")
    if not baseline or not baseline.get("cold_smoke"):
        print(f"perf-smoke: {args.output} has no recorded baseline cold_smoke")
        return 1
    baseline_scale = baseline.get("scale")
    if baseline_scale is not None and baseline_scale != args.scale:
        print(
            f"perf-smoke: baseline was recorded at --scale {baseline_scale}, "
            f"not {args.scale}; the ratio would be meaningless"
        )
        return 1
    measured = run_measurements(args.scale, args.repeat, backend=args.backend)
    failures = []
    ratio = measured["cold_smoke"]["seconds"] / baseline["cold_smoke"]["seconds"]
    print(
        f"perf-smoke: cold smoke {measured['cold_smoke']['seconds']}s vs baseline "
        f"{baseline['cold_smoke']['seconds']}s ({ratio:.2f}x, tolerance {args.tolerance}x)"
    )
    if ratio > args.tolerance:
        failures.append("cold smoke regressed beyond the noise tolerance")

    # DMU throughput gate, per backend.  Baselines recorded before the
    # backend split only carry the (pure) dmu_ops figure; it doubles as the
    # reference for the accel leg — accel slower than old pure is always a
    # regression.  A backend with neither a measurement nor a baseline
    # figure is skipped, so the gate degrades gracefully on trees/machines
    # without numpy.
    base_pure = baseline.get("dmu_ops")
    for figure in ("dmu_ops", "dmu_ops_accel"):
        current = measured.get(figure)
        reference = baseline.get(figure) or base_pure
        if not current or not reference:
            continue
        dmu_ratio = reference["ops_per_sec"] / current["ops_per_sec"]
        print(
            f"perf-smoke: {figure} {current['ops_per_sec']}/s vs baseline "
            f"{reference['ops_per_sec']}/s ({dmu_ratio:.2f}x, tolerance {args.tolerance}x)"
        )
        if dmu_ratio > args.tolerance:
            failures.append(f"{figure} throughput regressed beyond the noise tolerance")
    ab_speedup = measured.get("dmu_backend_speedup")
    if ab_speedup is not None:
        print(f"perf-smoke: dmu accel-vs-pure speedup {ab_speedup}x (target >= 1.5x)")

    for name, value in sorted(_speedup(baseline, measured).items()):
        print(f"perf-smoke: advisory speedup {name}: {value}x")
    if failures:
        for failure in failures:
            print(f"perf-smoke: FAIL — {failure}")
        return 1
    print("perf-smoke: OK")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per measurement; the best run is kept")
    parser.add_argument("--output", type=pathlib.Path, default=pathlib.Path("BENCH_engine.json"))
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the pre-change baseline instead of the current numbers",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="additionally measure the fig07/fig08 DMU-stress sweeps "
             "(recorded as cold_smoke_full; the default metric is unchanged)",
    )
    parser.add_argument(
        "--backend", choices=DMU_BACKENDS, default=None,
        help="DMU storage backend for the cold-smoke simulations (default: "
             "the config default; the dmu_ops figures always record the "
             "interleaved pure-vs-accel A/B)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="re-measure and compare against the recorded baseline without "
             "writing; exit 1 on cold-smoke regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance", type=float, default=1.25,
        help="allowed cold-smoke slowdown factor in --check mode (noise margin)",
    )
    args = parser.parse_args()

    if args.check:
        raise SystemExit(run_check(args))

    record = {}
    if args.output.exists():
        record = json.loads(args.output.read_text(encoding="utf-8"))

    measured = run_measurements(args.scale, args.repeat, full=args.full,
                                backend=args.backend)
    measured["scale"] = args.scale
    measured["experiments"] = list(SMOKE_EXPERIMENTS)
    measured["benchmarks"] = SMOKE_BENCHMARKS

    if args.record_baseline:
        record["baseline"] = measured
        record.pop("current", None)
        record.pop("speedup", None)
    else:
        record["current"] = measured
        baseline = record.get("baseline")
        if baseline:
            record["speedup"] = _speedup(baseline, measured)

    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
