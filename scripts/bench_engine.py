#!/usr/bin/env python3
"""Discrete-event kernel benchmark: raw event throughput and cold run time.

Two measurements, recorded in ``BENCH_engine.json``:

* **Raw kernel throughput** — a synthetic pure-kernel workload (processes
  cycling through timeouts, event waits and lock handoffs, with no runtime
  model on top) measured in events per second.  The command-object variant
  (``yield Timeout(n)``) runs on every kernel generation; the bare-int
  variant (``yield n``) is attempted and recorded as ``None`` on kernels
  that predate the fast path.  The short-delay mix exercises the near-future
  time wheel; a mixed near/far bare-int variant forces traffic through the
  far-future heap and its wheel migration as well.  Its delay pattern is
  tier-agnostic, so it runs (and records a real number) on pre-wheel
  kernels too — like every raw-kernel figure it is only meaningful within
  one machine, and cross-generation comparisons belong to the
  ``--record-baseline`` protocol.

* **Cold single-run wall time** — the fig02/fig12 smoke set (three
  benchmarks, serial, no result cache) simulated from scratch.  This is the
  end-to-end number the kernel rewrite is judged by: the PR 1 campaign cache
  makes *warm* sweeps fast, this makes every *cold* simulation fast.

Usage::

    # once, before a kernel change: pin the reference numbers
    PYTHONPATH=src python scripts/bench_engine.py --record-baseline

    # after the change: measure again and compute the speedup
    PYTHONPATH=src python scripts/bench_engine.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.sim.engine import Engine
from repro.sim.events import Timeout, WaitEvent
from repro.sim.resources import Lock

SMOKE_EXPERIMENTS = ("figure_02", "figure_12")
SMOKE_BENCHMARKS = ["blackscholes", "cholesky", "qr"]


# --------------------------------------------------------------------- raw kernel
def _kernel_workload(
    engine: Engine,
    events_per_process: int,
    use_int_yields: bool,
    far_future: bool = False,
):
    """A synthetic process mix exercising timeouts, events and lock handoffs.

    With ``far_future`` one delay in eight jumps hundreds of cycles ahead,
    pushing traffic through the far-future heap tier and the heap-to-wheel
    migration path of the two-tier queue.
    """
    lock = Lock(engine, "bench")
    channel = engine.event("bench-start")

    def worker(offset: int):
        yield WaitEvent(channel)
        for step in range(events_per_process):
            delay = (step * 7 + offset) % 11
            if far_future and step % 8 == 0:
                delay = 300 + (step * 13 + offset) % 700
            if use_int_yields:
                yield delay
            else:
                yield Timeout(delay)
            if step % 16 == 0:
                from repro.sim.events import Acquire

                yield Acquire(lock)
                if use_int_yields:
                    yield 3
                else:
                    yield Timeout(3)
                lock.release(engine_process_of(engine, offset))

    # Processes need a handle on themselves to release the lock; resolve via
    # a registration list filled as processes are created.
    procs = []

    def engine_process_of(_engine, index):
        return procs[index]

    for index in range(64):
        procs.append(engine.process(worker(index), name=f"bench{index}"))
    channel.trigger()
    return procs


def measure_raw_kernel(
    events_per_process: int = 2000,
    use_int_yields: bool = False,
    far_future: bool = False,
):
    """Events/second of the synthetic kernel workload.

    The bare-int variants return ``None`` on kernels that predate the fast
    path (they reject int yields); any other failure propagates — a kernel
    that cannot run the command-object workload is a regression the
    benchmark must report loudly, not record as ``null``.
    """
    engine = Engine()
    try:
        _kernel_workload(engine, events_per_process, use_int_yields, far_future)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
    except Exception:
        if use_int_yields:
            return None
        raise
    # Each loop iteration is one timeout event plus the periodic lock pair.
    total_events = 64 * events_per_process * (1 + 2 / 16)
    return {
        "seconds": round(elapsed, 4),
        "events": int(total_events),
        "events_per_sec": round(total_events / elapsed),
    }


# --------------------------------------------------------------------- cold smoke
def measure_cold_smoke(scale: float = 0.1):
    """Wall time of the fig02/fig12 smoke set, cold (serial, no cache)."""
    from repro.experiments.common import SimulationRunner
    from repro.experiments.registry import run_experiment

    runner = SimulationRunner(scale=scale)
    start = time.perf_counter()
    rows = 0
    for name in SMOKE_EXPERIMENTS:
        result = run_experiment(name, scale=scale, benchmarks=SMOKE_BENCHMARKS, runner=runner)
        rows += len(result.rows)
    elapsed = time.perf_counter() - start
    info = runner.cache_info()
    return {
        "seconds": round(elapsed, 3),
        "rows": rows,
        "simulations_run": info["simulations_run"],
    }


def _best(measure, repeat: int):
    """Best (minimum-seconds) of ``repeat`` runs — the right statistic on a
    shared/noisy machine, where every disturbance only ever adds time."""
    results = [measure() for _ in range(repeat)]
    results = [result for result in results if result is not None]
    if not results:
        return None
    return min(results, key=lambda result: result["seconds"])


def run_measurements(scale: float, repeat: int) -> dict:
    return {
        "raw_kernel_command_objects": _best(
            lambda: measure_raw_kernel(use_int_yields=False), repeat
        ),
        "raw_kernel_bare_int": _best(lambda: measure_raw_kernel(use_int_yields=True), repeat),
        "raw_kernel_far_future": _best(
            lambda: measure_raw_kernel(use_int_yields=True, far_future=True), repeat
        ),
        "cold_smoke": _best(lambda: measure_cold_smoke(scale), repeat),
        "repeat": repeat,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per measurement; the best run is kept")
    parser.add_argument("--output", type=pathlib.Path, default=pathlib.Path("BENCH_engine.json"))
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="store this run as the pre-change baseline instead of the current numbers",
    )
    args = parser.parse_args()

    record = {}
    if args.output.exists():
        record = json.loads(args.output.read_text(encoding="utf-8"))

    measured = run_measurements(args.scale, args.repeat)
    measured["scale"] = args.scale
    measured["experiments"] = list(SMOKE_EXPERIMENTS)
    measured["benchmarks"] = SMOKE_BENCHMARKS

    if args.record_baseline:
        record["baseline"] = measured
        record.pop("current", None)
        record.pop("speedup", None)
    else:
        record["current"] = measured
        baseline = record.get("baseline")
        if baseline:
            speedup = {
                "cold_smoke": round(
                    baseline["cold_smoke"]["seconds"] / measured["cold_smoke"]["seconds"], 2
                )
            }
            base_raw = baseline.get("raw_kernel_command_objects")
            cur_raw = measured.get("raw_kernel_command_objects")
            if base_raw and cur_raw:
                speedup["raw_events_per_sec"] = round(
                    cur_raw["events_per_sec"] / base_raw["events_per_sec"], 2
                )
            record["speedup"] = speedup

    args.output.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    main()
