"""Golden pins and differential determinism for the scenario subsystem.

Mirror of ``tests/test_kernel_rewrite.py`` for the curated scenario bundles
(``repro/scenarios/registry.py``):

* ``GOLDEN_SCENARIO_CSV_DIGESTS`` — SHA-256 of every bundle's CSV rows at
  ``scale=0.1``, captured when the subsystem landed.  Any change to the
  generative families, the trace importer's canonical ordering, or the
  runtime models shows up here as a digest mismatch.
* ``PINNED_SCENARIO_CYCLES`` — total cycle counts of the reader-storm
  family under each runtime model (each at its own optimal granularity).
* Both pins rerun under the ``accel`` storage backend when numpy is
  available — scenario keys share the backend-blind cache contract.
* Differential determinism: serial vs ``jobs=2`` vs 3-shard split-and-merge
  renders are byte-identical for every bundle, and a fresh subprocess
  rebuilds every scenario workload to the identical structural digest
  (the explicit-RNG regression for ``workloads/synthetic.py``).
* Registry/docs drift: the bundle table in ``docs/scenarios.md`` must equal
  :func:`repro.scenarios.registry.scenario_table_markdown`.
"""

from __future__ import annotations

import hashlib
import pathlib
import subprocess
import sys

import pytest

from repro.experiments.common import SimulationRunner
from repro.experiments.registry import experiment_catalog, run_experiment
from repro.scenarios.registry import (
    available_scenarios,
    get_scenario,
    scenario_table_markdown,
)
from util import experiment_output, merge_and_render, run_all_shards

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Captured at scale=0.1 when the scenario subsystem landed.
GOLDEN_SCENARIO_CSV_DIGESTS = {
    "scenario_wide_shallow": "0dfdf1e272894a62d8e89e84a96e36747d9482c79ec7afd549beb3f1740055c1",
    "scenario_deep_chain": "c370d139d4694de437f195e16e544cd8afd0f1214dc779de86d85f742a6dafb8",
    "scenario_reader_storm": "abf7c0b735d6fb5a8d8ecf618824071198eafd0369a96c6305c30f8d503e54a4",
    "scenario_alias_conflict": "ba9d79ff0d7a7277f6a6f1da30d3d0eedd6efab7dd41365e44c385700d39543e",
    "scenario_trace_replay": "ba1146d82a24c5bdcf3a3044c884d5cf88885038a3776307ee8c612af99077e9",
}

# gen_reader_storm at scale=0.2 under the paper's default configuration,
# each runtime at its own optimal granularity (tdm/task_superscalar run
# 50 us tasks, software/carbon 100 us tasks — hence the distinct totals).
PINNED_SCENARIO_CYCLES = {
    "carbon": 939_524,
    "software": 966_254,
    "task_superscalar": 400_951,
    "tdm": 509_311,
}
PINNED_SCENARIO_TASKS = 42

ALL_WORKLOADS = (
    "gen_wide_shallow",
    "gen_deep_chain",
    "gen_reader_storm",
    "gen_alias_conflict",
    "gen_phased",
    "trace_diamond",
    "trace_mapreduce",
)

#: The differential suite runs every bundle at this scale (small but not
#: degenerate: each generative family still has multiple layers/waves).
SCALE = 0.05


def _run_pinned(runtime: str, backend: str = None):
    from repro.config import default_paper_config
    from repro.sim.machine import run_simulation
    from repro.workloads.registry import create_workload

    workload_runtime = "tdm" if runtime in ("tdm", "task_superscalar") else "software"
    workload = create_workload("gen_reader_storm", scale=0.2, runtime=workload_runtime)
    config = default_paper_config(runtime)
    if backend is not None:
        config = config.with_dmu_backend(backend)
    return run_simulation(workload.build_program(), config)


def _numpy_available() -> bool:
    from repro.core.backends import numpy_available

    return numpy_available()


class TestRegistry:
    def test_five_bundles_registered(self):
        assert available_scenarios() == [
            "wide_shallow",
            "deep_chain",
            "reader_storm",
            "alias_conflict",
            "trace_replay",
        ]
        catalog = [e for e in experiment_catalog() if e["kind"] == "scenario"]
        assert [e["name"] for e in catalog] == list(GOLDEN_SCENARIO_CSV_DIGESTS)
        assert all(e["simulates"] for e in catalog)

    def test_scenario_aliases_resolve(self):
        from repro.experiments.registry import canonical_name

        for name in available_scenarios():
            assert canonical_name(name) == f"scenario_{name}"
            assert canonical_name(f"scenario_{name}") == f"scenario_{name}"

    def test_get_scenario_accepts_both_spellings(self):
        assert get_scenario("reader_storm") is get_scenario("scenario_reader_storm")

    def test_docs_table_in_sync(self):
        """The bundle table in docs/scenarios.md matches the registry."""
        page = (REPO_ROOT / "docs" / "scenarios.md").read_text(encoding="utf-8")
        start = page.index("<!-- SCENARIO-TABLE-START -->")
        end = page.index("<!-- SCENARIO-TABLE-END -->")
        embedded = page[start:end].split("-->", 1)[1].strip() + "\n"
        assert embedded == scenario_table_markdown(), (
            "docs/scenarios.md bundle table drifted from the scenario "
            "registry; paste the output of scenario_table_markdown()"
        )


class TestGoldenDigests:
    @pytest.fixture(scope="class")
    def runner(self):
        return SimulationRunner(scale=0.1)

    @pytest.mark.parametrize("experiment", sorted(GOLDEN_SCENARIO_CSV_DIGESTS))
    def test_csv_rows_byte_identical(self, experiment, runner):
        result = run_experiment(experiment, scale=0.1, runner=runner)
        digest = hashlib.sha256(result.to_csv().encode("utf-8")).hexdigest()
        assert digest == GOLDEN_SCENARIO_CSV_DIGESTS[experiment], (
            f"{experiment}: CSV rows diverged from the pinned scenario goldens"
        )


class TestPinnedCycles:
    @pytest.mark.parametrize("runtime", sorted(PINNED_SCENARIO_CYCLES))
    def test_total_cycles_unchanged(self, runtime):
        result = _run_pinned(runtime)
        assert result.total_cycles == PINNED_SCENARIO_CYCLES[runtime]
        assert result.num_tasks_executed == PINNED_SCENARIO_TASKS


@pytest.mark.skipif(not _numpy_available(), reason="accel backend requires numpy")
class TestAccelBackendIdentity:
    """Scenario results are backend-blind, like every other experiment."""

    @pytest.fixture(scope="class")
    def accel_runner(self):
        return SimulationRunner(scale=0.1, backend="accel")

    @pytest.mark.parametrize("experiment", sorted(GOLDEN_SCENARIO_CSV_DIGESTS))
    def test_csv_rows_byte_identical_under_accel(self, experiment, accel_runner):
        result = run_experiment(experiment, scale=0.1, runner=accel_runner)
        digest = hashlib.sha256(result.to_csv().encode("utf-8")).hexdigest()
        assert digest == GOLDEN_SCENARIO_CSV_DIGESTS[experiment]

    @pytest.mark.parametrize("runtime", sorted(PINNED_SCENARIO_CYCLES))
    def test_total_cycles_unchanged_under_accel(self, runtime):
        result = _run_pinned(runtime, backend="accel")
        assert result.total_cycles == PINNED_SCENARIO_CYCLES[runtime]


class TestDifferentialDeterminism:
    """Serial, parallel and sharded scenario renders are byte-identical."""

    @pytest.fixture(scope="class")
    def serial_outputs(self):
        runner = SimulationRunner(scale=SCALE)
        return {
            name: experiment_output(name, SCALE, runner=runner)
            for name in GOLDEN_SCENARIO_CSV_DIGESTS
        }

    @pytest.mark.parametrize("experiment", sorted(GOLDEN_SCENARIO_CSV_DIGESTS))
    def test_jobs2_matches_serial(self, experiment, serial_outputs):
        runner = SimulationRunner(scale=SCALE, jobs=2)
        assert experiment_output(experiment, SCALE, runner=runner) == serial_outputs[
            experiment
        ]

    @pytest.mark.parametrize("experiment", sorted(GOLDEN_SCENARIO_CSV_DIGESTS))
    def test_three_shard_merge_matches_serial(self, experiment, serial_outputs, tmp_path):
        manifests = run_all_shards(experiment, SCALE, None, tmp_path, count=3)
        assert sum(m.simulated for m in manifests) > 0
        csv, markdown, merge_runner = merge_and_render(
            experiment, SCALE, None, tmp_path, count=3
        )
        assert (csv, markdown) == serial_outputs[experiment]
        assert merge_runner.cache_info()["simulations_run"] == 0

    @pytest.mark.skipif(not _numpy_available(), reason="accel backend requires numpy")
    @pytest.mark.parametrize("experiment", sorted(GOLDEN_SCENARIO_CSV_DIGESTS))
    def test_accel_backend_matches_serial(self, experiment, serial_outputs):
        assert (
            experiment_output(experiment, SCALE, backend="accel")
            == serial_outputs[experiment]
        )


class TestCrossProcessDeterminism:
    """Same seed ⇒ same structural digest, in a *fresh* interpreter.

    The regression test for the explicit-RNG rule in
    ``workloads/synthetic.py`` / ``scenarios/generative.py``: no generative
    path may consult module-level ``random`` state (or anything else that
    varies across processes, like hash randomization).
    """

    def _digests(self):
        script = (
            "import json\n"
            "from repro.workloads.registry import create_workload\n"
            "from repro.scenarios.trace import program_digest\n"
            f"names = {list(ALL_WORKLOADS)!r}\n"
            "out = {}\n"
            "for name in names:\n"
            "    for seed in (0, 7):\n"
            "        program = create_workload(name, scale=0.1, seed=seed).build_program()\n"
            "        out[f'{name}/{seed}'] = program_digest(program)\n"
            "print(json.dumps(out))\n"
        )
        import json
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        # Distinct PYTHONHASHSEED values so accidental reliance on hash
        # ordering cannot produce a coincidental pass.
        results = []
        for hash_seed in ("1", "2"):
            env["PYTHONHASHSEED"] = hash_seed
            output = subprocess.run(
                [sys.executable, "-c", script],
                check=True,
                capture_output=True,
                text=True,
                env=env,
            ).stdout
            results.append(json.loads(output))
        return results

    def test_same_seed_same_digest_across_processes(self):
        first, second = self._digests()
        assert first == second
        # Different seeds must actually change the generative programs.
        for name in ("gen_reader_storm", "gen_alias_conflict", "gen_phased"):
            assert first[f"{name}/0"] != first[f"{name}/7"]
        # Trace replay ignores the seed entirely (the graph is the file).
        for name in ("trace_diamond", "trace_mapreduce"):
            assert first[f"{name}/0"] == first[f"{name}/7"]
