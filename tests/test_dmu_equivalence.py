"""Property-based equivalence between the DMU and the software tracker.

The DMU (Algorithms 1 and 2 in hardware structures) and the software
:class:`~repro.runtime.tracker.DependenceTracker` must build the same task
dependence graph for any program: a task becomes ready at the same point of
the creation/finish sequence under both models.  This is the core invariant
that makes TDM a drop-in replacement for software dependence tracking.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DMUConfig
from repro.core.dmu import DependenceManagementUnit
from repro.core.isa import DMUBlocked
from repro.runtime.task import TaskInstanceFactory
from repro.runtime.tracker import DependenceTracker
from repro.workloads.synthetic import random_dag_program


def _dmu() -> DependenceManagementUnit:
    # The lockstep driver creates every task before finishing any, so the DMU
    # is sized to hold the whole program in flight.
    return DependenceManagementUnit(
        DMUConfig(
            tat_entries=4096,
            dat_entries=4096,
            successor_list_entries=4096,
            dependence_list_entries=4096,
            reader_list_entries=4096,
            ready_queue_entries=4096,
        )
    )


def _run_program_in_lockstep(program):
    """Drive the DMU and the tracker through create-all / finish-in-ready-order.

    Returns the sequence of task uids in the order each model made them ready.
    """
    definitions = list(program.all_tasks())

    # --- software tracker ------------------------------------------------
    factory = TaskInstanceFactory()
    instances = [factory.create(definition, 0) for definition in definitions]
    tracker = DependenceTracker()
    tracker_ready: list[int] = []
    for instance in instances:
        match = tracker.register_task(instance)
        if match.initially_ready:
            tracker_ready.append(instance.uid)
    cursor = 0
    by_uid = {instance.uid: instance for instance in instances}
    while cursor < len(tracker_ready):
        instance = by_uid[tracker_ready[cursor]]
        cursor += 1
        for successor in tracker.finish_task(instance):
            tracker_ready.append(successor.uid)

    # --- DMU ---------------------------------------------------------------
    dmu = _dmu()
    descriptor_of = {}
    uid_of_descriptor = {}
    dmu_ready: list[int] = []
    for definition in definitions:
        # The descriptor stride matches the runtime's allocator so descriptor
        # addresses spread over the TAT sets.
        descriptor = 0x8AB0_0000_0000 + definition.uid * 0x140
        descriptor_of[definition.uid] = descriptor
        uid_of_descriptor[descriptor] = definition.uid
        assert not isinstance(dmu.create_task(descriptor), DMUBlocked)
        for dependence in definition.dependences:
            result = dmu.add_dependence(
                descriptor, dependence.address, dependence.size, dependence.direction
            )
            assert not isinstance(result, DMUBlocked)
        dmu.complete_creation(descriptor)

    def drain() -> None:
        while True:
            ready = dmu.get_ready_task()
            if ready.is_null:
                return
            dmu_ready.append(uid_of_descriptor[ready.descriptor_address])

    drain()  # tasks that were ready at creation, in completion (FIFO) order
    cursor = 0
    while cursor < len(dmu_ready):
        uid = dmu_ready[cursor]
        cursor += 1
        dmu.finish_task(descriptor_of[uid])
        drain()
    dmu.assert_empty()
    return tracker_ready, dmu_ready


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_tasks=st.integers(min_value=1, max_value=60),
    num_addresses=st.integers(min_value=1, max_value=15),
    deps_per_task=st.integers(min_value=0, max_value=4),
)
def test_dmu_and_tracker_make_tasks_ready_identically(
    seed, num_tasks, num_addresses, deps_per_task
):
    program = random_dag_program(
        num_tasks=num_tasks,
        num_addresses=num_addresses,
        dependences_per_task=deps_per_task,
        seed=seed,
    )
    tracker_ready, dmu_ready = _run_program_in_lockstep(program)
    assert len(tracker_ready) == program.num_tasks
    assert len(dmu_ready) == program.num_tasks
    assert tracker_ready == dmu_ready


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dmu_structures_fully_recycled(seed):
    program = random_dag_program(num_tasks=50, num_addresses=8, seed=seed)
    _tracker_ready, dmu_ready = _run_program_in_lockstep(program)
    assert sorted(dmu_ready) == sorted(task.uid for task in program.all_tasks())


def test_equivalence_on_paper_like_workload():
    """The tiled-Cholesky dependence pattern is handled identically."""
    from repro.workloads.cholesky import CholeskyWorkload

    program = CholeskyWorkload(scale=0.2).build_program()
    tracker_ready, dmu_ready = _run_program_in_lockstep(program)
    assert tracker_ready == dmu_ready
