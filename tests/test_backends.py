"""The DMU storage-backend seam: resolution, fallback, config and cache keys.

The byte-identity contract itself is enforced by the differential streams in
``tests/test_columnar_differential.py`` and the accel digest pins in
``tests/test_kernel_rewrite.py``; this module covers the plumbing around it —
name validation, the numpy-less fallback, the ``REPRO_BACKEND`` default, the
engine-level backend override, the canonical-run-key exclusion, and the
benchmark environment-variable convention.
"""

from __future__ import annotations

import dataclasses
import pathlib
import random
import warnings

import pytest

import repro.core.backends as backends
from repro.config import DMU_BACKENDS, DMUConfig
from repro.core.dmu import DependenceManagementUnit
from repro.errors import ConfigurationError
from repro.experiments.cache import canonical_run_key
from repro.experiments.campaign import CampaignEngine
from repro.experiments.common import SimulationRunner

from tests.util import make_config


def _small_dmu_config(backend: str) -> DMUConfig:
    return DMUConfig(
        tat_entries=32, dat_entries=32,
        tat_associativity=4, dat_associativity=4,
        successor_list_entries=16, dependence_list_entries=16,
        reader_list_entries=16, elements_per_list_entry=4,
        ready_queue_entries=32, backend=backend,
    )


def _run_short_stream(dmu: DependenceManagementUnit, seed: int = 3) -> list:
    """A short create/add/complete/finish stream; returns the op log."""
    rng = random.Random(seed)
    log = []
    addresses = [0x4000 + 0x40 * i for i in range(12)]
    for address in addresses:
        result = dmu.create_task(address)
        log.append((result.task_id, result.cycles))
        for _ in range(rng.randrange(3)):
            add = dmu.add_dependence(
                address, 0x9000 + 0x100 * rng.randrange(6), 256,
                rng.choice(["in", "out"]),
            )
            log.append((add.dependence_id, add.predecessors_added, add.cycles))
        done = dmu.complete_creation(address)
        log.append((done.became_ready, done.cycles))
    while True:
        ready = dmu.get_ready_task()
        if ready.descriptor_address is None:
            break
        finish = dmu.finish_task(ready.descriptor_address)
        log.append((ready.descriptor_address, finish.tasks_woken, finish.cycles))
    log.append(dmu.stats.as_dict())
    return log


class TestBackendResolution:
    def test_default_is_pure(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert backends.resolve_backend(None).name == "pure"
        assert DMUConfig().backend == "pure"

    def test_unknown_name_rejected_by_validate_and_resolver(self):
        with pytest.raises(ConfigurationError, match="unknown DMU backend"):
            DMUConfig(backend="gpu").validate()
        with pytest.raises(ConfigurationError, match="unknown DMU backend"):
            backends.resolve_backend("gpu")

    def test_backends_are_singletons(self):
        assert backends.resolve_backend("pure") is backends.resolve_backend("pure")
        if backends.numpy_available():
            assert (
                backends.resolve_backend("accel")
                is backends.resolve_backend("accel")
            )

    def test_repro_backend_env_sets_the_config_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "accel")
        assert DMUConfig().backend == "accel"
        monkeypatch.setenv("REPRO_BACKEND", "")
        assert DMUConfig().backend == "pure"
        monkeypatch.delenv("REPRO_BACKEND")
        assert DMUConfig().backend == "pure"
        # An explicit field value always beats the environment.
        monkeypatch.setenv("REPRO_BACKEND", "accel")
        assert DMUConfig(backend="pure").backend == "pure"


class TestNumpylessFallback:
    """``accel`` on a numpy-less host warns and degrades to ``pure``."""

    def test_resolver_warns_and_returns_pure(self, monkeypatch):
        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="requires numpy"):
            backend = backends.resolve_backend("accel")
        assert backend.name == "pure"

    def test_fallback_dmu_matches_pure_results(self, monkeypatch):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the pure build must not warn
            pure_log = _run_short_stream(
                DependenceManagementUnit(_small_dmu_config("pure"))
            )
        monkeypatch.setattr(backends, "numpy_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="falling back to the 'pure'"):
            fallback = DependenceManagementUnit(_small_dmu_config("accel"))
        assert fallback.backend.name == "pure"
        # No accel kernels were installed on the fallback instance …
        assert "create_task" not in fallback.__dict__
        # … and the results are the pure results.
        assert _run_short_stream(fallback) == pure_log


class TestEngineBackendOverride:
    def test_engine_applies_backend_to_request_dmu_configs(self):
        engine = CampaignEngine(scale=0.1, backend="accel")
        assert engine.base_config.dmu.backend == "accel"
        # Sweeps hand in bare DMU sizings; the engine backend still applies.
        sizing = DMUConfig(tat_entries=256, dat_entries=256, backend="pure")
        resolved = engine.config_for("tdm", "fifo", dmu=sizing)
        assert resolved.dmu.backend == "accel"
        assert resolved.dmu.tat_entries == 256

    def test_engine_default_leaves_config_backend_alone(self):
        engine = CampaignEngine(scale=0.1)
        assert engine.backend is None
        sizing = DMUConfig(backend="accel")
        assert engine.config_for("tdm", "fifo", dmu=sizing).dmu.backend == "accel"

    def test_runner_exposes_backend(self):
        assert SimulationRunner(scale=0.1).backend is None
        assert SimulationRunner(scale=0.1, backend="accel").backend == "accel"


class TestCanonicalKeyExclusion:
    """Backends are execution strategies: run keys must not see them."""

    def test_key_is_backend_invariant(self):
        keys = {
            canonical_run_key(
                make_config(dmu=_small_dmu_config(backend)),
                benchmark="cholesky", scale=0.1,
            )
            for backend in DMU_BACKENDS
        }
        assert len(keys) == 1

    def test_key_still_sees_semantic_dmu_fields(self):
        base = _small_dmu_config("pure")
        resized = dataclasses.replace(base, tat_entries=16)
        assert canonical_run_key(
            make_config(dmu=base), benchmark="cholesky", scale=0.1
        ) != canonical_run_key(
            make_config(dmu=resized), benchmark="cholesky", scale=0.1
        )


class TestBenchEnvConvention:
    """The campaign scripts honor REPRO_BENCH_* through the shared shim.

    The handling itself lives in :mod:`repro.experiments.env` (exhaustively
    covered by ``tests/test_env.py``); here we pin that the script layer
    actually routes through it — the drift this convention fixes was
    ``scripts/run_campaign_rest.py`` carrying a private copy.
    """

    def test_new_name_wins_without_warning(self, monkeypatch):
        from repro.experiments.env import bench_env

        monkeypatch.setenv("REPRO_BENCH_JOBS", "4")
        monkeypatch.setenv("REPRO_JOBS", "2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert bench_env("JOBS", "REPRO_JOBS") == "4"

    def test_deprecated_name_warns_and_is_honored(self, monkeypatch):
        from repro.experiments.env import bench_env

        monkeypatch.delenv("REPRO_BENCH_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        with pytest.warns(DeprecationWarning, match="REPRO_CACHE_DIR is deprecated"):
            value = bench_env("CACHE_DIR", "REPRO_CACHE_DIR")
        assert value == "/tmp/somewhere"

    def test_empty_values_count_as_unset(self, monkeypatch):
        from repro.experiments.env import bench_env

        monkeypatch.setenv("REPRO_BENCH_BACKEND", "")
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert bench_env("BACKEND") is None

    @pytest.mark.parametrize(
        "script", ["run_campaign_rest.py", "run_campaign.py", "run_server.py"]
    )
    def test_scripts_use_the_shared_shim(self, script):
        path = pathlib.Path(__file__).resolve().parent.parent / "scripts" / script
        source = path.read_text(encoding="utf-8")
        assert "from repro.experiments.env import" in source
        assert "def bench_env" not in source  # no private copies left
