"""Property-based and rejection tests for the task-graph trace importer.

Three law families, per the scenario subsystem's reproducibility contract
(docs/scenarios.md):

* **Round-trip** — ``parse → export → parse`` preserves the structural
  :func:`~repro.scenarios.trace.program_digest`, in both the JSON and the
  CSV flavor, for arbitrary valid documents.
* **Order-insensitivity** — shuffling task declaration order inside a
  region changes nothing: the canonical (Kahn, uid tie-break) ordering
  makes the imported program — and therefore every simulation result and
  canonical run key derived from it — a pure function of the graph.
* **Rejection** — cyclic, dangling, duplicate-uid and malformed documents
  fail with :class:`~repro.errors.TraceFormatError` carrying a precise
  location (JSON path or CSV line number) and an actionable message.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError
from repro.scenarios.trace import (
    TOKEN_BASE,
    TRACE_FORMAT_VERSION,
    dumps_trace,
    loads_trace,
    parse_trace,
    program_digest,
)

MODES = ("in", "out", "inout")


@st.composite
def trace_documents(draw):
    """Arbitrary *valid* trace documents, declaration order shuffled.

    ``after`` edges always point from a later to an earlier position in a
    hidden topological order, so the graph is acyclic by construction; the
    emitted declaration order is an independent shuffle of that order.
    """
    rng = random.Random(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    num_regions = draw(st.integers(min_value=1, max_value=2))
    regions = []
    next_uid = 0
    for region_index in range(num_regions):
        num_tasks = draw(st.integers(min_value=1, max_value=8))
        uids = list(range(next_uid, next_uid + num_tasks))
        next_uid += num_tasks
        rng.shuffle(uids)  # uid values need not follow topological order
        tasks = []
        for position, uid in enumerate(uids):
            task = {
                "uid": uid,
                "work_us": draw(
                    st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
                ),
            }
            if draw(st.booleans()):
                task["name"] = f"t{uid}"
            accesses = []
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                accesses.append(
                    {
                        "address": draw(
                            st.integers(min_value=0, max_value=TOKEN_BASE - 1)
                        ),
                        "size": draw(st.integers(min_value=1, max_value=1 << 20)),
                        "mode": draw(st.sampled_from(MODES)),
                    }
                )
            if accesses:
                task["accesses"] = accesses
            predecessors = uids[:position]
            if predecessors:
                count = draw(
                    st.integers(min_value=0, max_value=min(3, len(predecessors)))
                )
                if count:
                    task["after"] = rng.sample(predecessors, count)
            tasks.append(task)
        rng.shuffle(tasks)  # declaration order must not matter
        region = {"name": f"r{region_index}", "tasks": tasks}
        if draw(st.booleans()):
            region["sequential_us_before"] = draw(
                st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
            )
        regions.append(region)
    return {"version": TRACE_FORMAT_VERSION, "name": "prop", "regions": regions}


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(document=trace_documents())
    def test_json_round_trip_preserves_digest(self, document):
        program = parse_trace(document)
        reimported = loads_trace(dumps_trace(program, "json"), "json")
        assert program_digest(reimported) == program_digest(program)

    @settings(max_examples=60, deadline=None)
    @given(document=trace_documents())
    def test_csv_round_trip_preserves_digest(self, document):
        program = parse_trace(document)
        reimported = loads_trace(dumps_trace(program, "csv"), "csv")
        assert program_digest(reimported) == program_digest(program)

    @settings(max_examples=40, deadline=None)
    @given(document=trace_documents())
    def test_import_is_idempotent(self, document):
        """Exporting an imported program and importing again is a fixpoint."""
        once = parse_trace(document)
        twice = loads_trace(dumps_trace(once, "json"), "json")
        assert dumps_trace(twice, "json") == dumps_trace(once, "json")


class TestOrderInsensitivity:
    @settings(max_examples=60, deadline=None)
    @given(
        document=trace_documents(),
        shuffle_seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_declaration_order_is_irrelevant(self, document, shuffle_seed):
        baseline = program_digest(parse_trace(document))
        rng = random.Random(shuffle_seed)
        for region in document["regions"]:
            rng.shuffle(region["tasks"])
        assert program_digest(parse_trace(document)) == baseline

    def test_canonical_run_key_ignores_declaration_order(self, tmp_path):
        """Shuffled fixtures leave the campaign run key untouched end to end.

        The canonical run key hashes the workload *parameters* (name, scale,
        granularity, seed) rather than the built program, so this holds by
        construction — but the digest laws above are what make it *sound*:
        equal parameters must imply an equal program.  Pin both halves.
        """
        import json
        import pathlib

        from repro.experiments.campaign import CampaignEngine, RunRequest

        source = pathlib.Path("src/repro/scenarios/traces/mapreduce.json")
        document = json.loads(source.read_text(encoding="utf-8"))
        shuffled = json.loads(source.read_text(encoding="utf-8"))
        shuffled["regions"][0]["tasks"].reverse()
        assert program_digest(parse_trace(document)) == program_digest(
            parse_trace(shuffled)
        )
        engine = CampaignEngine(scale=0.1)
        key = engine.resolve(RunRequest("trace_mapreduce", "tdm")).key
        assert key == CampaignEngine(scale=0.1).resolve(
            RunRequest("trace_mapreduce", "tdm")
        ).key


def _document(tasks, **region_extra):
    region = {"name": "r0", "tasks": tasks}
    region.update(region_extra)
    return {"version": TRACE_FORMAT_VERSION, "name": "bad", "regions": [region]}


class TestRejection:
    def test_cycle_is_rejected_with_uid_path(self):
        tasks = [
            {"uid": 0, "work_us": 1.0, "after": [2]},
            {"uid": 1, "work_us": 1.0, "after": [0]},
            {"uid": 2, "work_us": 1.0, "after": [1]},
        ]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        message = str(info.value)
        assert "cycle" in message
        assert "0" in message and "1" in message and "2" in message

    def test_dangling_after_reference(self):
        tasks = [{"uid": 0, "work_us": 1.0, "after": [7]}]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        assert "regions[0].tasks[0].after" in str(info.value)
        assert "unknown uid 7" in str(info.value)

    def test_cross_region_after_reference(self):
        document = {
            "version": TRACE_FORMAT_VERSION,
            "name": "bad",
            "regions": [
                {"name": "r0", "tasks": [{"uid": 0, "work_us": 1.0}]},
                {"name": "r1", "tasks": [{"uid": 1, "work_us": 1.0, "after": [0]}]},
            ],
        }
        with pytest.raises(TraceFormatError) as info:
            parse_trace(document)
        assert "another region" in str(info.value)

    def test_duplicate_uid_names_first_declaration(self):
        tasks = [
            {"uid": 5, "work_us": 1.0},
            {"uid": 5, "work_us": 2.0},
        ]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        message = str(info.value)
        assert "regions[0].tasks[1].uid" in message
        assert "duplicate uid 5" in message
        assert "regions[0].tasks[0]" in message

    def test_self_reference_is_rejected(self):
        tasks = [{"uid": 0, "work_us": 1.0, "after": [0]}]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        assert "depends on itself" in str(info.value)

    def test_bad_access_mode_location(self):
        tasks = [
            {
                "uid": 0,
                "work_us": 1.0,
                "accesses": [
                    {"address": 0x1000, "size": 64, "mode": "in"},
                    {"address": 0x2000, "size": 64, "mode": "readwrite"},
                ],
            }
        ]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        assert "regions[0].tasks[0].accesses[1].mode" in str(info.value)

    def test_reserved_token_range_is_rejected(self):
        tasks = [
            {
                "uid": 0,
                "work_us": 1.0,
                "accesses": [{"address": TOKEN_BASE, "size": 64, "mode": "in"}],
            }
        ]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        assert "reserved token range" in str(info.value)

    def test_unsupported_version(self):
        with pytest.raises(TraceFormatError) as info:
            parse_trace({"version": 99, "name": "x", "regions": []})
        assert "version" in str(info.value)
        assert "99" in str(info.value)

    def test_unknown_field_is_rejected(self):
        tasks = [{"uid": 0, "work_us": 1.0, "colour": "red"}]
        with pytest.raises(TraceFormatError) as info:
            parse_trace(_document(tasks))
        assert "colour" in str(info.value)

    def test_csv_errors_carry_line_numbers(self):
        text = (
            "region,uid,name,kind,work_us,accesses,after,"
            "memory_sensitivity,creation_work_us,sequential_us_before\n"
            "r0,0,a,k,10.0,,,,,\n"
            "r0,nope,b,k,10.0,,,,,\n"
        )
        with pytest.raises(TraceFormatError) as info:
            loads_trace(text, "csv")
        assert "line 3" in str(info.value)

    def test_csv_bad_header(self):
        with pytest.raises(TraceFormatError) as info:
            loads_trace("uid,work_us\n1,2\n", "csv")
        assert "line 1" in str(info.value)

    def test_invalid_json_carries_line(self):
        with pytest.raises(TraceFormatError) as info:
            loads_trace('{"version": 1,\n  "oops"\n}', "json")
        assert "line" in str(info.value)
