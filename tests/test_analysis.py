"""Analysis utilities: metrics, graph analysis and execution validation."""

import pytest

from repro.analysis.graph import critical_path_us, max_parallelism
from repro.analysis.metrics import (
    geometric_mean,
    normalize,
    percentage_improvement,
    relative_change,
    speedup,
)
from repro.analysis.validation import ReferenceGraph, validate_execution
from repro.errors import ValidationError
from repro.runtime.task import TaskInstance, TaskInstanceFactory
from repro.sim.machine import run_simulation
from repro.workloads.synthetic import chain_program

from tests.util import diamond_program, make_config


class TestMetrics:
    def test_geometric_mean_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_geometric_mean_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(200.0, 100.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(100.0, 0.0)

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_relative_change_and_improvement(self):
        assert relative_change(100.0, 80.0) == pytest.approx(-0.2)
        assert percentage_improvement(100.0, 80.0) == pytest.approx(20.0)
        with pytest.raises(ValueError):
            relative_change(0.0, 10.0)


class TestGraphAnalysis:
    def test_diamond_critical_path(self):
        program = diamond_program(work_us=10.0)
        assert critical_path_us(program) == pytest.approx(30.0)
        assert max_parallelism(program) == pytest.approx(40.0 / 30.0)

    def test_chain_critical_path(self):
        program = chain_program(num_chains=2, chain_length=5, work_us=10.0)
        assert critical_path_us(program) == pytest.approx(50.0)

    def test_reference_graph_regions(self):
        program = diamond_program()
        graph = ReferenceGraph.from_program(program)
        assert set(graph.region_of.values()) == {0}
        assert (0, 1) in graph.edges and (0, 2) in graph.edges


class TestValidation:
    def _simulated_instances(self, program):
        result = run_simulation(program, make_config(runtime="software"))
        return result.task_instances

    def test_valid_execution_passes(self, diamond):
        instances = self._simulated_instances(diamond)
        validate_execution(diamond, instances)

    def test_detects_dependence_violation(self, diamond):
        instances = self._simulated_instances(diamond)
        by_name = {i.name: i for i in instances}
        # Forge a start time before the predecessor finished.
        by_name["D"].created_cycle = 0
        by_name["D"].start_cycle = 0
        with pytest.raises(ValidationError, match="dependence violated"):
            validate_execution(diamond, instances)

    def test_detects_missing_task(self, diamond):
        instances = self._simulated_instances(diamond)
        with pytest.raises(ValidationError, match="never created"):
            validate_execution(diamond, instances[:-1])

    def test_detects_unfinished_task(self, diamond):
        factory = TaskInstanceFactory()
        instances = [factory.create(defn, 0) for defn in diamond.all_tasks()]
        with pytest.raises(ValidationError, match="never finished"):
            validate_execution(diamond, instances)

    def test_detects_duplicate_instances(self, diamond):
        instances = self._simulated_instances(diamond)
        with pytest.raises(ValidationError, match="twice"):
            validate_execution(diamond, list(instances) + [instances[0]])

    def test_detects_inverted_timestamps(self, diamond):
        instances = self._simulated_instances(diamond)
        instances[0].finish_cycle = 1
        instances[0].start_cycle = 100
        with pytest.raises(ValidationError):
            validate_execution(diamond, instances)

    def test_detects_barrier_violation(self):
        from repro.workloads.synthetic import fork_join_program

        program = fork_join_program(num_waves=2, tasks_per_wave=2, work_us=10.0)
        result = run_simulation(program, make_config(runtime="software"))
        instances = result.task_instances
        # Pretend a second-region task started before the first region ended.
        second_region_task = [i for i in instances if i.uid >= 2][0]
        second_region_task.start_cycle = 0
        second_region_task.created_cycle = 0
        with pytest.raises(ValidationError, match="barrier violated"):
            validate_execution(program, instances)
