"""Task Table, Dependence Table and Ready Queue."""

import pytest

from repro.core.dependence_table import DependenceTable, DependenceTableEntry
from repro.core.ready_queue import ReadyQueue
from repro.core.task_table import TaskTable, TaskTableEntry
from repro.errors import DMUProtocolError


class TestTaskTable:
    def test_install_get_free(self):
        table = TaskTable(8)
        entry = TaskTableEntry(descriptor_address=0x1234, successor_list=1, dependence_list=2)
        table.install(3, entry)
        assert table.get(3) is entry
        assert table.occupancy == 1
        table.free(3)
        assert table.occupancy == 0
        assert not table.is_valid(3)

    def test_double_install_rejected(self):
        table = TaskTable(4)
        table.install(0, TaskTableEntry(descriptor_address=1))
        with pytest.raises(DMUProtocolError):
            table.install(0, TaskTableEntry(descriptor_address=2))

    def test_get_invalid_rejected(self):
        with pytest.raises(DMUProtocolError):
            TaskTable(4).get(1)

    def test_double_free_rejected(self):
        table = TaskTable(4)
        table.install(1, TaskTableEntry(descriptor_address=1))
        table.free(1)
        with pytest.raises(DMUProtocolError):
            table.free(1)

    def test_out_of_range_id_rejected(self):
        with pytest.raises(DMUProtocolError):
            TaskTable(4).get(4)

    def test_peak_occupancy(self):
        table = TaskTable(4)
        for task_id in range(3):
            table.install(task_id, TaskTableEntry(descriptor_address=task_id))
        table.free(0)
        assert table.peak_occupancy == 3
        assert table.occupancy == 2


class TestDependenceTable:
    def test_install_get_free(self):
        table = DependenceTable(8)
        entry = DependenceTableEntry()
        table.install(5, entry)
        assert table.get(5) is entry
        table.free(5)
        assert table.occupancy == 0

    def test_last_writer_lifecycle(self):
        entry = DependenceTableEntry()
        assert not entry.last_writer_valid
        entry.set_last_writer(7)
        assert entry.last_writer == 7 and entry.last_writer_valid
        entry.invalidate_last_writer()
        assert not entry.last_writer_valid

    def test_double_install_rejected(self):
        table = DependenceTable(4)
        table.install(0, DependenceTableEntry())
        with pytest.raises(DMUProtocolError):
            table.install(0, DependenceTableEntry())

    def test_invalid_id_rejected(self):
        with pytest.raises(DMUProtocolError):
            DependenceTable(4).get(9)


class TestReadyQueue:
    def test_fifo_order(self):
        queue = ReadyQueue(8)
        for task_id in (4, 2, 9):
            queue.push(task_id)
        assert [queue.pop(), queue.pop(), queue.pop()] == [4, 2, 9]

    def test_pop_empty_returns_none(self):
        assert ReadyQueue(4).pop() is None

    def test_statistics(self):
        queue = ReadyQueue(8)
        queue.push(1)
        queue.push(2)
        queue.pop()
        assert queue.total_pushes == 2
        assert queue.total_pops == 1
        assert queue.peak_occupancy == 2
        assert len(queue) == 1
        assert not queue.is_empty

    def test_overflow_rejected(self):
        queue = ReadyQueue(2)
        queue.push(1)
        queue.push(2)
        with pytest.raises(DMUProtocolError):
            queue.push(3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReadyQueue(0)
