"""Task Table, Dependence Table and Ready Queue (columnar storage)."""

import pytest

from repro.core.dependence_table import DependenceTable
from repro.core.ready_queue import ReadyQueue
from repro.core.task_table import TaskTable
from repro.errors import DMUProtocolError


class TestTaskTable:
    def test_install_read_free(self):
        table = TaskTable(8)
        table.install(3, descriptor_address=0x1234, successor_list=1, dependence_list=2)
        assert table.descriptor_address[3] == 0x1234
        assert table.successor_list[3] == 1
        assert table.dependence_list[3] == 2
        assert table.predecessor_count[3] == 0
        assert table.successor_count[3] == 0
        assert not table.creation_complete[3]
        assert table.occupancy == 1
        table.free(3)
        assert table.occupancy == 0
        assert not table.is_valid(3)

    def test_columns_grow_on_demand(self):
        table = TaskTable(1 << 20)  # "ideal" sizing costs nothing up front
        assert len(table.descriptor_address) == 0
        table.install(5, descriptor_address=0xAB, successor_list=0, dependence_list=1)
        assert len(table.descriptor_address) == 6
        assert table.is_valid(5)
        assert not table.is_valid(4)

    def test_recycled_slot_is_reinitialized(self):
        table = TaskTable(8)
        table.install(2, descriptor_address=0x1, successor_list=3, dependence_list=4)
        table.predecessor_count[2] = 7
        table.creation_complete[2] = 1
        table.free(2)
        table.install(2, descriptor_address=0x2, successor_list=5, dependence_list=6)
        assert table.predecessor_count[2] == 0
        assert not table.creation_complete[2]
        assert table.descriptor_address[2] == 0x2

    def test_double_install_rejected(self):
        table = TaskTable(4)
        table.install(0, descriptor_address=1, successor_list=0, dependence_list=0)
        with pytest.raises(DMUProtocolError):
            table.install(0, descriptor_address=2, successor_list=0, dependence_list=0)

    def test_require_invalid_rejected(self):
        with pytest.raises(DMUProtocolError):
            TaskTable(4).require(1)

    def test_double_free_rejected(self):
        table = TaskTable(4)
        table.install(1, descriptor_address=1, successor_list=0, dependence_list=0)
        table.free(1)
        with pytest.raises(DMUProtocolError):
            table.free(1)

    def test_out_of_range_id_rejected(self):
        with pytest.raises(DMUProtocolError):
            TaskTable(4).require(4)
        with pytest.raises(DMUProtocolError):
            TaskTable(4).install(4, descriptor_address=0, successor_list=0, dependence_list=0)
        with pytest.raises(DMUProtocolError):
            TaskTable(4).free(4)

    def test_peak_occupancy(self):
        table = TaskTable(4)
        for task_id in range(3):
            table.install(task_id, descriptor_address=task_id, successor_list=0, dependence_list=0)
        table.free(0)
        assert table.peak_occupancy == 3
        assert table.occupancy == 2


class TestDependenceTable:
    def test_install_read_free(self):
        table = DependenceTable(8)
        table.install(5, address=0xBEEF, size=64)
        assert table.last_writer[5] == -1
        assert not table.last_writer_valid[5]
        assert table.reader_list[5] == -1
        assert table.address[5] == 0xBEEF
        assert table.size[5] == 64
        table.free(5)
        assert table.occupancy == 0

    def test_last_writer_lifecycle(self):
        table = DependenceTable(4)
        table.install(0)
        table.last_writer[0] = 7
        table.last_writer_valid[0] = 1
        assert table.last_writer[0] == 7 and table.last_writer_valid[0]
        table.last_writer[0] = -1
        table.last_writer_valid[0] = 0
        assert not table.last_writer_valid[0]

    def test_recycled_slot_is_reinitialized(self):
        table = DependenceTable(4)
        table.install(1, address=0x10, size=4)
        table.last_writer[1] = 3
        table.last_writer_valid[1] = 1
        table.reader_list[1] = 9
        table.free(1)
        table.install(1, address=0x20, size=8)
        assert table.last_writer[1] == -1
        assert not table.last_writer_valid[1]
        assert table.reader_list[1] == -1
        assert table.address[1] == 0x20

    def test_double_install_rejected(self):
        table = DependenceTable(4)
        table.install(0)
        with pytest.raises(DMUProtocolError):
            table.install(0)

    def test_require_invalid_rejected(self):
        with pytest.raises(DMUProtocolError):
            DependenceTable(4).require(9)
        with pytest.raises(DMUProtocolError):
            DependenceTable(4).require(2)

    def test_is_valid_bounds(self):
        table = DependenceTable(4)
        table.install(2)
        assert table.is_valid(2)
        assert not table.is_valid(3)
        with pytest.raises(DMUProtocolError):
            table.is_valid(4)


class TestReadyQueue:
    def test_fifo_order(self):
        queue = ReadyQueue(8)
        for task_id in (4, 2, 9):
            queue.push(task_id)
        assert [queue.pop(), queue.pop(), queue.pop()] == [4, 2, 9]

    def test_pop_empty_returns_none(self):
        assert ReadyQueue(4).pop() is None

    def test_statistics(self):
        queue = ReadyQueue(8)
        queue.push(1)
        queue.push(2)
        queue.pop()
        assert queue.total_pushes == 2
        assert queue.total_pops == 1
        assert queue.peak_occupancy == 2
        assert len(queue) == 1
        assert not queue.is_empty

    def test_overflow_rejected(self):
        queue = ReadyQueue(2)
        queue.push(1)
        queue.push(2)
        with pytest.raises(DMUProtocolError):
            queue.push(3)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ReadyQueue(0)
