"""Benchmark workload generators: Table II characteristics and structure."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    PAPER_BENCHMARKS,
    PAPER_LABELS,
    PAPER_TABLE2,
    available_workloads,
    create_workload,
    register_workload,
)
from repro.workloads.base import Workload
from repro.workloads.cholesky import CholeskyWorkload
from repro.workloads.qr import QRWorkload


class TestRegistry:
    def test_all_paper_benchmarks_registered(self):
        names = available_workloads()
        for name in PAPER_BENCHMARKS:
            assert name in names

    def test_labels_cover_all_benchmarks(self):
        assert set(PAPER_LABELS) == set(PAPER_BENCHMARKS)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            create_workload("linpack")

    def test_custom_registration(self):
        class TinyWorkload(CholeskyWorkload):
            name = "tiny_cholesky_test"

        register_workload("tiny_cholesky_test", TinyWorkload, replace=True)
        assert isinstance(create_workload("tiny_cholesky_test", scale=0.1), TinyWorkload)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            create_workload("cholesky", scale=0.0)
        with pytest.raises(ConfigurationError):
            create_workload("cholesky", scale=1.5)


class TestTable2FullScale:
    """Task counts at scale=1.0 match Table II (exactly where the structure
    allows it, within a few percent otherwise)."""

    EXACT = {"cholesky": 5984, "dedup": 244, "ferret": 1536, "fluidanimate": 2560}

    @pytest.mark.parametrize("benchmark_name", PAPER_BENCHMARKS)
    def test_software_task_count_close_to_paper(self, benchmark_name):
        program = create_workload(benchmark_name, runtime="software").build_program()
        paper = PAPER_TABLE2[benchmark_name].sw_tasks
        if benchmark_name in self.EXACT:
            assert program.num_tasks == paper
        else:
            assert program.num_tasks == pytest.approx(paper, rel=0.02)

    @pytest.mark.parametrize("benchmark_name", PAPER_BENCHMARKS)
    def test_software_duration_close_to_paper(self, benchmark_name):
        program = create_workload(benchmark_name, runtime="software").build_program()
        paper = PAPER_TABLE2[benchmark_name].sw_duration_us
        assert program.average_task_us == pytest.approx(paper, rel=0.05)

    def test_qr_tdm_granularity_matches_table2(self):
        program = create_workload("qr", runtime="tdm").build_program()
        assert program.num_tasks == PAPER_TABLE2["qr"].tdm_tasks

    def test_blackscholes_tdm_granularity_close_to_table2(self):
        program = create_workload("blackscholes", runtime="tdm").build_program()
        assert program.num_tasks == pytest.approx(PAPER_TABLE2["blackscholes"].tdm_tasks, rel=0.03)

    def test_streamcluster_is_fork_join(self):
        workload = create_workload("streamcluster", scale=0.02)
        program = workload.build_program()
        assert len(program.regions) > 1


class TestGranularity:
    @pytest.mark.parametrize("benchmark_name", PAPER_BENCHMARKS)
    def test_optimal_granularity_is_an_option(self, benchmark_name):
        workload = create_workload(benchmark_name)
        options = {option.value for option in workload.granularity_options()}
        assert workload.optimal_granularity("software") in options
        assert workload.optimal_granularity("tdm") in options

    def test_finer_granularity_means_more_smaller_tasks(self):
        coarse = CholeskyWorkload(scale=0.3, granularity=64).build_program()
        fine = CholeskyWorkload(scale=0.3, granularity=16).build_program()
        assert fine.num_tasks > coarse.num_tasks
        assert fine.average_task_us < coarse.average_task_us

    def test_total_work_roughly_preserved_across_granularity(self):
        coarse = CholeskyWorkload(scale=0.3, granularity=64).build_program()
        fine = CholeskyWorkload(scale=0.3, granularity=16).build_program()
        assert fine.total_work_us == pytest.approx(coarse.total_work_us, rel=0.35)

    def test_with_granularity_returns_new_instance(self):
        workload = create_workload("qr")
        finer = workload.with_granularity(4)
        assert finer is not workload
        assert finer.granularity == 4

    def test_for_runtime_selects_table2_granularity(self):
        assert create_workload("qr").for_runtime("tdm").granularity == 4
        assert create_workload("qr").for_runtime("software").granularity == 16

    def test_dedup_and_ferret_have_fixed_granularity(self):
        for name in ("dedup", "ferret"):
            options = create_workload(name).granularity_options()
            assert len(options) == 1


class TestScaling:
    @pytest.mark.parametrize("benchmark_name", PAPER_BENCHMARKS)
    def test_scale_reduces_total_work(self, benchmark_name):
        full = create_workload(benchmark_name, scale=1.0).build_program()
        small = create_workload(benchmark_name, scale=0.25).build_program()
        assert small.total_work_us < full.total_work_us

    def test_determinism(self):
        first = create_workload("histogram", scale=0.5).build_program()
        second = create_workload("histogram", scale=0.5).build_program()
        assert first.num_tasks == second.num_tasks
        assert [t.work_us for t in first.all_tasks()] == [t.work_us for t in second.all_tasks()]

    def test_different_seeds_change_jitter_only(self):
        first = create_workload("lu", scale=0.4, seed=0).build_program()
        second = create_workload("lu", scale=0.4, seed=1).build_program()
        assert first.num_tasks == second.num_tasks
        assert [t.work_us for t in first.all_tasks()] != [t.work_us for t in second.all_tasks()]


class TestStructure:
    @pytest.mark.parametrize("benchmark_name", PAPER_BENCHMARKS)
    def test_describe_reports_consistent_metadata(self, benchmark_name):
        workload = create_workload(benchmark_name, scale=0.25)
        info = workload.describe()
        assert info["workload"] == benchmark_name
        assert info["num_tasks"] > 0
        assert info["average_task_us"] > 0
        assert info["max_dependences_per_task"] >= 1

    @pytest.mark.parametrize("benchmark_name", PAPER_BENCHMARKS)
    def test_memory_sensitivity_in_range(self, benchmark_name):
        workload = create_workload(benchmark_name)
        assert 0.0 <= workload.memory_sensitivity <= 1.0

    def test_cholesky_dependence_pattern(self):
        """spotrf on a diagonal block precedes the strsm tasks of its column."""
        program = CholeskyWorkload(scale=0.15).build_program()
        names = [t.name for t in program.all_tasks()]
        assert names.index("spotrf_0") < names.index("strsm_1_0")

    def test_qr_task_kinds_present(self):
        program = QRWorkload(scale=0.2).build_program()
        kinds = {t.kind for t in program.all_tasks()}
        assert kinds == {"geqrt", "unmqr", "tsqrt", "tsmqr"}

    def test_dedup_io_tasks_serialized_on_output_stream(self):
        program = create_workload("dedup", scale=0.1).build_program()
        io_tasks = [t for t in program.all_tasks() if t.kind == "io"]
        output_addresses = set()
        for task in io_tasks:
            output_addresses.update(
                d.address for d in task.dependences if d.mode.name == "INOUT"
            )
        assert len(output_addresses) == 1

    def test_base_workload_is_abstract(self):
        with pytest.raises(TypeError):
            Workload()  # type: ignore[abstract]
