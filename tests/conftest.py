"""Shared fixtures for the test suite.

Simulation tests run on a small chip (8 cores) and small programs so the
whole suite stays fast; the full 32-core / full-scale configurations are
exercised by the pytest-benchmark harnesses and the experiment CLI instead.
"""

from __future__ import annotations

import os

import pytest

from repro.config import DMU_BACKENDS
from repro.workloads.synthetic import chain_program, fork_join_program, random_dag_program

from tests.util import diamond_program, make_config

__all__ = ["diamond_program", "make_config"]

# The DMU backend the suite runs under.  ``REPRO_BACKEND`` (honored by the
# DMUConfig default in repro.config) lets CI run the identical suite once per
# backend — the accel matrix leg sets REPRO_BACKEND=accel.  Fail fast on a
# typo'd name instead of erroring inside hundreds of tests.
SUITE_BACKEND = os.environ.get("REPRO_BACKEND") or "pure"
if SUITE_BACKEND not in DMU_BACKENDS:
    raise RuntimeError(
        f"REPRO_BACKEND={SUITE_BACKEND!r} is not a DMU backend "
        f"(expected one of {DMU_BACKENDS})"
    )


def pytest_report_header(config):
    return f"repro: DMU backend = {SUITE_BACKEND} (REPRO_BACKEND)"


@pytest.fixture
def small_config():
    return make_config()


@pytest.fixture
def software_config():
    return make_config(runtime="software")


@pytest.fixture
def diamond():
    return diamond_program()


@pytest.fixture
def small_chain_program():
    return chain_program(num_chains=4, chain_length=6, work_us=80.0)


@pytest.fixture
def small_fork_join_program():
    return fork_join_program(num_waves=3, tasks_per_wave=12, work_us=60.0)


@pytest.fixture
def small_random_program():
    return random_dag_program(num_tasks=40, num_addresses=10, seed=7)
