"""The results daemon's service contract, pinned as tests.

The daemon's pitch is the cache story: one long-lived ``ResultCache`` and
program cache serve every request, concurrent identical requests coalesce
to one simulation per canonical key (single-flight), and the bytes a
client receives are *identical* to the CLI render of the same figure —
with an ETag over the resolved key set so revalidation costs nothing.
"""

from __future__ import annotations

import asyncio
import http.client
import io
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.schemas import RenderRequest, etag_for, etag_matches, parse_render_request
from repro.service.server import ResultsService
from repro.service.singleflight import SingleFlight
from repro.errors import ExperimentError

from tests.util import experiment_output

SCALE = 0.05
BENCHMARKS = ["blackscholes"]


class ServiceThread:
    """A live daemon on an ephemeral port, driven from test threads."""

    def __init__(self, cache_dir=None, workers=2):
        self.log = io.StringIO()
        self.service = ResultsService(cache_dir=cache_dir, workers=workers, log=self.log)
        self.address = None
        self._ready = threading.Event()
        self._loop = None
        self._task = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self._loop = asyncio.get_running_loop()
        ready = asyncio.Event()
        bound = []
        self._task = asyncio.create_task(self.service.serve(port=0, ready=ready, bound=bound))
        await ready.wait()
        self.address = bound[0]
        self._ready.set()
        try:
            await self._task
        except asyncio.CancelledError:
            pass

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "daemon did not come up"
        return self

    def __exit__(self, *_exc):
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout=30)

    def request(self, method, path, body=None, headers=None):
        """One HTTP exchange; returns (status, headers-dict, body-bytes)."""
        host, port = self.address
        connection = http.client.HTTPConnection(host, port, timeout=120)
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            return response.status, dict(response.getheaders()), response.read()
        finally:
            connection.close()

    def render(self, name, body=None, headers=None):
        payload = json.dumps(body).encode() if body is not None else None
        return self.request("POST", f"/figures/{name}", payload, headers)


@pytest.fixture(scope="module")
def cli_outputs():
    """Reference CLI bytes of the figures the service tests render."""
    return {
        name: experiment_output(name, SCALE, BENCHMARKS)
        for name in ("figure_02", "figure_12")
    }


@pytest.fixture()
def daemon(tmp_path):
    with ServiceThread(cache_dir=tmp_path / "cache") as live:
        yield live


RENDER_BODY = {"scale": SCALE, "benchmarks": BENCHMARKS, "format": "csv"}


class TestEndpoints:
    def test_healthz(self, daemon):
        status, _, body = daemon.request("GET", "/healthz")
        health = json.loads(body)
        assert status == 200
        assert health["status"] == "ok"
        assert health["cache_dir"] is not None

    def test_experiments_lists_the_registry(self, daemon):
        status, _, body = daemon.request("GET", "/experiments")
        catalog = json.loads(body)["experiments"]
        assert status == 200
        names = [entry["name"] for entry in catalog]
        assert "figure_02" in names and "table_03" in names
        by_name = {entry["name"]: entry for entry in catalog}
        assert by_name["figure_02"]["simulates"] is True
        assert by_name["table_03"]["simulates"] is False
        assert "fig2" in by_name["figure_02"]["aliases"]

    def test_unknown_route_and_job_and_experiment_404(self, daemon):
        assert daemon.request("GET", "/nope")[0] == 404
        assert daemon.request("GET", "/jobs/job-999")[0] == 404
        assert daemon.render("figure_99", RENDER_BODY)[0] == 404

    def test_wrong_method_405(self, daemon):
        assert daemon.request("POST", "/experiments", b"{}")[0] == 405
        assert daemon.request("GET", "/figures/figure_02")[0] == 405

    def test_invalid_bodies_400(self, daemon):
        assert daemon.render("figure_02", {"scale": 7})[0] == 400
        assert daemon.render("figure_02", {"scales": 0.1})[0] == 400
        assert daemon.render("figure_02", {"format": "pdf"})[0] == 400
        status, _, body = daemon.request("POST", "/figures/figure_02", b"not json")
        assert status == 400 and b"JSON" in body

    def test_unsupported_option_400(self, daemon):
        # figure_02 has no scheduler sweep; the knob must fail loudly.
        status, _, _ = daemon.render(
            "figure_02", dict(RENDER_BODY, schedulers=["fifo"])
        )
        assert status == 400


class TestRenderContract:
    def test_served_bytes_identical_to_cli_render(self, daemon, cli_outputs):
        status, headers, body = daemon.render("figure_02", RENDER_BODY)
        assert status == 200
        assert body.decode("utf-8") == cli_outputs["figure_02"][0]
        assert headers["Content-Type"].startswith("text/csv")
        status, _, markdown = daemon.render("figure_02", dict(RENDER_BODY, format="md"))
        assert status == 200
        assert markdown.decode("utf-8") == cli_outputs["figure_02"][1]

    def test_warm_rerequest_is_simulation_free_and_revalidates_304(self, daemon):
        status, headers, body = daemon.render("figure_02", RENDER_BODY)
        assert status == 200
        etag = headers["ETag"]
        job = json.loads(daemon.request("GET", "/jobs/" + headers["X-Job-Id"])[2])
        assert job["status"] == "done" and job["simulated"] == job["attempted"] == 1

        # Warm re-request: same bytes, same ETag, zero simulations.
        status2, headers2, body2 = daemon.render("figure_02", RENDER_BODY)
        assert (status2, body2) == (200, body)
        assert headers2["ETag"] == etag
        job2 = json.loads(daemon.request("GET", "/jobs/" + headers2["X-Job-Id"])[2])
        assert job2["simulated"] == 0 and job2["cached_hits"] == 1
        assert "simulated=0" in daemon.log.getvalue()

        # Conditional request: 304, no body, no new job.
        status3, headers3, body3 = daemon.render(
            "figure_02", RENDER_BODY, headers={"If-None-Match": etag}
        )
        assert (status3, body3) == (304, b"")
        assert headers3["ETag"] == etag

    def test_etag_is_backend_blind(self, daemon):
        _, pure_headers, pure_body = daemon.render("figure_02", RENDER_BODY)
        _, accel_headers, accel_body = daemon.render(
            "figure_02", dict(RENDER_BODY, backend="accel")
        )
        assert accel_headers["ETag"] == pure_headers["ETag"]
        assert accel_body == pure_body

    def test_analytic_table_renders_and_revalidates(self, daemon):
        status, headers, body = daemon.render("table_03", {"format": "md"})
        assert status == 200 and b"|" in body
        job = json.loads(daemon.request("GET", "/jobs/" + headers["X-Job-Id"])[2])
        assert job["attempted"] == 0 and job["simulated"] == 0
        status2, _, _ = daemon.render(
            "table_03", {"format": "md"}, headers={"If-None-Match": headers["ETag"]}
        )
        assert status2 == 304

    def test_aliases_resolve(self, daemon, cli_outputs):
        status, _, body = daemon.render("fig2", RENDER_BODY)
        assert status == 200
        assert body.decode("utf-8") == cli_outputs["figure_02"][0]


class TestSingleFlight:
    def test_concurrent_identical_requests_simulate_each_key_once(
        self, daemon, cli_outputs
    ):
        clients = 6
        body = dict(RENDER_BODY)
        with ThreadPoolExecutor(max_workers=clients) as pool:
            outcomes = list(
                pool.map(lambda _: daemon.render("figure_12", body), range(clients))
            )
        assert all(status == 200 for status, _, _ in outcomes)
        bodies = {payload for _, _, payload in outcomes}
        etags = {headers["ETag"] for _, headers, _ in outcomes}
        assert len(bodies) == 1 and len(etags) == 1
        assert bodies.pop().decode("utf-8") == cli_outputs["figure_12"][0]
        service = daemon.service
        engine = next(iter(service.engines.values()))
        planned = len(
            json.loads(daemon.request("GET", "/jobs/job-1")[2])["keys"]
        )
        assert planned > 1  # a real sweep, not a one-key figure
        # The contract: exactly one simulation per canonical key, ever.
        assert engine.simulations_run == planned
        assert service.flights.started >= planned
        assert len(service.flights) == 0

    def test_singleflight_unit_semantics(self):
        async def scenario():
            flights = SingleFlight()
            gate = asyncio.Event()
            runs = []

            async def work():
                await gate.wait()
                runs.append(1)
                return len(runs)

            tasks = [asyncio.create_task(flights.run("key", work)) for _ in range(5)]
            await asyncio.sleep(0)  # let every caller join the flight
            gate.set()
            results = await asyncio.gather(*tasks)
            assert results == [1] * 5 and len(runs) == 1
            assert flights.started == 1 and flights.joined == 4
            # The flight landed, the registry is clean, a rerun re-executes.
            assert len(flights) == 0
            assert await flights.run("key", work) == 2

        asyncio.run(scenario())


class TestSchemas:
    def test_defaults_and_roundtrip(self):
        request = parse_render_request(b"")
        assert request == RenderRequest()
        request = parse_render_request(
            json.dumps(
                {"scale": 0.5, "seed": 3, "benchmarks": ["qr"], "format": "csv"}
            ).encode()
        )
        assert request.scale == 0.5 and request.seed == 3

    def test_rejects_bad_types(self):
        for payload in (
            {"scale": "big"},
            {"scale": True},
            {"seed": 1.5},
            {"benchmarks": "qr"},
            {"schedulers": [1]},
            {"backend": "gpu"},
            [1, 2],
        ):
            with pytest.raises(ExperimentError):
                parse_render_request(json.dumps(payload).encode())

    def test_etag_covers_output_shaping_knobs_only(self):
        base = RenderRequest(scale=0.5, benchmarks=["qr"], format="csv")
        keys = ["aa" * 32, "bb" * 32]
        etag = etag_for("figure_02", base, keys)
        assert etag == etag_for("figure_02", base, list(reversed(keys)))
        # Backend never changes bytes — it must not change the ETag either.
        assert etag == etag_for(
            "figure_02", RenderRequest(scale=0.5, benchmarks=["qr"], format="csv", backend="accel"), keys
        )
        assert etag != etag_for("figure_02", base, keys[:1])
        assert etag != etag_for(
            "figure_02", RenderRequest(scale=0.5, benchmarks=["qr"], format="md"), keys
        )
        assert etag != etag_for("figure_10", base, keys)

    def test_etag_matches_rfc7232(self):
        etag = '"abc"'
        assert etag_matches(etag, etag)
        assert etag_matches('W/"abc"', etag)
        assert etag_matches('"zzz", "abc"', etag)
        assert etag_matches("*", etag)
        assert not etag_matches(None, etag)
        assert not etag_matches('"zzz"', etag)
