"""Unit-conversion helpers."""

import pytest

from repro import units


def test_cycles_per_us_default_clock():
    assert units.cycles_per_us() == 2000.0


def test_cycles_per_us_other_clock():
    assert units.cycles_per_us(1.0) == 1000.0


def test_us_to_cycles_round_trip():
    assert units.us_to_cycles(1.0) == 2000
    assert units.cycles_to_us(2000) == 1.0


def test_us_to_cycles_scales_with_clock():
    assert units.us_to_cycles(2.0, clock_ghz=3.0) == 6000


def test_us_to_cycles_small_value_is_at_least_one_cycle():
    assert units.us_to_cycles(1e-9) == 1


def test_us_to_cycles_zero():
    assert units.us_to_cycles(0.0) == 0


def test_us_to_cycles_negative_raises():
    with pytest.raises(ValueError):
        units.us_to_cycles(-1.0)


def test_cycles_to_seconds():
    assert units.cycles_to_seconds(2_000_000_000) == pytest.approx(1.0)


def test_bits_to_kilobytes():
    assert units.bits_to_kilobytes(8 * 1024) == 1.0
    assert units.bits_to_kilobytes(188_416) == pytest.approx(23.0)


def test_is_power_of_two():
    assert units.is_power_of_two(1)
    assert units.is_power_of_two(2048)
    assert not units.is_power_of_two(0)
    assert not units.is_power_of_two(3)
    assert not units.is_power_of_two(-4)


def test_log2_int():
    assert units.log2_int(1) == 0
    assert units.log2_int(2048) == 11


def test_log2_int_rejects_non_powers():
    with pytest.raises(ValueError):
        units.log2_int(12)
