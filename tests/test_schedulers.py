"""Software scheduling policies and the scheduler registry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.schedulers import (
    AgeScheduler,
    FifoScheduler,
    LifoScheduler,
    LocalityScheduler,
    ReadyEntry,
    SuccessorScheduler,
    available_schedulers,
    create_scheduler,
    register_scheduler,
)
from repro.schedulers.base import Scheduler


def entry(task, creation_seq=0, ready_seq=0, successor_count=0, producer_core=None):
    return ReadyEntry(
        task=task,
        creation_seq=creation_seq,
        ready_seq=ready_seq,
        successor_count=successor_count,
        producer_core=producer_core,
    )


class TestFifoLifo:
    def test_fifo_pops_in_push_order(self):
        scheduler = FifoScheduler()
        for index in range(3):
            scheduler.push(entry(f"t{index}", ready_seq=index))
        assert [scheduler.pop(0).task for _ in range(3)] == ["t0", "t1", "t2"]

    def test_lifo_pops_in_reverse_order(self):
        scheduler = LifoScheduler()
        for index in range(3):
            scheduler.push(entry(f"t{index}", ready_seq=index))
        assert [scheduler.pop(0).task for _ in range(3)] == ["t2", "t1", "t0"]

    def test_pop_empty_returns_none(self):
        assert FifoScheduler().pop(0) is None
        assert LifoScheduler().pop(0) is None


class TestLocality:
    def test_prefers_entries_produced_on_requesting_core(self):
        scheduler = LocalityScheduler()
        scheduler.push(entry("global", producer_core=None))
        scheduler.push(entry("mine", producer_core=3))
        assert scheduler.pop(3).task == "mine"
        assert scheduler.pop(3).task == "global"

    def test_falls_back_to_global_queue(self):
        scheduler = LocalityScheduler()
        scheduler.push(entry("global", producer_core=None))
        assert scheduler.pop(7).task == "global"

    def test_steals_from_other_cores_when_nothing_local(self):
        scheduler = LocalityScheduler()
        scheduler.push(entry("a", producer_core=1))
        scheduler.push(entry("b", producer_core=1))
        scheduler.push(entry("c", producer_core=2))
        # Core 5 has no local work and the global queue is empty: steal from
        # the most loaded per-core queue (core 1).
        assert scheduler.pop(5).task == "a"
        assert len(scheduler) == 2

    def test_len_tracks_all_queues(self):
        scheduler = LocalityScheduler()
        scheduler.push(entry("a", producer_core=0))
        scheduler.push(entry("b"))
        assert len(scheduler) == 2
        scheduler.pop(0)
        scheduler.pop(0)
        assert scheduler.pop(0) is None
        assert len(scheduler) == 0


class TestSuccessor:
    def test_high_priority_for_many_successors(self):
        scheduler = SuccessorScheduler(threshold=1)
        scheduler.push(entry("narrow", successor_count=1))
        scheduler.push(entry("wide", successor_count=5))
        assert scheduler.pop(0).task == "wide"
        assert scheduler.pop(0).task == "narrow"

    def test_fifo_within_priority_class(self):
        scheduler = SuccessorScheduler(threshold=0)
        scheduler.push(entry("a", successor_count=2))
        scheduler.push(entry("b", successor_count=2))
        assert scheduler.pop(0).task == "a"

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            SuccessorScheduler(threshold=-1)


class TestAge:
    def test_oldest_creation_first(self):
        scheduler = AgeScheduler()
        scheduler.push(entry("young", creation_seq=10))
        scheduler.push(entry("old", creation_seq=2))
        scheduler.push(entry("middle", creation_seq=5))
        assert [scheduler.pop(0).task for _ in range(3)] == ["old", "middle", "young"]

    def test_stable_for_equal_age(self):
        scheduler = AgeScheduler()
        scheduler.push(entry("first", creation_seq=1))
        scheduler.push(entry("second", creation_seq=1))
        assert scheduler.pop(0).task == "first"


class TestRegistry:
    def test_paper_schedulers_available(self):
        names = available_schedulers()
        for name in ("fifo", "lifo", "locality", "successor", "age"):
            assert name in names

    def test_create_by_name(self):
        assert isinstance(create_scheduler("fifo"), FifoScheduler)
        assert isinstance(create_scheduler("AGE"), AgeScheduler)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            create_scheduler("round_robin")

    def test_register_custom_scheduler(self):
        class EchoScheduler(FifoScheduler):
            name = "echo_test"

        register_scheduler("echo_test", EchoScheduler, replace=True)
        assert isinstance(create_scheduler("echo_test"), EchoScheduler)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_scheduler("fifo", FifoScheduler)


class TestConservationProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        scheduler_name=st.sampled_from(["fifo", "lifo", "locality", "successor", "age"]),
        pushes=st.lists(
            st.tuples(
                st.integers(0, 100),        # creation_seq
                st.integers(0, 6),          # successor_count
                st.one_of(st.none(), st.integers(0, 7)),  # producer core
            ),
            max_size=40,
        ),
        core=st.integers(0, 7),
    )
    def test_every_pushed_entry_is_popped_exactly_once(self, scheduler_name, pushes, core):
        scheduler: Scheduler = create_scheduler(scheduler_name)
        pushed = []
        for index, (creation_seq, successors, producer) in enumerate(pushes):
            item = entry(
                f"task{index}",
                creation_seq=creation_seq,
                ready_seq=index,
                successor_count=successors,
                producer_core=producer,
            )
            scheduler.push(item)
            pushed.append(item.task)
        popped = []
        while True:
            item = scheduler.pop(core)
            if item is None:
                break
            popped.append(item.task)
        assert sorted(popped) == sorted(pushed)
        assert len(scheduler) == 0
