"""Inode-style list arrays (Figure 5 of the paper)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.list_array import INVALID_ELEMENT, ListArray
from repro.errors import DMUStructureFullError


def make_array(entries=8, elements=4):
    return ListArray("SLA", entries, elements)


class TestBasicOperations:
    def test_new_list_is_empty(self):
        array = make_array()
        head, accesses = array.new_list()
        assert accesses == 1
        assert array.is_empty(head)
        assert array.length(head) == 0

    def test_append_and_iterate(self):
        array = make_array()
        head, _ = array.new_list()
        for value in (3, 1, 4, 1, 5):
            array.append(head, value)
        values, _ = array.iterate(head)
        assert values == [3, 1, 4, 1, 5]
        assert array.length(head) == 5

    def test_list_spills_into_second_entry(self):
        array = make_array(entries=8, elements=4)
        head, _ = array.new_list()
        for value in range(6):
            array.append(head, value)
        assert array.entries_of(head) == 2
        values, accesses = array.iterate(head)
        assert values == list(range(6))
        assert accesses == 2

    def test_appending_needs_new_entry(self):
        array = make_array(elements=2)
        head, _ = array.new_list()
        assert not array.appending_needs_new_entry(head)
        array.append(head, 1)
        array.append(head, 2)
        assert array.appending_needs_new_entry(head)

    def test_remove_existing_element(self):
        array = make_array()
        head, _ = array.new_list()
        for value in (7, 8, 9):
            array.append(head, value)
        found, _ = array.remove(head, 8)
        assert found
        values, _ = array.iterate(head)
        assert values == [7, 9]

    def test_remove_missing_element(self):
        array = make_array()
        head, _ = array.new_list()
        array.append(head, 1)
        found, _ = array.remove(head, 99)
        assert not found

    def test_flush_empties_but_keeps_head(self):
        array = make_array(elements=2)
        head, _ = array.new_list()
        for value in range(5):
            array.append(head, value)
        used_before = array.entries_in_use
        array.flush(head)
        assert array.is_empty(head)
        assert array.entries_in_use < used_before
        assert array.entries_in_use >= 1
        # The list is still usable after a flush.
        array.append(head, 42)
        assert array.iterate(head)[0] == [42]

    def test_free_list_releases_all_entries(self):
        array = make_array(elements=2)
        head, _ = array.new_list()
        for value in range(5):
            array.append(head, value)
        array.free_list(head)
        assert array.free_entries == array.num_entries

    def test_invalid_marker_cannot_be_stored(self):
        array = make_array()
        head, _ = array.new_list()
        with pytest.raises(ValueError):
            array.append(head, INVALID_ELEMENT)


class TestCapacity:
    def test_new_list_exhaustion(self):
        array = make_array(entries=2)
        array.new_list()
        array.new_list()
        with pytest.raises(DMUStructureFullError):
            array.new_list()

    def test_append_exhaustion(self):
        array = make_array(entries=1, elements=2)
        head, _ = array.new_list()
        array.append(head, 1)
        array.append(head, 2)
        with pytest.raises(DMUStructureFullError):
            array.append(head, 3)

    def test_peak_entries_tracked(self):
        array = make_array(entries=4, elements=1)
        head, _ = array.new_list()
        array.append(head, 1)  # fills the head entry
        array.append(head, 2)  # spills into a second entry
        array.free_list(head)
        assert array.peak_entries_used == 2
        assert array.entries_in_use == 0

    def test_accessing_freed_list_rejected(self):
        array = make_array()
        head, _ = array.new_list()
        array.free_list(head)
        with pytest.raises(ValueError):
            array.iterate(head)


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=0, max_value=1000), max_size=40),
        elements_per_entry=st.integers(min_value=1, max_value=8),
    )
    def test_append_iterate_matches_python_list(self, values, elements_per_entry):
        array = ListArray("test", 64, elements_per_entry)
        head, _ = array.new_list()
        for value in values:
            array.append(head, value)
        got, _ = array.iterate(head)
        assert got == values
        assert array.length(head) == len(values)

    @settings(max_examples=60, deadline=None)
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["append", "remove"]), st.integers(0, 20)),
            max_size=60,
        )
    )
    def test_append_remove_matches_reference_model(self, operations):
        array = ListArray("test", 128, 4)
        head, _ = array.new_list()
        reference = []
        for op, value in operations:
            if op == "append":
                array.append(head, value)
                reference.append(value)
            else:
                found, _ = array.remove(head, value)
                if value in reference:
                    assert found
                    reference.remove(value)
                else:
                    assert not found
        got, _ = array.iterate(head)
        assert sorted(got) == sorted(reference)

    @settings(max_examples=40, deadline=None)
    @given(list_sizes=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=10))
    def test_free_returns_all_entries(self, list_sizes):
        array = ListArray("test", 256, 4)
        heads = []
        for size in list_sizes:
            head, _ = array.new_list()
            for value in range(size):
                array.append(head, value)
            heads.append(head)
        for head in heads:
            array.free_list(head)
        assert array.free_entries == array.num_entries
