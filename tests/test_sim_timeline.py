"""Per-thread phase accounting."""

import pytest

from repro.sim.timeline import Phase, Timeline, ThreadTimeline, TimelineRecorder


def test_begin_end_accumulates_totals():
    timeline = ThreadTimeline(0)
    timeline.begin(Phase.EXEC, 0)
    timeline.begin(Phase.IDLE, 100)
    timeline.end(150)
    assert timeline.totals[Phase.EXEC] == 100
    assert timeline.totals[Phase.IDLE] == 50
    assert timeline.total_cycles == 150


def test_intervals_recorded_when_enabled():
    timeline = ThreadTimeline(0, record_intervals=True)
    timeline.begin(Phase.DEPS, 10)
    timeline.begin(Phase.EXEC, 30)
    timeline.end(60)
    assert [(i.phase, i.start, i.end) for i in timeline.intervals] == [
        (Phase.DEPS, 10, 30),
        (Phase.EXEC, 30, 60),
    ]
    assert timeline.intervals[0].duration == 20


def test_intervals_not_recorded_when_disabled():
    timeline = ThreadTimeline(0, record_intervals=False)
    timeline.begin(Phase.DEPS, 0)
    timeline.end(10)
    assert timeline.intervals == []
    assert timeline.totals[Phase.DEPS] == 10


def test_fraction():
    timeline = ThreadTimeline(0)
    timeline.add(Phase.EXEC, 0, 75)
    timeline.add(Phase.IDLE, 75, 100)
    assert timeline.fraction(Phase.EXEC) == pytest.approx(0.75)
    assert timeline.fraction(Phase.IDLE) == pytest.approx(0.25)


def test_fraction_empty_timeline_is_zero():
    assert ThreadTimeline(0).fraction(Phase.EXEC) == 0.0


def test_negative_interval_rejected():
    timeline = ThreadTimeline(0)
    with pytest.raises(ValueError):
        timeline.add(Phase.EXEC, 10, 5)


def test_recorder_finalize_closes_open_intervals():
    recorder = TimelineRecorder(2)
    recorder.thread(0).begin(Phase.EXEC, 0)
    recorder.thread(1).begin(Phase.IDLE, 0)
    timeline = recorder.finalize(200)
    assert timeline.threads[0].totals[Phase.EXEC] == 200
    assert timeline.threads[1].totals[Phase.IDLE] == 200
    assert timeline.end_cycle == 200


def _two_thread_timeline() -> Timeline:
    master = ThreadTimeline(0)
    master.add(Phase.DEPS, 0, 80)
    master.add(Phase.EXEC, 80, 100)
    worker = ThreadTimeline(1)
    worker.add(Phase.EXEC, 0, 60)
    worker.add(Phase.IDLE, 60, 100)
    return Timeline([master, worker], end_cycle=100)


def test_master_and_worker_breakdowns():
    timeline = _two_thread_timeline()
    master = timeline.master_breakdown()
    assert master[Phase.DEPS] == pytest.approx(0.8)
    worker = timeline.worker_breakdown()
    assert worker[Phase.EXEC] == pytest.approx(0.6)
    assert worker[Phase.IDLE] == pytest.approx(0.4)


def test_totals_over_all_threads():
    timeline = _two_thread_timeline()
    totals = timeline.totals()
    assert totals[Phase.EXEC] == 80
    assert totals[Phase.DEPS] == 80
    assert totals[Phase.IDLE] == 40


def test_busy_fraction():
    timeline = _two_thread_timeline()
    assert timeline.busy_fraction() == pytest.approx(1.0 - 40 / 200)


def test_single_thread_worker_breakdown_is_zero():
    timeline = Timeline([ThreadTimeline(0)], end_cycle=10)
    assert all(value == 0.0 for value in timeline.worker_breakdown().values())


def test_relative_rows():
    timeline = _two_thread_timeline()
    rows = timeline.as_relative_rows()
    assert len(rows) == 2
    assert rows[0]["DEPS"] == pytest.approx(0.8)
    assert rows[1]["EXEC"] == pytest.approx(0.6)
