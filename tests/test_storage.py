"""DMU storage/area model (Table III) and baseline storage models."""

import pytest

from repro.config import DMUConfig
from repro.core.storage import (
    CarbonStorageModel,
    DMUStorageModel,
    TaskSuperscalarStorageModel,
    sram_area_mm2,
)

#: Table III of the paper: structure -> (storage KB, area mm^2).
PAPER_TABLE3 = {
    "Task Table": (23.00, 0.026),
    "Dep Table": (5.25, 0.013),
    "TAT": (18.75, 0.031),
    "DAT": (18.75, 0.031),
    "SLA": (12.25, 0.019),
    "DLA": (12.25, 0.019),
    "RLA": (12.25, 0.019),
    "ReadyQ": (2.75, 0.012),
}


class TestDefaultConfigurationMatchesTable3:
    def test_per_structure_storage_exact(self):
        model = DMUStorageModel(DMUConfig())
        by_name = model.by_name()
        for name, (kb, _area) in PAPER_TABLE3.items():
            assert by_name[name].kilobytes == pytest.approx(kb), name

    def test_total_storage(self):
        model = DMUStorageModel(DMUConfig())
        assert model.total_kilobytes == pytest.approx(105.25)

    def test_per_structure_area_close_to_cacti(self):
        model = DMUStorageModel(DMUConfig())
        by_name = model.by_name()
        for name, (_kb, mm2) in PAPER_TABLE3.items():
            assert by_name[name].area_mm2 == pytest.approx(mm2, rel=0.25), name

    def test_total_area_close_to_paper(self):
        model = DMUStorageModel(DMUConfig())
        assert model.total_area_mm2 == pytest.approx(0.17, rel=0.1)

    def test_structure_order_matches_table(self):
        names = [s.name for s in DMUStorageModel().structures()]
        assert names == list(PAPER_TABLE3)


class TestScaling:
    def test_storage_grows_with_entries(self):
        small = DMUStorageModel(DMUConfig())
        large = DMUStorageModel(
            DMUConfig(tat_entries=4096, dat_entries=4096, ready_queue_entries=4096)
        )
        assert large.total_kilobytes > small.total_kilobytes

    def test_id_width_follows_table_sizes(self):
        model = DMUStorageModel(DMUConfig(tat_entries=512, dat_entries=512))
        tat = model.by_name()["TAT"]
        assert tat.bits_per_entry == 64 + 9

    def test_access_energy_positive_and_ordered(self):
        model = DMUStorageModel(DMUConfig())
        by_name = model.by_name()
        assert by_name["TAT"].access_energy_pj > 0
        # Associative structures cost more energy per access than direct SRAM
        # of comparable size.
        assert by_name["TAT"].access_energy_pj > by_name["Task Table"].access_energy_pj * 0.5
        assert model.average_access_energy_pj() > 0


class TestBaselineModels:
    def test_task_superscalar_matches_section6c(self):
        tss = TaskSuperscalarStorageModel(in_flight_entries=2048)
        assert tss.total_kilobytes == pytest.approx(769.0)

    def test_complexity_ratio_is_about_7x(self):
        dmu = DMUStorageModel(DMUConfig())
        tss = TaskSuperscalarStorageModel(in_flight_entries=2048)
        ratio = tss.total_kilobytes / dmu.total_kilobytes
        assert ratio == pytest.approx(7.3, abs=0.1)

    def test_task_superscalar_area_larger_than_dmu(self):
        dmu = DMUStorageModel(DMUConfig())
        tss = TaskSuperscalarStorageModel(in_flight_entries=2048)
        assert tss.total_area_mm2 > dmu.total_area_mm2

    def test_carbon_queues_are_small(self):
        carbon = CarbonStorageModel(num_cores=32)
        assert carbon.total_kilobytes < DMUStorageModel().total_kilobytes
        assert len(carbon.structures()) == 32

    def test_invalid_in_flight_entries_rejected(self):
        with pytest.raises(ValueError):
            TaskSuperscalarStorageModel(in_flight_entries=0)


class TestAreaRegression:
    def test_zero_bits_zero_area(self):
        assert sram_area_mm2(0) == 0.0

    def test_associative_costs_more_than_direct(self):
        assert sram_area_mm2(100_000, associative=True) > sram_area_mm2(100_000, associative=False)

    def test_area_monotonic_in_bits(self):
        assert sram_area_mm2(200_000) > sram_area_mm2(100_000)
