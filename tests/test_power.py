"""Power, energy and EDP models."""

import pytest

from repro.config import ChipConfig, CoreConfig, DMUConfig
from repro.core.stats import DMUStats
from repro.core.storage import DMUStorageModel
from repro.power.energy import ChipEnergyModel, EnergyReport, edp, normalized_edp
from repro.sim.machine import run_simulation
from repro.sim.timeline import Phase, ThreadTimeline, Timeline

from tests.util import diamond_program, make_config


def _timeline(exec_cycles=1000, idle_cycles=1000, deps_cycles=0, threads=2):
    all_threads = []
    for thread_id in range(threads):
        timeline = ThreadTimeline(thread_id)
        timeline.add(Phase.EXEC, 0, exec_cycles)
        timeline.add(Phase.DEPS, exec_cycles, exec_cycles + deps_cycles)
        timeline.add(
            Phase.IDLE, exec_cycles + deps_cycles, exec_cycles + deps_cycles + idle_cycles
        )
        all_threads.append(timeline)
    return Timeline(all_threads, end_cycle=exec_cycles + deps_cycles + idle_cycles)


class TestChipEnergyModel:
    def test_energy_positive_and_additive(self):
        model = ChipEnergyModel(ChipConfig(num_cores=2), DMUStorageModel(DMUConfig()))
        report = model.report(_timeline(), DMUStats())
        assert report.core_energy_mj > 0
        assert report.uncore_energy_mj > 0
        assert report.total_energy_mj == pytest.approx(
            report.core_energy_mj + report.uncore_energy_mj + report.dmu_energy_mj
        )

    def test_busy_threads_consume_more_than_idle_threads(self):
        model = ChipEnergyModel(ChipConfig(num_cores=2))
        busy = model.core_energy_mj(_timeline(exec_cycles=10_000, idle_cycles=0))
        idle = model.core_energy_mj(_timeline(exec_cycles=0, idle_cycles=10_000))
        assert busy > idle

    def test_runtime_phase_power_between_active_and_idle(self):
        core = CoreConfig()
        model = ChipEnergyModel(ChipConfig(num_cores=1, core=core))
        runtime_heavy = model.core_energy_mj(_timeline(exec_cycles=0, deps_cycles=10_000, idle_cycles=0, threads=1))
        exec_heavy = model.core_energy_mj(_timeline(exec_cycles=10_000, deps_cycles=0, idle_cycles=0, threads=1))
        idle_only = model.core_energy_mj(_timeline(exec_cycles=0, deps_cycles=0, idle_cycles=10_000, threads=1))
        assert idle_only < runtime_heavy < exec_heavy

    def test_dmu_energy_negligible_but_positive(self):
        model = ChipEnergyModel(ChipConfig(), DMUStorageModel(DMUConfig()))
        stats = DMUStats()
        stats.record_access("TAT", 1000)
        report = model.report(_timeline(threads=32), stats)
        assert report.dmu_energy_mj > 0
        assert report.dmu_power_fraction < 0.01

    def test_no_dmu_storage_means_zero_dmu_energy(self):
        model = ChipEnergyModel(ChipConfig())
        report = model.report(_timeline(), None)
        assert report.dmu_energy_mj == 0.0


class TestEdpHelpers:
    def test_edp_product(self):
        assert edp(10.0, 2.0) == 20.0

    def test_normalized_edp(self):
        a = EnergyReport(1.0, 10.0, 2.0, 0.0)
        b = EnergyReport(2.0, 10.0, 2.0, 0.0)
        assert normalized_edp(a, b) == pytest.approx(0.5)

    def test_normalized_edp_zero_baseline_rejected(self):
        zero = EnergyReport(0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            normalized_edp(zero, zero)

    def test_report_average_power(self):
        report = EnergyReport(2.0, 1000.0, 1000.0, 0.0)
        assert report.average_power_watts == pytest.approx(1.0)


class TestEndToEndEnergy:
    def test_faster_run_has_lower_edp(self):
        program = diamond_program(work_us=200.0)
        software = run_simulation(program, make_config(runtime="software"))
        tdm = run_simulation(program, make_config(runtime="tdm"))
        if tdm.total_cycles < software.total_cycles:
            assert tdm.edp < software.edp

    def test_paper_claim_dmu_power_below_a_tenth_of_percent(self):
        program = diamond_program(work_us=500.0)
        tdm = run_simulation(program, make_config(runtime="tdm"))
        assert tdm.energy.dmu_power_fraction < 0.001
