"""FIFO lock resource."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Acquire, Timeout
from repro.sim.resources import Lock


def test_lock_grants_in_fifo_order():
    engine = Engine()
    lock = Lock(engine, "l")
    order = []

    def worker(tag, start_delay, hold):
        yield Timeout(start_delay)
        yield Acquire(lock)
        order.append((tag, engine.now))
        yield Timeout(hold)
        lock.release(process_map[tag])

    process_map = {}
    for tag, delay in (("a", 0), ("b", 1), ("c", 2)):
        process_map[tag] = engine.process(worker(tag, delay, 10), name=tag)
    engine.run()
    assert [tag for tag, _ in order] == ["a", "b", "c"]
    # b waits for a's release at t=10, c for b's at t=20.
    assert [t for _, t in order] == [0, 10, 20]


def test_lock_statistics():
    engine = Engine()
    lock = Lock(engine, "l")
    procs = {}

    def worker(tag):
        yield Acquire(lock)
        yield Timeout(4)
        lock.release(procs[tag])

    for tag in ("a", "b"):
        procs[tag] = engine.process(worker(tag), name=tag)
    engine.run()
    assert lock.acquisitions == 2
    assert lock.total_hold_cycles == 8
    assert lock.total_wait_cycles == 4
    assert lock.average_wait_cycles() == 2.0
    assert lock.max_queue_length == 1
    assert not lock.locked


def test_release_by_non_holder_rejected():
    engine = Engine()
    lock = Lock(engine, "l")
    procs = {}

    def holder():
        yield Acquire(lock)
        yield Timeout(100)
        lock.release(procs["holder"])

    def intruder():
        yield Timeout(1)
        lock.release(procs["intruder"])

    procs["holder"] = engine.process(holder(), name="holder")
    procs["intruder"] = engine.process(intruder(), name="intruder")
    with pytest.raises(SimulationError):
        engine.run()


def test_uncontended_lock_has_no_wait():
    engine = Engine()
    lock = Lock(engine, "l")
    procs = {}

    def worker():
        yield Acquire(lock)
        lock.release(procs["w"])
        yield Timeout(1)

    procs["w"] = engine.process(worker(), name="w")
    engine.run()
    assert lock.average_wait_cycles() == 0.0
    assert lock.queue_length == 0
