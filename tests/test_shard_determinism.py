"""The determinism contract of distributed campaigns, pinned as tests.

Every speedup in this repository — process-pool fan-out, content-addressed
caching, the kernel rewrite, and now multi-host sharding — was sold on the
same promise: the rendered figures are *byte-identical* to a serial run.
This module makes that promise executable:

* serial, ``--jobs 2``, and 3-shard split-and-merge executions of the same
  figure must produce identical CSV and Markdown bytes;
* a shard that dies is repaired by rerunning it against its surviving cache
  directory — a pure warm-up with **zero** re-simulations;
* a failing simulation inside a shard becomes a diagnosable manifest entry
  (canonical key + workload parameters), not a raw pool traceback.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import load_cost_profile
from repro.experiments.campaign import CampaignRunError
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import resolve_plan, run_experiment
from repro.experiments.shard import (
    MANIFEST_VERSION,
    ClaimBoard,
    ShardManifest,
    ShardSpec,
    manifest_path,
    merge_shards,
    run_shard_worker,
)

from tests.util import experiment_output, merge_and_render, run_all_shards

SCALE = 0.05
BENCHMARKS = ["blackscholes"]

#: The figures under differential test: tiny but structurally distinct
#: sweeps (1, 2 and 10 canonical keys for one benchmark respectively).
FIGURES = ("figure_02", "figure_10", "figure_12")


@pytest.fixture(scope="module")
def serial_outputs():
    """Reference CSV/Markdown of every figure, rendered fully serially."""
    return {name: experiment_output(name, SCALE, BENCHMARKS) for name in FIGURES}


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("figure", FIGURES)
    def test_jobs2_output_is_byte_identical(self, figure, serial_outputs, tmp_path):
        runner = SimulationRunner(scale=SCALE, jobs=2, cache_dir=tmp_path / "cache")
        assert experiment_output(figure, SCALE, BENCHMARKS, runner) == serial_outputs[figure]

    @pytest.mark.parametrize("figure", FIGURES)
    def test_three_shard_split_and_merge_is_byte_identical(
        self, figure, serial_outputs, tmp_path
    ):
        manifests = run_all_shards(figure, SCALE, BENCHMARKS, tmp_path, count=3)
        # The shards partition the plan: every key attempted exactly once.
        all_keys = sorted(key for manifest in manifests for key in manifest.keys)
        planned = resolve_plan(figure, SimulationRunner(scale=SCALE), benchmarks=BENCHMARKS)
        assert all_keys == [item.key for item in planned]
        assert all(not manifest.failures for manifest in manifests)

        csv, markdown, merged_runner = merge_and_render(
            figure, SCALE, BENCHMARKS, tmp_path, count=3
        )
        assert (csv, markdown) == serial_outputs[figure]
        # The render itself was simulation-free: pure merged-cache hits.
        assert merged_runner.cache_info()["simulations_run"] == 0

    def test_shard_workers_write_readable_manifests(self, tmp_path):
        run_all_shards("figure_10", SCALE, BENCHMARKS, tmp_path, count=2)
        for index in (1, 2):
            path = manifest_path(tmp_path / f"shard{index}", "figure_10", ShardSpec(index, 2))
            manifest = ShardManifest.read(path)
            assert manifest.experiment == "figure_10"
            assert manifest.shard_index == index
            assert manifest.shard_count == 2
            assert manifest.scale == SCALE
            assert manifest.simulated == manifest.attempted  # cold caches
            assert manifest.ok


class TestCostAndStealDeterminism:
    """Planning strategy and work stealing never reach the rendered bytes."""

    def test_cost_strategy_split_and_merge_is_byte_identical(
        self, serial_outputs, tmp_path
    ):
        figure = "figure_12"
        manifests = run_all_shards(
            figure, SCALE, BENCHMARKS, tmp_path, count=3, strategy="cost"
        )
        # Cost bins still partition the plan: every key attempted once.
        all_keys = sorted(key for manifest in manifests for key in manifest.keys)
        planned = resolve_plan(figure, SimulationRunner(scale=SCALE), benchmarks=BENCHMARKS)
        assert all_keys == [item.key for item in planned]
        assert all(manifest.strategy == "cost" for manifest in manifests)
        # Cold caches: every simulated key carries a wall-time observation.
        for manifest in manifests:
            assert sorted(manifest.key_timings) == sorted(manifest.keys)
            assert all(seconds > 0 for seconds in manifest.key_timings.values())

        csv, markdown, merged = merge_and_render(figure, SCALE, BENCHMARKS, tmp_path, count=3)
        assert (csv, markdown) == serial_outputs[figure]
        assert merged.cache_info()["simulations_run"] == 0
        # The merge unioned every shard's observations into the calibration
        # corpus of the next cost-planned campaign over this cache.
        profile = load_cost_profile(tmp_path / "merged")
        assert sorted(profile) == all_keys

    def test_steal_absorbs_a_dead_shard_with_every_key_simulated_once(
        self, serial_outputs, tmp_path
    ):
        figure = "figure_12"
        planned = resolve_plan(figure, SimulationRunner(scale=SCALE), benchmarks=BENCHMARKS)
        shared = tmp_path / "shared"
        # Shard 3 of 3 is a dead host: it never runs.  Shards 1 and 2 share
        # one cache directory and steal.
        manifests = []
        for index in (1, 2):
            runner = SimulationRunner(scale=SCALE, cache_dir=shared)
            manifests.append(
                run_shard_worker(
                    figure,
                    ShardSpec(index, 3),
                    runner,
                    benchmarks=BENCHMARKS,
                    strategy="cost",
                    steal=True,
                )
            )
        # Exactly-once: each planned key was simulated by exactly one
        # worker (key_timings records only *simulated* runs), and the two
        # workers together simulated exactly the plan.
        simulated = sorted(key for manifest in manifests for key in manifest.key_timings)
        assert simulated == [item.key for item in planned]
        assert sum(manifest.simulated for manifest in manifests) == len(planned)
        # Somebody stole the dead shard's bin.
        assert any(manifest.stolen_keys for manifest in manifests)
        assert all(not manifest.failures for manifest in manifests)

        # Merge is a completeness check over the shared dir — complete
        # despite the dead host — and renders the exact serial bytes.
        csv, markdown, merged = merge_and_render(
            figure, SCALE, BENCHMARKS, tmp_path, count=3, sources=[shared]
        )
        assert (csv, markdown) == serial_outputs[figure]
        assert merged.cache_info()["simulations_run"] == 0

    def test_steal_rerun_against_warm_shared_cache_simulates_nothing(self, tmp_path):
        figure = "figure_10"
        shared = tmp_path / "shared"
        run_all_shards(
            figure, SCALE, BENCHMARKS, tmp_path, count=2, strategy="cost",
            steal=True, shared=True,
        )
        # Every worker rerun is a pure warm-up: warm keys need no claim, so
        # even the already-claimed board cannot block convergence.
        for index in (1, 2):
            runner = SimulationRunner(scale=SCALE, cache_dir=shared)
            rerun = run_shard_worker(
                figure, ShardSpec(index, 2), runner, benchmarks=BENCHMARKS,
                strategy="cost", steal=True,
            )
            assert rerun.simulated == 0
            assert rerun.cached_hits == rerun.attempted

    def test_claim_board_race_has_exactly_one_winner_per_key(self, tmp_path):
        board = ClaimBoard(tmp_path / "cache")
        keys = [f"{index:064x}" for index in range(64)]

        def contend(worker):
            return [key for key in keys if board.claim(key, owner=f"worker{worker}")]

        with ThreadPoolExecutor(max_workers=4) as pool:
            wins = list(pool.map(contend, range(4)))
        claimed = sorted(key for won in wins for key in won)
        assert claimed == keys  # every key won exactly once across workers
        assert board.claimed_keys() == keys
        assert board.reset() == len(keys)
        assert board.claimed_keys() == []

    def test_stale_claims_from_a_killed_worker_do_not_block_the_rerun(
        self, serial_outputs, tmp_path
    ):
        """The stale-claim regression: a ``--steal`` worker killed after
        claiming (but before simulating) used to leave ``claims/*.claim``
        scratch that made every later worker skip those keys forever — the
        rerun never converged.  Pre-campaign claims are now reclaimed."""
        figure = "figure_12"
        shared = tmp_path / "shared"
        planned = resolve_plan(figure, SimulationRunner(scale=SCALE), benchmarks=BENCHMARKS)
        # A killed worker claimed every key of the plan, simulated none.
        board = ClaimBoard(shared)
        for item in planned:
            assert board.claim(item.key, owner="dead worker")
        # Backdate the claims: a real rerun happens later than the crash,
        # and staleness is judged against the new board's construction time.
        import os
        import time

        past = time.time() - 600
        for item in planned:
            os.utime(board.path_for(item.key), (past, past))

        manifests = []
        for index in (1, 2):
            runner = SimulationRunner(scale=SCALE, cache_dir=shared)
            manifests.append(
                run_shard_worker(
                    figure, ShardSpec(index, 2), runner,
                    benchmarks=BENCHMARKS, strategy="cost", steal=True,
                )
            )
        simulated = sorted(key for manifest in manifests for key in manifest.key_timings)
        assert simulated == [item.key for item in planned]
        assert sum(manifest.simulated for manifest in manifests) == len(planned)
        assert all(not manifest.failures for manifest in manifests)
        csv, markdown, merged = merge_and_render(
            figure, SCALE, BENCHMARKS, tmp_path, count=2, sources=[shared]
        )
        assert (csv, markdown) == serial_outputs[figure]
        assert merged.cache_info()["simulations_run"] == 0

    def test_completed_workers_release_their_claims(self, tmp_path):
        run_all_shards(
            "figure_10", SCALE, BENCHMARKS, tmp_path, count=2,
            strategy="cost", steal=True, shared=True,
        )
        # Claims are in-flight markers: a healthy campaign leaves none.
        assert ClaimBoard(tmp_path / "shared").claimed_keys() == []

    def test_fresh_claims_are_respected_not_reclaimed(self, tmp_path):
        board = ClaimBoard(tmp_path / "cache")
        key = "ab" * 32
        assert board.claim(key, owner="live peer")
        later = ClaimBoard(tmp_path / "cache")
        # The claim predates `later`'s construction by microseconds at most;
        # force the unambiguous case by stamping it into the future.
        import os
        import time

        ahead = time.time() + 600
        os.utime(board.path_for(key), (ahead, ahead))
        assert not later.reclaim(key, owner="impatient peer")
        assert board.claimed_keys() == [key]

    def test_claim_for_a_cached_key_is_ignored(self, tmp_path):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        key = "cd" * 32
        cache.put_serialized(key, {"marker": True})
        board = ClaimBoard(tmp_path / "cache", cache=cache)
        # Leftover claim for an already-cached key: swept, not a blocker.
        orphan = ClaimBoard(tmp_path / "cache")
        assert orphan.claim(key, owner="crashed after simulating")
        assert board.claim(key, owner="current campaign")
        assert board.release_satisfied() == 1
        assert board.claimed_keys() == []

    def test_merge_sweeps_satisfied_claims(self, tmp_path):
        figure = "figure_10"
        shared = tmp_path / "shared"
        run_all_shards(
            figure, SCALE, BENCHMARKS, tmp_path, count=2,
            strategy="cost", steal=True, shared=True,
        )
        # Simulate a worker that crashed between caching and releasing:
        # its keys are in the cache, its claims still on the board.
        planned = resolve_plan(figure, SimulationRunner(scale=SCALE), benchmarks=BENCHMARKS)
        board = ClaimBoard(shared)
        for item in planned:
            board.claim(item.key, owner="crashed before releasing")
        runner = SimulationRunner(scale=SCALE, cache_dir=shared)
        merge_shards(figure, [shared], runner, benchmarks=BENCHMARKS).verify()
        assert ClaimBoard(shared).claimed_keys() == []

    def test_manifest_reader_tolerates_versions(self):
        v2 = ShardManifest(
            experiment="figure_10",
            shard_index=1,
            shard_count=2,
            scale=SCALE,
            seed=0,
            benchmarks=None,
            keys=["ab" * 32],
            simulated=1,
            key_timings={"ab" * 32: 0.25},
            stolen_keys=["ab" * 32],
            strategy="cost",
        )
        assert ShardManifest.from_dict(v2.to_dict()) == v2
        assert v2.manifest_version == MANIFEST_VERSION

        # A v1 manifest predates key_timings/stolen_keys/strategy entirely.
        v1_payload = {
            name: value
            for name, value in v2.to_dict().items()
            if name not in ("key_timings", "stolen_keys", "strategy", "manifest_version")
        }
        v1 = ShardManifest.from_dict(v1_payload)
        assert v1.manifest_version == 1
        assert v1.key_timings == {} and v1.stolen_keys == [] and v1.strategy == "modulo"
        assert " stolen" not in v1.summary()

        # Fields from a *future* writer are dropped, not fatal.
        future = dict(v2.to_dict(), manifest_version=3, carbon_footprint_g=12.5)
        assert ShardManifest.from_dict(future).keys == v2.keys


class TestResumability:
    def test_dead_shard_rerun_is_pure_cache_warmup(self, serial_outputs, tmp_path):
        """Kill-and-rerun converges with zero re-simulations."""
        figure = "figure_12"
        manifests = run_all_shards(figure, SCALE, BENCHMARKS, tmp_path, count=3)
        victim = max(manifests, key=lambda manifest: manifest.attempted)
        assert victim.attempted > 0 and victim.simulated > 0

        # The "dead" host restarts: a fresh runner over the surviving cache.
        rerun_runner = SimulationRunner(
            scale=SCALE, cache_dir=tmp_path / f"shard{victim.shard_index}"
        )
        rerun = run_shard_worker(
            figure,
            ShardSpec(victim.shard_index, victim.shard_count),
            rerun_runner,
            benchmarks=BENCHMARKS,
        )
        assert rerun.simulated == 0
        assert rerun.cached_hits == rerun.attempted == victim.attempted
        assert rerun.keys == victim.keys

        # And the converged merge still renders the exact serial bytes.
        csv, markdown, merged = merge_and_render(figure, SCALE, BENCHMARKS, tmp_path, count=3)
        assert (csv, markdown) == serial_outputs[figure]
        assert merged.cache_info()["simulations_run"] == 0

    def test_incomplete_merge_names_missing_shards(self, tmp_path):
        figure = "figure_12"
        # Only shard 1 of 3 ever ran.
        runner = SimulationRunner(scale=SCALE, cache_dir=tmp_path / "shard1")
        run_shard_worker(figure, ShardSpec(1, 3), runner, benchmarks=BENCHMARKS)

        merged = SimulationRunner(scale=SCALE, cache_dir=tmp_path / "merged")
        report = merge_shards(figure, [tmp_path / "shard1"], merged, benchmarks=BENCHMARKS)
        assert not report.complete
        assert sorted(set(report.missing_shards)) == [2, 3]
        with pytest.raises(ExperimentError, match="incomplete"):
            report.verify()

    def test_merge_with_shared_cache_dir_is_a_completeness_check(self, tmp_path):
        """Shared-filesystem campaigns: all shards in one dir, merge = verify."""
        figure = "figure_10"
        shared = tmp_path / "shared"
        for index in (1, 2):
            runner = SimulationRunner(scale=SCALE, cache_dir=shared)
            run_shard_worker(figure, ShardSpec(index, 2), runner, benchmarks=BENCHMARKS)
        merged = SimulationRunner(scale=SCALE, cache_dir=shared)
        report = merge_shards(figure, [shared], merged, benchmarks=BENCHMARKS)
        assert report.entries_copied == 0  # nothing to copy from itself
        assert report.complete
        assert len(report.manifests) == 2


class TestFailureDiagnostics:
    def test_worker_requires_cache_dir(self):
        runner = SimulationRunner(scale=SCALE)
        with pytest.raises(ExperimentError, match="cache-dir"):
            run_shard_worker("figure_10", ShardSpec(1, 2), runner, benchmarks=BENCHMARKS)

    def test_serial_failure_lands_in_manifest_not_traceback(self, tmp_path, monkeypatch):
        import repro.experiments.campaign as campaign_module

        def explode(program, config):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(campaign_module, "run_simulation", explode)
        runner = SimulationRunner(scale=SCALE, cache_dir=tmp_path / "cache")
        manifest = run_shard_worker(
            "figure_10", ShardSpec(1, 1), runner, benchmarks=BENCHMARKS
        )
        assert not manifest.ok
        assert len(manifest.failures) == manifest.attempted
        for key, failure in manifest.failures.items():
            assert failure["key"] == key
            assert failure["error_type"] == "RuntimeError"
            assert failure["error_message"] == "injected fault"
            assert failure["params"]["benchmark"] == "blackscholes"
            assert "traceback" in failure

    def test_pool_failure_raises_campaign_run_error_with_context(self, monkeypatch):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("monkeypatched fault injection needs fork workers")
        import repro.experiments.campaign as campaign_module

        real = campaign_module.run_simulation

        def explode_on_qr(program, config):
            if program.name.startswith("qr"):
                raise ValueError("qr blew up")
            return real(program, config)

        monkeypatch.setattr(campaign_module, "run_simulation", explode_on_qr)
        runner = SimulationRunner(scale=SCALE, jobs=2)
        with pytest.raises(CampaignRunError) as excinfo:
            run_experiment(
                "figure_10", scale=SCALE, benchmarks=["blackscholes", "qr"], runner=runner
            )
        error = excinfo.value
        assert error.params["benchmark"] == "qr"
        assert error.error_type == "ValueError"
        assert error.key[:12] in str(error)
        assert "qr" in str(error)
        # The healthy batchmates were still committed before the raise.
        assert runner.cache_info()["simulations_run"] >= 1
