"""The Dependence Management Unit: Algorithms 1 and 2, blocking, accounting."""

import pytest

from repro.config import DMUConfig
from repro.core.dmu import DependenceManagementUnit
from repro.core.isa import DMUBlocked
from repro.errors import DMUProtocolError, UnknownTaskError

DESC = 0x8AB0_0000_0000
DEP_A = 0x10_0000
DEP_B = 0x20_0000
BLOCK = 4096


def make_dmu(**overrides) -> DependenceManagementUnit:
    parameters = dict(
        tat_entries=64,
        dat_entries=64,
        successor_list_entries=64,
        dependence_list_entries=64,
        reader_list_entries=64,
        ready_queue_entries=64,
    )
    parameters.update(overrides)
    return DependenceManagementUnit(DMUConfig(**parameters))


def create(dmu, descriptor, deps=()):
    """Create a task, add its dependences and complete its creation."""
    result = dmu.create_task(descriptor)
    assert not isinstance(result, DMUBlocked)
    for address, direction in deps:
        added = dmu.add_dependence(descriptor, address, BLOCK, direction)
        assert not isinstance(added, DMUBlocked)
    return dmu.complete_creation(descriptor)


class TestCreation:
    def test_create_task_allocates_structures(self):
        dmu = make_dmu()
        result = dmu.create_task(DESC)
        assert result.cycles > 0
        assert dmu.in_flight_tasks == 1
        assert dmu.successor_lists.entries_in_use == 1
        assert dmu.dependence_lists.entries_in_use == 1

    def test_duplicate_create_rejected(self):
        dmu = make_dmu()
        dmu.create_task(DESC)
        with pytest.raises(DMUProtocolError):
            dmu.create_task(DESC)

    def test_dependence_free_task_becomes_ready_at_completion(self):
        dmu = make_dmu()
        completion = create(dmu, DESC)
        assert completion.became_ready
        assert dmu.ready_tasks == 1

    def test_task_with_pending_predecessor_not_ready(self):
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])
        completion = create(dmu, DESC + 0x100, [(DEP_A, "in")])
        assert not completion.became_ready
        assert dmu.ready_tasks == 1  # only the writer

    def test_add_dependence_to_unknown_task_rejected(self):
        dmu = make_dmu()
        with pytest.raises(UnknownTaskError):
            dmu.add_dependence(DESC, DEP_A, BLOCK, "in")

    def test_invalid_direction_rejected(self):
        dmu = make_dmu()
        dmu.create_task(DESC)
        with pytest.raises(DMUProtocolError):
            dmu.add_dependence(DESC, DEP_A, BLOCK, "inout")

    def test_double_completion_rejected(self):
        dmu = make_dmu()
        create(dmu, DESC)
        with pytest.raises(DMUProtocolError):
            dmu.complete_creation(DESC)


class TestDependenceSemantics:
    def test_raw_dependence(self):
        """Writer then reader: the reader waits for the writer."""
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])
        create(dmu, DESC + 0x100, [(DEP_A, "in")])
        assert dmu.ready_tasks == 1
        dmu.get_ready_task()
        finish = dmu.finish_task(DESC)
        assert finish.tasks_woken == 1
        ready = dmu.get_ready_task()
        assert ready.descriptor_address == DESC + 0x100

    def test_waw_dependence(self):
        """Two writers are serialized."""
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])
        completion = create(dmu, DESC + 0x100, [(DEP_A, "out")])
        assert not completion.became_ready
        dmu.get_ready_task()
        assert dmu.finish_task(DESC).tasks_woken == 1

    def test_war_dependence(self):
        """A writer waits for all current readers."""
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])          # writer W0
        create(dmu, DESC + 0x100, [(DEP_A, "in")])   # reader R1
        create(dmu, DESC + 0x200, [(DEP_A, "in")])   # reader R2
        completion = create(dmu, DESC + 0x300, [(DEP_A, "out")])  # writer W3
        assert not completion.became_ready
        # Finish W0: both readers wake, W3 still waits for them.
        dmu.get_ready_task()
        assert dmu.finish_task(DESC).tasks_woken == 2
        dmu.get_ready_task()
        dmu.get_ready_task()
        assert dmu.finish_task(DESC + 0x100).tasks_woken == 0
        woken = dmu.finish_task(DESC + 0x200).tasks_woken
        assert woken == 1  # W3 becomes ready only after the last reader

    def test_independent_readers_run_concurrently(self):
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "in")])
        create(dmu, DESC + 0x100, [(DEP_A, "in")])
        assert dmu.ready_tasks == 2

    def test_two_dependences_two_predecessors(self):
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])
        create(dmu, DESC + 0x100, [(DEP_B, "out")])
        completion = create(dmu, DESC + 0x200, [(DEP_A, "in"), (DEP_B, "in")])
        assert not completion.became_ready
        dmu.get_ready_task()
        dmu.get_ready_task()
        assert dmu.finish_task(DESC).tasks_woken == 0
        assert dmu.finish_task(DESC + 0x100).tasks_woken == 1

    def test_get_ready_task_reports_successor_count(self):
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])
        create(dmu, DESC + 0x100, [(DEP_A, "in")])
        create(dmu, DESC + 0x200, [(DEP_A, "in")])
        ready = dmu.get_ready_task()
        assert ready.descriptor_address == DESC
        assert ready.num_successors == 2

    def test_get_ready_task_on_empty_queue_returns_null(self):
        dmu = make_dmu()
        result = dmu.get_ready_task()
        assert result.is_null
        assert result.cycles > 0


class TestFinalization:
    def test_finish_frees_all_structures(self):
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out"), (DEP_B, "in")])
        dmu.get_ready_task()
        dmu.finish_task(DESC)
        dmu.assert_empty()

    def test_chain_of_tasks_drains_completely(self):
        dmu = make_dmu()
        descriptors = [DESC + i * 0x100 for i in range(10)]
        for descriptor in descriptors:
            create(dmu, descriptor, [(DEP_A, "out")])
        for descriptor in descriptors:
            ready = dmu.get_ready_task()
            assert ready.descriptor_address == descriptor
            dmu.finish_task(descriptor)
        dmu.assert_empty()

    def test_finish_unknown_task_rejected(self):
        dmu = make_dmu()
        with pytest.raises(UnknownTaskError):
            dmu.finish_task(DESC)

    def test_assert_empty_fails_with_inflight_tasks(self):
        dmu = make_dmu()
        create(dmu, DESC)
        with pytest.raises(DMUProtocolError):
            dmu.assert_empty()


class TestBlocking:
    def test_tat_exhaustion_blocks_without_state_change(self):
        dmu = make_dmu(tat_entries=8, dat_entries=8)
        for index in range(8):
            create(dmu, DESC + index * 0x100)
        before = dmu.capacity_snapshot()
        result = dmu.create_task(DESC + 0x9999)
        assert isinstance(result, DMUBlocked)
        assert result.structure == "TAT"
        assert dmu.capacity_snapshot() == before
        assert dmu.stats.blocked_by_structure["TAT"] == 1

    def test_dat_conflict_blocks_add_dependence(self):
        dmu = make_dmu(dat_associativity=2, index_selection="static", static_index_start_bit=0)
        create(dmu, DESC)
        num_sets = dmu.dat.num_sets
        stride = num_sets * BLOCK  # all addresses map to the same set
        dmu.add_dependence(DESC, stride, BLOCK, "in")
        dmu.add_dependence(DESC, 2 * stride, BLOCK, "in")
        result = dmu.add_dependence(DESC, 3 * stride, BLOCK, "in")
        assert isinstance(result, DMUBlocked)
        assert result.structure == "DAT"

    def test_sla_exhaustion_blocks_create(self):
        dmu = make_dmu(successor_list_entries=4)
        for index in range(4):
            create(dmu, DESC + index * 0x100)
        result = dmu.create_task(DESC + 0x9999)
        assert isinstance(result, DMUBlocked)
        assert result.structure == "SLA"

    def test_space_recovered_after_finish(self):
        dmu = make_dmu(tat_entries=8, dat_entries=8)
        for index in range(8):
            create(dmu, DESC + index * 0x100)
        assert isinstance(dmu.create_task(DESC + 0x9999), DMUBlocked)
        dmu.get_ready_task()
        dmu.finish_task(DESC)
        result = dmu.create_task(DESC + 0x9999)
        assert not isinstance(result, DMUBlocked)


class TestAccounting:
    def test_cycles_scale_with_access_latency(self):
        fast = make_dmu(access_cycles=1)
        slow = make_dmu(access_cycles=4)
        fast_cycles = fast.create_task(DESC).cycles
        slow_cycles = slow.create_task(DESC).cycles
        assert slow_cycles == 4 * fast_cycles

    def test_stats_counters(self):
        dmu = make_dmu()
        create(dmu, DESC, [(DEP_A, "out")])
        create(dmu, DESC + 0x100, [(DEP_A, "in")])
        dmu.get_ready_task()
        dmu.finish_task(DESC)
        stats = dmu.stats
        assert stats.tasks_created == 2
        assert stats.dependences_added == 2
        assert stats.tasks_finished == 1
        assert stats.instructions["create_task"] == 2
        assert stats.total_accesses > 0
        assert stats.average_cycles_per_instruction() > 0
        as_dict = stats.as_dict()
        assert as_dict["tasks_created"] == 2
        assert "structure_accesses" in as_dict

    def test_finish_cost_grows_with_successor_count(self):
        few = make_dmu()
        create(few, DESC, [(DEP_A, "out")])
        create(few, DESC + 0x100, [(DEP_A, "in")])
        few.get_ready_task()
        cost_few = few.finish_task(DESC).cycles

        many = make_dmu()
        create(many, DESC, [(DEP_A, "out")])
        for index in range(6):
            create(many, DESC + (index + 1) * 0x100, [(DEP_A, "in")])
        many.get_ready_task()
        cost_many = many.finish_task(DESC).cycles
        assert cost_many > cost_few
