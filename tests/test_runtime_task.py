"""Task, dependence and program abstractions."""

import pytest

from repro.errors import InvalidProgramError
from repro.runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskInstance,
    TaskInstanceFactory,
    TaskProgram,
    TaskRegion,
    TaskState,
    single_region_program,
)


def make_definition(uid=0, deps=(), work_us=10.0, **kwargs):
    return TaskDefinition(uid=uid, name=f"t{uid}", kind="test", work_us=work_us, dependences=tuple(deps), **kwargs)


class TestAccessMode:
    def test_in_is_input_only(self):
        assert AccessMode.IN.is_input and not AccessMode.IN.is_output

    def test_out_is_output_only(self):
        assert AccessMode.OUT.is_output and not AccessMode.OUT.is_input

    def test_inout_is_both(self):
        assert AccessMode.INOUT.is_input and AccessMode.INOUT.is_output


class TestDependenceSpec:
    def test_direction_mapping(self):
        assert DependenceSpec(0x100, 64, AccessMode.IN).direction == "in"
        assert DependenceSpec(0x100, 64, AccessMode.OUT).direction == "out"
        assert DependenceSpec(0x100, 64, AccessMode.INOUT).direction == "out"

    def test_negative_address_rejected(self):
        with pytest.raises(InvalidProgramError):
            DependenceSpec(-1, 64, AccessMode.IN)

    def test_zero_size_rejected(self):
        with pytest.raises(InvalidProgramError):
            DependenceSpec(0x100, 0, AccessMode.IN)

    def test_immutable(self):
        # Built programs are shared across simulations by the campaign
        # engine's program cache; mutation must fail loudly.
        spec = DependenceSpec(0x100, 64, AccessMode.IN)
        with pytest.raises(AttributeError, match="immutable"):
            spec.address = 0x200

    def test_equality_and_hashing_by_value(self):
        a = DependenceSpec(0x100, 64, AccessMode.IN)
        b = DependenceSpec(0x100, 64, AccessMode.IN)
        c = DependenceSpec(0x100, 64, AccessMode.OUT)
        assert a == b and hash(a) == hash(b)
        assert a != c and len({a, b, c}) == 2


class TestTaskDefinition:
    def test_address_accessors(self):
        deps = [
            DependenceSpec(0x100, 64, AccessMode.IN),
            DependenceSpec(0x200, 64, AccessMode.OUT),
            DependenceSpec(0x300, 64, AccessMode.INOUT),
        ]
        definition = make_definition(deps=deps)
        assert definition.num_dependences == 3
        assert definition.input_addresses == (0x100, 0x300)
        assert definition.all_addresses == (0x100, 0x200, 0x300)

    def test_negative_work_rejected(self):
        with pytest.raises(InvalidProgramError):
            make_definition(work_us=-1.0)

    def test_bad_memory_sensitivity_rejected(self):
        with pytest.raises(InvalidProgramError):
            make_definition(memory_sensitivity=2.0)

    def test_immutable(self):
        definition = make_definition()
        with pytest.raises(AttributeError, match="immutable"):
            definition.work_us = 99.0


class TestTaskInstance:
    def test_lifecycle(self):
        instance = TaskInstance(make_definition(), descriptor_address=0x8000)
        assert instance.state == TaskState.CREATED
        instance.mark_ready(10)
        assert instance.is_ready and instance.ready_cycle == 10
        instance.mark_running(20, core_id=3)
        assert instance.state == TaskState.RUNNING and instance.core_id == 3
        instance.mark_finished(30)
        assert instance.is_finished and instance.finish_cycle == 30

    def test_add_successor_updates_counts(self):
        a = TaskInstance(make_definition(uid=0), 0x8000)
        b = TaskInstance(make_definition(uid=1), 0x8100)
        a.add_successor(b)
        assert a.num_successors == 1
        assert b.num_predecessors == 1
        assert a.successors == [b]

    def test_factory_assigns_unique_descriptor_addresses(self):
        factory = TaskInstanceFactory()
        addresses = {factory.create(make_definition(uid=i)).descriptor_address for i in range(50)}
        assert len(addresses) == 50


class TestTaskProgram:
    def test_single_region_program(self):
        program = single_region_program("p", [make_definition(uid=0), make_definition(uid=1)])
        assert program.num_tasks == 2
        assert len(program.regions) == 1
        assert program.average_task_us == pytest.approx(10.0)

    def test_duplicate_uid_rejected(self):
        with pytest.raises(InvalidProgramError):
            single_region_program("p", [make_definition(uid=0), make_definition(uid=0)])

    def test_empty_program_rejected(self):
        with pytest.raises(InvalidProgramError):
            TaskProgram(name="empty", regions=())

    def test_total_and_average_work(self):
        tasks = [make_definition(uid=i, work_us=100.0) for i in range(4)]
        program = single_region_program("p", tasks)
        assert program.total_work_us == pytest.approx(400.0)
        assert program.max_dependences_per_task() == 0

    def test_multi_region_iteration_order(self):
        region_a = TaskRegion(tasks=(make_definition(uid=0),), name="a")
        region_b = TaskRegion(tasks=(make_definition(uid=1),), name="b")
        program = TaskProgram(name="p", regions=(region_a, region_b))
        assert [t.uid for t in program.all_tasks()] == [0, 1]

    def test_negative_sequential_time_rejected(self):
        with pytest.raises(InvalidProgramError):
            TaskRegion(tasks=(make_definition(uid=0),), sequential_us_before=-5.0)
