"""The campaign cost model: analytic baseline, calibration, profile IO.

The model's predictions feed cost-binned shard planning only — they never
touch canonical keys or rendered bytes — so the properties worth pinning
are the *planning* ones: units reflect the known workload asymmetries
(task counts, runtime weight, DMU pressure), the least-squares calibration
recovers an exact linear relationship, observations beat the analytic
estimate for keys that were actually measured, and the persisted profile
round-trips (and degrades to empty, never to a crash, on corruption).
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.config import DMUConfig, default_paper_config
from repro.experiments.cache import (
    COST_PROFILE_FILENAME,
    load_cost_profile,
    store_cost_profile,
)
from repro.experiments.campaign import CampaignEngine, RunRequest
from repro.runtime.cost_model import CampaignCostModel


def resolved(benchmark="cholesky", runtime="tdm", scheduler="fifo", dmu=None, scale=0.1):
    """A real resolved run (full config + canonical key) for model input."""
    engine = CampaignEngine(scale=scale)
    return engine.resolve(RunRequest(benchmark, runtime, scheduler, dmu=dmu))


class TestAnalyticUnits:
    def test_units_scale_linearly_with_problem_scale(self):
        small = CampaignCostModel(scale=0.1)
        large = CampaignCostModel(scale=0.2)
        args = ("cholesky", "tdm")
        assert large.analytic_units(*args) == pytest.approx(2 * small.analytic_units(*args))

    def test_task_count_asymmetry_dominates(self):
        """streamcluster (42k tasks) must predict far above histogram (512)."""
        model = CampaignCostModel(scale=0.1)
        heavy = model.analytic_units("streamcluster", "tdm")
        light = model.analytic_units("histogram", "tdm")
        assert heavy > 10 * light

    def test_runtime_selects_task_count_column(self):
        """QR has 1_496 software tasks but 11_440 TDM tasks (Table II)."""
        model = CampaignCostModel(scale=1.0)
        tdm = model.analytic_units("qr", "tdm", workload_runtime="tdm")
        software = model.analytic_units("qr", "software", workload_runtime="software")
        assert tdm > 2 * software  # despite software's higher per-task weight

    def test_finite_dmu_pressure_raises_units(self):
        model = CampaignCostModel(scale=1.0)
        base = default_paper_config().dmu
        tiny = DMUConfig(tat_entries=512, dat_entries=512)
        assert model.analytic_units("cholesky", "tdm", dmu=tiny) > model.analytic_units(
            "cholesky", "tdm", dmu=DMUConfig.ideal()
        )
        assert model.analytic_units("cholesky", "tdm", dmu=tiny) > model.analytic_units(
            "cholesky", "tdm", dmu=base
        )

    def test_unknown_benchmark_gets_a_flat_guess(self):
        model = CampaignCostModel(scale=1.0)
        assert model.analytic_units("not-a-benchmark", "tdm") > 0


class TestCalibration:
    def test_uncalibrated_model_uses_the_default_rate(self):
        model = CampaignCostModel()
        assert model.seconds_per_unit == CampaignCostModel.DEFAULT_SECONDS_PER_UNIT
        assert not model.calibrated

    def test_least_squares_recovers_an_exact_linear_rate(self):
        rate = 3.5e-5
        profile = {
            f"{index:064x}": {"units": units, "seconds": rate * units}
            for index, units in enumerate([10.0, 250.0, 4000.0])
        }
        model = CampaignCostModel(profile)
        assert model.seconds_per_unit == pytest.approx(rate)
        assert model.calibrated

    def test_fit_ignores_malformed_and_nonpositive_entries(self):
        profile = {
            "a" * 64: {"units": 100.0, "seconds": 2e-3},
            "b" * 64: {"units": 0.0, "seconds": 5.0},  # nonpositive units
            "c" * 64: {"units": 10.0, "seconds": -1.0},  # nonpositive seconds
            "d" * 64: {"seconds": 1.0},  # missing units
            "e" * 64: {"units": "lots", "seconds": 1.0},  # unparseable
        }
        model = CampaignCostModel(profile)
        assert model.seconds_per_unit == pytest.approx(2e-5)

    def test_prediction_prefers_the_key_s_own_observation(self):
        run = resolved()
        model = CampaignCostModel({run.key: {"units": 1.0, "seconds": 42.0}}, scale=0.1)
        assert model.predict(run) == 42.0
        other = resolved(benchmark="qr")
        assert model.predict(other) != 42.0
        assert model.predict(other) == pytest.approx(
            model.seconds_per_unit * model.units_for(other)
        )

    def test_observations_for_joins_timings_with_resolved_runs(self):
        run = resolved()
        model = CampaignCostModel(scale=0.1)
        entries = model.observations_for(
            {run.key: 0.125, "f" * 64: 1.0, run.key + "x": -2.0},
            {run.key: run},
        )
        assert set(entries) == {run.key}
        assert entries[run.key]["seconds"] == pytest.approx(0.125)
        assert entries[run.key]["units"] == pytest.approx(model.units_for(run), rel=1e-3)


class TestProfilePersistence:
    def test_round_trip(self, tmp_path):
        entries = {"a" * 64: {"units": 10.0, "seconds": 0.5}}
        path = store_cost_profile(tmp_path, entries)
        assert path.name == COST_PROFILE_FILENAME
        assert load_cost_profile(tmp_path) == entries

    def test_merge_unions_and_newer_entries_win(self, tmp_path):
        store_cost_profile(tmp_path, {"a" * 64: {"units": 1.0, "seconds": 1.0}})
        store_cost_profile(
            tmp_path,
            {
                "a" * 64: {"units": 1.0, "seconds": 2.0},
                "b" * 64: {"units": 3.0, "seconds": 4.0},
            },
        )
        profile = load_cost_profile(tmp_path)
        assert profile["a" * 64]["seconds"] == 2.0
        assert set(profile) == {"a" * 64, "b" * 64}

    def test_missing_or_corrupt_profiles_degrade_to_empty(self, tmp_path):
        assert load_cost_profile(tmp_path) == {}
        (tmp_path / COST_PROFILE_FILENAME).write_text("{not json", encoding="utf-8")
        assert load_cost_profile(tmp_path) == {}
        (tmp_path / COST_PROFILE_FILENAME).write_text(
            json.dumps({"version": 1, "timings": [1, 2, 3]}), encoding="utf-8"
        )
        assert load_cost_profile(tmp_path) == {}

    def test_model_built_from_a_stored_profile_is_calibrated(self, tmp_path):
        run = resolved()
        model = CampaignCostModel(scale=0.1)
        store_cost_profile(tmp_path, model.observations_for({run.key: 0.25}, {run.key: run}))
        reloaded = CampaignCostModel(load_cost_profile(tmp_path), scale=0.1)
        assert reloaded.calibrated
        assert reloaded.predict(run) == pytest.approx(0.25)


class TestDuckTypedPredict:
    def test_predict_accepts_any_resolved_run_shaped_object(self):
        """ShardPlan hands the model SimpleNamespace stand-ins in tests."""
        model = CampaignCostModel(scale=1.0)
        fake = SimpleNamespace(
            key="a" * 64,
            request=SimpleNamespace(
                benchmark="cholesky", runtime="tdm", scheduler="fifo"
            ),
            config=SimpleNamespace(dmu=DMUConfig.ideal()),
            workload_runtime="tdm",
        )
        assert model.predict(fake) > 0
