"""Graph-level properties of the generated workloads."""

import pytest

from repro.analysis.graph import critical_path_us, max_parallelism, task_graph_edges
from repro.analysis.validation import ReferenceGraph
from repro.workloads import create_workload
from repro.workloads.synthetic import chain_program, fork_join_program, random_dag_program

SMALL_SCALE = 0.2


class TestSyntheticGenerators:
    def test_chain_program_edges(self):
        program = chain_program(num_chains=3, chain_length=4)
        edges = task_graph_edges(program)
        # Each chain contributes length-1 edges.
        assert len(edges) == 3 * 3
        assert max_parallelism(program) == pytest.approx(3.0)

    def test_fork_join_has_no_intra_wave_edges(self):
        program = fork_join_program(num_waves=2, tasks_per_wave=8)
        assert task_graph_edges(program) == []
        assert len(program.regions) == 2

    def test_random_dag_is_acyclic_and_reproducible(self):
        first = random_dag_program(num_tasks=30, seed=3)
        second = random_dag_program(num_tasks=30, seed=3)
        assert task_graph_edges(first) == task_graph_edges(second)
        # critical path computation would raise on a cycle
        assert critical_path_us(first) > 0

    def test_random_dag_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            random_dag_program(num_tasks=0)


class TestBenchmarkGraphs:
    @pytest.mark.parametrize(
        "benchmark_name",
        ["cholesky", "lu", "qr", "fluidanimate", "histogram", "dedup", "ferret"],
    )
    def test_graphs_are_acyclic_with_edges(self, benchmark_name):
        scale = 0.05 if benchmark_name in ("dedup", "ferret") else SMALL_SCALE
        program = create_workload(benchmark_name, scale=scale).build_program()
        edges = task_graph_edges(program)
        assert edges, f"{benchmark_name} should have dependence edges"
        assert critical_path_us(program) > 0

    def test_blackscholes_is_a_set_of_chains(self):
        program = create_workload("blackscholes", scale=0.1).build_program()
        graph = ReferenceGraph.from_program(program)
        successors = {}
        for pred, succ in graph.edges:
            successors.setdefault(pred, []).append(succ)
        assert all(len(succs) == 1 for succs in successors.values())
        # 64 chains -> parallelism of about 64
        assert max_parallelism(program) == pytest.approx(64.0, rel=0.05)

    def test_cholesky_parallelism_exceeds_core_count(self):
        program = create_workload("cholesky", scale=0.4).build_program()
        assert max_parallelism(program) > 32

    def test_dedup_critical_path_dominated_by_io_chain(self):
        program = create_workload("dedup").build_program()
        io_total = sum(t.work_us for t in program.all_tasks() if t.kind == "io")
        compute_one = max(t.work_us for t in program.all_tasks() if t.kind == "compress")
        assert critical_path_us(program) == pytest.approx(io_total + compute_one, rel=0.05)

    def test_fluidanimate_stencil_neighbour_edges(self):
        program = create_workload("fluidanimate", scale=0.1).build_program()
        graph = ReferenceGraph.from_program(program)
        partitions = program.metadata["partitions"]
        # every non-boundary task of step 1 depends on three step-0 tasks
        in_degree = {}
        for _pred, succ in graph.edges:
            in_degree[succ] = in_degree.get(succ, 0) + 1
        interior = [
            uid
            for uid in range(partitions + 1, 2 * partitions - 1)
        ]
        assert all(in_degree.get(uid, 0) >= 3 for uid in interior)

    def test_histogram_reduction_tree_depth(self):
        program = create_workload("histogram", scale=0.25).build_program()
        leaves = sum(1 for t in program.all_tasks() if t.kind == "leaf")
        reduces = sum(1 for t in program.all_tasks() if t.kind == "reduce")
        assert reduces == leaves - 1
