"""The reliability subsystem, pinned as tests.

Fault injection (``repro.reliability.faults``) is the instrument; the claims
under test are the recovery contracts:

* a campaign disturbed by crashed, hung or erroring workers recovers and
  renders bytes *identical* to an undisturbed serial run;
* every key is attempted at most ``RetryPolicy.max_attempts`` times, with
  deterministic backoff, and deterministic failures are never retried;
* corrupt cache entries (torn writes, bit flips) are quarantined and
  resimulated instead of being served or aborting the run;
* the results daemon degrades predictably: clean 400s for malformed input,
  503 + ``Retry-After`` for cached failures and deadline misses, and a
  ``/healthz`` that says *why* it is degraded.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import time

import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import (
    QUARANTINE_DIRNAME,
    ResultCache,
    result_checksum,
)
from repro.experiments.campaign import CampaignEngine, CampaignRunError, RunRequest
from repro.experiments.cli import main as cli_main
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import resolve_plan
from repro.experiments.shard import MergeReport
from repro.reliability import faults
from repro.reliability.faults import FaultPlan, InjectedFault, maybe_fault, parse_faults
from repro.reliability.retry import RetryPolicy
from repro.reliability.watchdog import (
    Watchdog,
    WatchdogConfig,
    read_heartbeats,
    write_heartbeat,
)
from repro.service.server import ResultsService, _HttpError

from tests.test_service import ServiceThread
from tests.util import experiment_output

SCALE = 0.05
BENCHMARKS = ["blackscholes"]
REQUEST = RunRequest(benchmark="blackscholes", runtime="software")

#: A retry policy with no real sleeping, for fast chaos tests.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """Every test leaves the process with no fault plan installed."""
    yield
    faults.install_plan(None)


# ---------------------------------------------------------------------------
# Fault spec grammar and firing rules
# ---------------------------------------------------------------------------
class TestFaultGrammar:
    def test_spec_roundtrips_through_describe(self):
        spec = "crash@sim:key%7,hang@cache-read:2,corrupt@commit:1,error@sim:key%3=1x2"
        plan = parse_faults(spec)
        assert plan.describe() == spec

    @pytest.mark.parametrize(
        "bad",
        [
            "explode@sim",          # unknown kind
            "crash@warehouse",      # unknown site
            "crash",                # no site
            "crash@sim:zero",       # malformed selector
            "crash@sim:0",          # occurrence < 1
            "crash@sim:key%0",      # modulo < 1
            "crash@sim:key%3=7",    # residue out of range
            "",                     # empty spec
            " , ,",                 # only separators
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ExperimentError):
            parse_faults(bad)

    def test_occurrence_selector_counts_per_site(self):
        plan = parse_faults("error@sim:2")
        assert plan.fire("sim", "00", 1) is None       # first hit passes
        assert plan.fire("cache-read", "00", 1) is None  # other site, own counter
        assert plan.fire("sim", "00", 1) is not None   # second hit fires
        assert plan.fire("sim", "00", 1) is None       # third hit passes

    def test_modulo_selector_is_key_deterministic(self):
        plan = parse_faults("error@sim:key%4=1")
        assert plan.fire("sim", "09", 1) is not None   # 9 % 4 == 1
        assert plan.fire("sim", "08", 1) is None
        assert plan.fire("sim", None, 1) is None       # key-blind hits pass
        assert plan.fire("sim", "zz", 1) is None       # non-hex key passes

    def test_attempt_gating_defaults_to_first_attempt(self):
        plan = parse_faults("error@sim:key%1")
        assert plan.fire("sim", "0a", 1) is not None
        assert plan.fire("sim", "0a", 2) is None       # retry converges
        permanent = parse_faults("error@sim:key%1x99")
        assert permanent.fire("sim", "0a", 7) is not None

    def test_maybe_fault_error_raises_and_corrupt_returns(self):
        faults.install_plan(parse_faults("error@sim,corrupt@commit"))
        with pytest.raises(InjectedFault):
            maybe_fault("sim", "0a")
        fault = maybe_fault("commit", "0a")
        assert fault is not None and fault.kind == "corrupt"
        assert maybe_fault("merge") is None            # un-faulted site

    def test_no_plan_fast_path_returns_none(self):
        faults.install_plan(None)
        assert maybe_fault("sim", "0a") is None

    def test_env_spec_is_loaded_lazily(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "error@serve")
        faults._PLAN = None
        faults._LOADED = False
        try:
            plan = faults.active_plan()
            assert plan is not None and plan.describe() == "error@serve"
            assert faults.active_spec() == "error@serve"
        finally:
            faults.install_plan(None)

    def test_ensure_plan_keeps_identical_plan_counters(self):
        plan = faults.install_plan(parse_faults("error@sim:2"))
        plan.fire("sim", "00", 1)
        assert faults.ensure_plan("error@sim:2") is plan  # counters preserved
        assert faults.ensure_plan("error@sim:3") is not plan

    def test_hang_seconds_from_argument_and_env(self, monkeypatch):
        assert parse_faults("hang@sim", hang_seconds=1.5).hang_seconds == 1.5
        monkeypatch.setenv("REPRO_FAULTS_HANG_S", "2.5")
        assert parse_faults("hang@sim").hang_seconds == 2.5


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, max_delay_s=0.5)
        delays = [policy.delay(attempt, "deadbeef") for attempt in (1, 2, 3, 4)]
        assert delays == [policy.delay(a, "deadbeef") for a in (1, 2, 3, 4)]
        assert all(d <= 0.5 * (1 + policy.jitter) for d in delays)
        assert delays[1] > delays[0]  # exponential up to the cap
        # Distinct keys decorrelate; zero jitter removes the spread.
        assert policy.delay(1, "deadbeef") != policy.delay(1, "cafebabe")
        flat = RetryPolicy(base_delay_s=0.1, jitter=0.0)
        assert flat.delay(2, "x") == pytest.approx(0.2)

    def test_transient_classification(self):
        policy = RetryPolicy()
        for name in ("WorkerTimeout", "WorkerCrash", "WorkerStall",
                     "InjectedFault", "OSError", "BrokenProcessPool"):
            assert policy.transient(name), name
        for name in ("ExperimentError", "KeyError", "ZeroDivisionError"):
            assert not policy.transient(name), name

    def test_budget_and_validation(self):
        policy = RetryPolicy(max_attempts=3)
        assert not policy.exhausted(2) and policy.exhausted(3)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX", "7")
        monkeypatch.setenv("REPRO_RETRY_DELAY_S", "0.125")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 7
        assert policy.base_delay_s == 0.125


# ---------------------------------------------------------------------------
# Watchdog
# ---------------------------------------------------------------------------
class TestWatchdog:
    def test_heartbeat_roundtrip_and_torn_files(self, tmp_path):
        write_heartbeat(tmp_path, "abc123", attempt=2)
        (tmp_path / "hb-9999999.json").write_text("{torn", encoding="utf-8")
        started = read_heartbeats(tmp_path)
        assert set(started) == {"abc123"}
        assert started["abc123"] == pytest.approx(time.time(), abs=5.0)

    def test_earliest_start_wins_for_duplicate_keys(self, tmp_path):
        (tmp_path / "hb-1.json").write_text(
            json.dumps({"pid": 1, "key": "k", "attempt": 1, "started": 100.0}))
        (tmp_path / "hb-2.json").write_text(
            json.dumps({"pid": 2, "key": "k", "attempt": 2, "started": 50.0}))
        assert read_heartbeats(tmp_path) == {"k": 50.0}

    def test_deadline_is_prediction_times_slack_with_floor(self):
        class Model:
            def predict(self, resolved):
                return 10.0

        class Broken:
            def predict(self, resolved):
                raise RuntimeError("no profile")

        config = WatchdogConfig(slack=4.0, min_seconds=2.0)
        assert Watchdog(config, Model()).deadline_for(object()) == 40.0
        assert Watchdog(config, Broken()).deadline_for(object()) == 2.0
        assert Watchdog(config, None).deadline_for(object()) == 2.0

    def test_overdue_counts_from_worker_start(self, tmp_path):
        dog = Watchdog(WatchdogConfig(slack=1.0, min_seconds=1.0), None, tmp_path)
        (tmp_path / "hb-1.json").write_text(
            json.dumps({"pid": 1, "key": "slow", "started": 100.0}))
        deadlines = {"slow": 5.0, "queued": 5.0}  # "queued" never heartbeat
        verdicts = dog.overdue(deadlines, now=110.0)
        assert verdicts == {"slow": pytest.approx(10.0)}
        assert dog.overdue(deadlines, now=104.0) == {}
        dog.reset()
        assert read_heartbeats(tmp_path) == {}

    def test_config_validation_and_env(self, monkeypatch):
        with pytest.raises(ValueError):
            WatchdogConfig(slack=0.0)
        monkeypatch.setenv("REPRO_WATCHDOG_SLACK", "3.0")
        monkeypatch.setenv("REPRO_WATCHDOG_MIN_S", "1.0")
        config = WatchdogConfig.from_env()
        assert config.slack == 3.0 and config.min_seconds == 1.0


# ---------------------------------------------------------------------------
# Cache integrity: checksums, quarantine, orphan sweeping
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def real_entry(tmp_path_factory):
    """(key, entry bytes) of one genuine cached simulation result."""
    directory = tmp_path_factory.mktemp("entry-source")
    engine = CampaignEngine(scale=SCALE, cache_dir=directory)
    resolved = engine.resolve(REQUEST)
    engine.run(REQUEST)
    return resolved.key, engine.disk_cache.path_for(resolved.key).read_bytes()


def plant(cache: ResultCache, key: str, blob: bytes) -> None:
    path = cache.path_for(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(blob)


class TestCacheIntegrity:
    def test_intact_entry_hits(self, tmp_path, real_entry):
        key, blob = real_entry
        cache = ResultCache(tmp_path)
        plant(cache, key, blob)
        assert cache.get(key) is not None
        assert cache.hits == 1 and cache.quarantined == 0

    def test_bit_flip_is_quarantined_as_a_miss(self, tmp_path, real_entry):
        key, blob = real_entry
        document = json.loads(blob)
        document["result"]["total_cycles"] += 1  # stored sha256 now stale
        cache = ResultCache(tmp_path)
        plant(cache, key, json.dumps(document).encode())
        assert cache.get(key) is None
        assert cache.misses == 1 and cache.quarantined == 1
        quarantine = tmp_path / QUARANTINE_DIRNAME
        assert (quarantine / f"{key}.json").is_file()
        reason = (quarantine / f"{key}.json.reason").read_text()
        assert "checksum mismatch" in reason
        assert not cache.path_for(key).exists()

    def test_truncated_entry_is_quarantined(self, tmp_path, real_entry):
        key, blob = real_entry
        cache = ResultCache(tmp_path)
        plant(cache, key, blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert cache.quarantined == 1
        assert "invalid JSON" in (
            tmp_path / QUARANTINE_DIRNAME / f"{key}.json.reason"
        ).read_text()

    def test_legacy_entry_without_checksum_still_reads(self, tmp_path, real_entry):
        key, blob = real_entry
        document = json.loads(blob)
        del document["sha256"]
        cache = ResultCache(tmp_path)
        plant(cache, key, json.dumps(document).encode())
        assert cache.get(key) is not None
        assert cache.hits == 1 and cache.quarantined == 0

    def test_structurally_malformed_entry_is_quarantined(self, tmp_path, real_entry):
        key, _ = real_entry
        cache = ResultCache(tmp_path)
        plant(cache, key, b"[1, 2, 3]")
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_checksum_covers_canonical_json(self, real_entry):
        _, blob = real_entry
        document = json.loads(blob)
        assert document["sha256"] == result_checksum(document["result"])

    def test_orphaned_tmp_files_are_swept_by_age(self, tmp_path):
        cache = ResultCache(tmp_path)
        bucket = tmp_path / "ab"
        bucket.mkdir()
        stale = bucket / "deadbeef.json.tmp.12345"
        stale.write_text("{half a wri")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = bucket / "cafebabe.json.tmp.12346"
        fresh.write_text("{being written right now")
        assert cache.sweep_orphans(max_age_s=300.0) == 1
        assert not stale.exists() and fresh.exists()
        assert cache.orphans_swept == 1

    def test_merge_from_quarantines_corrupt_sources(self, tmp_path, real_entry):
        key, blob = real_entry
        source = ResultCache(tmp_path / "source")
        plant(source, key, blob[: len(blob) // 2])      # torn shard entry
        other = "0" * 64
        plant(source, other, blob)                      # healthy entry
        destination = ResultCache(tmp_path / "merged")
        copied = destination.merge_from(source)
        assert copied == 1
        assert source.quarantined == 1
        assert (tmp_path / "source" / QUARANTINE_DIRNAME / f"{key}.json").is_file()
        assert destination.get(other) is not None

    def test_merge_report_mentions_quarantined_entries(self):
        report = MergeReport(
            experiment="figure_02", entries_copied=3, planned_keys=4,
            missing_keys=["a" * 64], manifests=[], failures={},
            missing_shards=[], quarantined=2,
        )
        assert "quarantined=2" in report.summary()


# ---------------------------------------------------------------------------
# Campaign recovery: the byte-identity contract under fire
# ---------------------------------------------------------------------------
class TestCampaignRecovery:
    def test_serial_transient_error_is_retried_once(self):
        faults.install_plan(parse_faults("error@sim:key%1"))
        engine = CampaignEngine(scale=SCALE, retry_policy=FAST_RETRY)
        disturbed = engine.run(REQUEST)
        assert engine.retries == 1
        faults.install_plan(None)
        clean = CampaignEngine(scale=SCALE).run(REQUEST)
        assert disturbed.total_cycles == clean.total_cycles

    def test_permanent_fault_exhausts_with_attempt_history(self):
        faults.install_plan(parse_faults("error@sim:key%1x99"))
        engine = CampaignEngine(scale=SCALE, retry_policy=FAST_RETRY)
        with pytest.raises(CampaignRunError) as excinfo:
            engine.run_many([REQUEST])
        error = excinfo.value
        assert len(error.attempts) == FAST_RETRY.max_attempts
        assert [record["attempt"] for record in error.attempts] == [1, 2, 3]
        assert all(r["error_type"] == "InjectedFault" for r in error.attempts)
        assert "attempts" in error.to_dict()

    def test_deterministic_error_is_never_retried(self):
        from repro.errors import ConfigurationError

        engine = CampaignEngine(scale=SCALE, retry_policy=FAST_RETRY)
        with pytest.raises(ConfigurationError):
            engine.run(RunRequest(benchmark="no-such-benchmark", runtime="software"))
        assert engine.retries == 0

    def test_torn_commit_is_quarantined_and_resimulated(self, tmp_path):
        faults.install_plan(parse_faults("corrupt@commit:1"))
        first = CampaignEngine(scale=SCALE, cache_dir=tmp_path)
        reference = first.run(REQUEST)
        faults.install_plan(None)
        second = CampaignEngine(scale=SCALE, cache_dir=tmp_path)
        recovered = second.run(REQUEST)
        assert second.disk_cache.quarantined == 1
        assert recovered.total_cycles == reference.total_cycles
        # The resimulated entry is sound: a third engine reads it as a hit.
        third = CampaignEngine(scale=SCALE, cache_dir=tmp_path)
        assert third.run(REQUEST).total_cycles == reference.total_cycles
        assert third.disk_cache.hits == 1

    def test_parallel_campaign_recovers_crashes_and_hangs_byte_identically(self):
        # Every key draws exactly one fault on its first attempt: even keys
        # crash the worker outright (SIGKILL-equivalent), odd keys hang
        # until the watchdog strikes them.  The recovered parallel campaign
        # must render bytes identical to an undisturbed serial run.
        faults.install_plan(
            parse_faults("crash@sim:key%2,hang@sim:key%2=1", hang_seconds=600.0)
        )
        engine = CampaignEngine(
            scale=SCALE,
            jobs=2,
            retry_policy=FAST_RETRY,
            watchdog_config=WatchdogConfig(
                slack=4.0, min_seconds=2.0, poll_interval_s=0.02
            ),
        )
        plan = resolve_plan(
            "figure_12", SimulationRunner(engine=engine), benchmarks=BENCHMARKS
        )
        assert len(plan) > 1  # the pool path, not the serial fallback
        engine.run_many([item.request for item in plan])
        assert engine.retries >= 1
        assert engine.watchdog_kills >= 1
        # Attempts stayed within budget: every retry is a counted strike.
        assert engine.retries <= (FAST_RETRY.max_attempts - 1) * len(plan)
        faults.install_plan(None)  # render (and any stragglers) fault-free
        disturbed = experiment_output(
            "figure_12", SCALE, BENCHMARKS, runner=SimulationRunner(engine=engine)
        )
        assert disturbed == experiment_output("figure_12", SCALE, BENCHMARKS)
        info = engine.reliability_info()
        assert info["retries"] == engine.retries
        assert info["watchdog_kills"] == engine.watchdog_kills


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
class TestCLI:
    def test_malformed_faults_spec_fails_fast(self, capsys):
        assert cli_main(["figure_02", "--faults", "explode@warehouse"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_faults_flag_installs_plan_and_reports_recovery(self, capsys):
        code = cli_main([
            "figure_02", "--scale", str(SCALE),
            "--benchmarks", "blackscholes",
            "--faults", "error@sim:key%1",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "[reliability]" in captured.out
        assert "retries=" in captured.out

    def test_clean_run_prints_no_reliability_line(self, capsys):
        code = cli_main([
            "figure_02", "--scale", str(SCALE), "--benchmarks", "blackscholes",
        ])
        assert code == 0
        assert "[reliability]" not in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Results daemon degradation
# ---------------------------------------------------------------------------
RENDER_BODY = {"scale": SCALE, "benchmarks": BENCHMARKS, "format": "csv"}


def reliability_daemon(cache_dir, **service_kwargs):
    """A ServiceThread whose service takes the reliability knobs."""
    thread = ServiceThread(cache_dir=cache_dir)
    thread.service = ResultsService(
        cache_dir=cache_dir, workers=2, log=thread.log, **service_kwargs
    )
    return thread


def raw_exchange(address, payload: bytes) -> bytes:
    with socket.create_connection(tuple(address), timeout=30) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


class TestDaemonDegradation:
    def test_oversized_request_line_is_a_clean_400(self, tmp_path):
        with reliability_daemon(tmp_path / "cache") as live:
            response = raw_exchange(
                live.address, b"GET /" + b"a" * (70 * 1024) + b" HTTP/1.1\r\n\r\n"
            )
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"oversized request line" in response
            # The daemon survived; the next request is served normally.
            status, _, _ = live.request("GET", "/healthz")
            assert status == 200

    def test_header_flood_is_a_clean_400(self, tmp_path):
        with reliability_daemon(tmp_path / "cache") as live:
            flood = b"".join(b"X-Padding-%d: a\r\n" % i for i in range(150))
            response = raw_exchange(
                live.address, b"GET /healthz HTTP/1.1\r\n" + flood + b"\r\n"
            )
            assert response.startswith(b"HTTP/1.1 400 ")
            assert b"header lines" in response

    def test_internal_errors_do_not_leak_exception_text(self, tmp_path):
        faults.install_plan(parse_faults("error@serve"))
        with reliability_daemon(tmp_path / "cache") as live:
            status, _, body = live.render("figure_02", RENDER_BODY)
        assert status == 500
        assert json.loads(body) == {"error": "internal server error"}
        assert "InjectedFault" in live.log.getvalue()  # logged, not served

    def test_failure_caching_and_degraded_healthz(self, tmp_path):
        # Every simulation attempt of every key fails deterministically; the
        # first render pays the simulation and answers 500, the second is
        # answered from the negative-TTL failure cache without simulating.
        faults.install_plan(parse_faults("error@sim:key%1x999"))
        with reliability_daemon(tmp_path / "cache", failure_ttl_s=60.0) as live:
            status, _, _ = live.render("figure_02", RENDER_BODY)
            assert status == 500
            # Rerequest until the first-probed key's failure is in the
            # negative cache (its flight-mates may still be landing); the
            # TTL (60 s) far outlives the loop, so 503 is reached.
            for _ in range(40):
                status, headers, body = live.render("figure_02", RENDER_BODY)
                if status == 503:
                    break
                assert status == 500
                time.sleep(0.1)
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert "cached failure" in json.loads(body)["error"]
            assert live.service.failure_cache_hits >= 1
            # A cached refusal starts no new simulation flights.
            flights_started = live.service.flights.started
            status, _, _ = live.render("figure_02", RENDER_BODY)
            assert status == 503
            assert live.service.flights.started == flights_started
            status, _, body = live.request("GET", "/healthz")
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert any("failure cache" in reason
                       for reason in health["degraded_reasons"])
            assert health["reliability"]["failure_cache"] >= 1

    def test_render_deadline_expires_into_503_then_warms(self, tmp_path):
        # The first simulation of the run hangs for 2 s against a 0.3 s
        # request deadline: the render answers 503 + Retry-After while the
        # simulations (shielded by single-flight) finish in the background;
        # a retried render is then served from the warm cache.
        faults.install_plan(parse_faults("hang@sim:1", hang_seconds=2.0))
        with reliability_daemon(
            tmp_path / "cache", request_timeout_s=0.3
        ) as live:
            status, headers, body = live.render("figure_02", RENDER_BODY)
            assert status == 503
            assert headers["Retry-After"] == "2"
            assert "deadline" in json.loads(body)["error"]
            assert live.service.deadline_expired == 1
            faults.install_plan(None)
            deadline = time.time() + 60
            while time.time() < deadline:
                status, _, _ = live.render("figure_02", RENDER_BODY)
                if status == 200:
                    break
                time.sleep(0.25)
            assert status == 200

    def test_queue_budget_refuses_with_retry_after(self):
        service = ResultsService(workers=1, queue_budget=0)
        service.inflight_sims = 5
        with pytest.raises(_HttpError) as excinfo:
            service._check_queue_budget(1)
        assert excinfo.value.status == 503
        assert "Retry-After" in excinfo.value.headers
        assert service.rejected_busy == 1
        _, body, _, _ = asyncio.run(service.handle_healthz())
        health = json.loads(body)
        assert health["status"] == "degraded"
        assert any("queue" in reason for reason in health["degraded_reasons"])

    def test_validation_rejects_bad_knobs(self):
        with pytest.raises(ExperimentError):
            ResultsService(queue_budget=-1)
        # Non-positive deadlines mean "unbounded", not "instant timeout".
        assert ResultsService(request_timeout_s=0).request_timeout_s is None

    def test_shutdown_drains_and_flags_draining(self, tmp_path):
        with reliability_daemon(tmp_path / "cache") as live:
            status, _, _ = live.request("GET", "/healthz")
            assert status == 200
        assert live.service.draining is True
        assert live.service._active_requests == 0
