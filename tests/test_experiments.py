"""Experiment harnesses, registry and CLI.

These tests run the harnesses at tiny scales with a benchmark subset; the
goal is to check the plumbing (rows, columns, normalization, notes, rendering)
rather than the headline numbers, which EXPERIMENTS.md records from full runs.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.common import ExperimentResult, SimulationRunner, select_benchmarks

SCALE = 0.12
FAST_BENCHMARKS = ["cholesky", "blackscholes"]


@pytest.fixture(scope="module")
def runner():
    """One shared runner so the software baselines are simulated once."""
    return SimulationRunner(scale=SCALE)


class TestCommon:
    def test_select_benchmarks_default_is_all_nine(self):
        assert len(select_benchmarks(None)) == 9

    def test_select_benchmarks_rejects_unknown(self):
        with pytest.raises(ExperimentError):
            select_benchmarks(["cholesky", "doom"])

    def test_invalid_scale_rejected(self):
        with pytest.raises(ExperimentError):
            SimulationRunner(scale=0.0)

    def test_runner_caches_identical_runs(self, runner):
        first = runner.run("cholesky", "software")
        second = runner.run("cholesky", "software")
        assert first is second

    def test_experiment_result_rendering(self):
        result = ExperimentResult(
            experiment="demo",
            title="Demo",
            columns=("a", "b"),
        )
        result.add_row(a=1, b=2.5)
        result.add_note("note")
        markdown = result.to_markdown()
        assert "| a | b |" in markdown and "2.500" in markdown and "- note" in markdown
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0] == "a,b"
        assert result.row_for(a=1)["b"] == 2.5
        with pytest.raises(KeyError):
            result.row_for(a=99)


class TestRegistry:
    def test_eleven_paper_experiments_available(self):
        from repro.experiments.registry import experiment_catalog

        catalog = experiment_catalog()
        paper = [entry["name"] for entry in catalog if entry["kind"] == "paper"]
        assert len(paper) == 11
        names = available_experiments()
        assert "figure_12" in names and "table_03" in names
        # The scenario bundles register lazily into the same namespace.
        scenarios = [entry["name"] for entry in catalog if entry["kind"] == "scenario"]
        assert len(scenarios) == 5
        assert all(name.startswith("scenario_") for name in scenarios)

    def test_aliases(self):
        assert get_experiment("fig12") is get_experiment("figure_12")
        assert get_experiment("table3") is get_experiment("table_03")

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            get_experiment("figure_99")


class TestHarnesses:
    def test_table_03_requires_no_simulation(self):
        result = run_experiment("table_03")
        total = result.row_for(structure="Total")
        assert total["storage_kb"] == pytest.approx(105.25)

    def test_table_02_reports_paper_columns(self):
        result = run_experiment("table_02", benchmarks=["cholesky", "qr"])
        row = result.row_for(benchmark="qr")
        assert row["paper_tdm_tasks"] == 11_440
        assert row["tdm_tasks"] == 11_440

    def test_figure_02_breakdown_rows(self, runner):
        result = run_experiment("figure_02", benchmarks=FAST_BENCHMARKS, runner=runner)
        for row in result.rows:
            master_total = sum(row[f"master_{p}"] for p in ("DEPS", "SCHED", "EXEC", "IDLE"))
            assert master_total == pytest.approx(1.0, abs=1e-6)
        cholesky = result.row_for(benchmark="cholesky")
        assert cholesky["master_DEPS"] > 0.3

    def test_figure_06_normalizes_to_best(self, runner):
        result = run_experiment("figure_06", benchmarks=["blackscholes"], runner=runner)
        values = [row["normalized_time"] for row in result.rows]
        assert min(values) == pytest.approx(1.0)
        assert all(value >= 1.0 for value in values)

    def test_figure_07_grid_and_normalization(self, runner):
        result = run_experiment(
            "figure_07", benchmarks=["cholesky"], sizes=[512, 2048], runner=runner
        )
        assert len(result.rows) == 4
        assert all(0.0 < row["performance_vs_ideal"] <= 1.05 for row in result.rows)

    def test_figure_08_diagonal_mode(self, runner):
        result = run_experiment(
            "figure_08", benchmarks=["cholesky"], sizes=[128, 1024], runner=runner
        )
        averages = [row for row in result.rows if row["benchmark"] == "AVG"]
        assert len(averages) == 2

    def test_figure_08_rejects_unknown_mode(self, runner):
        with pytest.raises(ExperimentError):
            run_experiment("figure_08", benchmarks=["cholesky"], mode="cube", runner=runner)

    def test_figure_09_latency_sweep(self, runner):
        result = run_experiment(
            "figure_09", benchmarks=["blackscholes"], latencies=[1, 16], runner=runner
        )
        averages = [row for row in result.rows if row["benchmark"] == "AVG"]
        assert len(averages) == 2
        assert all(row["speedup_vs_zero_latency"] > 0.9 for row in averages)

    def test_figure_10_reduction_factors(self, runner):
        result = run_experiment("figure_10", benchmarks=FAST_BENCHMARKS, runner=runner)
        cholesky = result.row_for(benchmark="cholesky")
        assert cholesky["tdm_creation_fraction"] < cholesky["sw_creation_fraction"]
        assert cholesky["reduction_factor"] > 1.0

    def test_figure_11_dynamic_beats_worst_static(self, runner):
        result = run_experiment(
            "figure_11", benchmarks=["blackscholes"], static_bits=[0], runner=runner
        )
        dynamic = result.row_for(benchmark="blackscholes", index_policy="DYN")
        static = result.row_for(benchmark="blackscholes", index_policy="0")
        assert dynamic["average_occupied_sets"] > static["average_occupied_sets"]

    def test_figure_12_contains_all_configurations(self, runner):
        result = run_experiment("figure_12", benchmarks=["cholesky"], runner=runner)
        configurations = {row["configuration"] for row in result.rows if row["benchmark"] == "cholesky"}
        assert configurations == {
            "OptSW",
            "fifo+TDM",
            "lifo+TDM",
            "locality+TDM",
            "successor+TDM",
            "age+TDM",
            "OptTDM",
        }
        opt_tdm = result.row_for(benchmark="cholesky", configuration="OptTDM")
        fifo_tdm = result.row_for(benchmark="cholesky", configuration="fifo+TDM")
        assert opt_tdm["speedup"] >= fifo_tdm["speedup"]

    def test_figure_13_averages_present(self, runner):
        result = run_experiment("figure_13", benchmarks=["cholesky"], runner=runner)
        averages = {row["configuration"] for row in result.rows if row["benchmark"] == "AVG"}
        assert averages == {"Carbon", "TaskSuperscalar", "OptTDM"}


class TestCli:
    def test_list_option(self, capsys):
        assert cli_main(["--list", "table_03"]) == 0
        out = capsys.readouterr().out
        assert "figure_12" in out

    def test_run_table_to_stdout(self, capsys):
        assert cli_main(["table_03"]) == 0
        out = capsys.readouterr().out
        assert "105.250" in out

    def test_run_to_output_directory(self, tmp_path, capsys):
        assert cli_main(["table_03", "--output", str(tmp_path), "--csv"]) == 0
        assert (tmp_path / "table_03.md").exists()
        assert (tmp_path / "table_03.csv").exists()
