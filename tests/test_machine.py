"""The Machine wrapper and SimulationResult conveniences."""

import dataclasses

import pytest

from repro.config import DMUConfig
from repro.errors import SimulationError
from repro.sim.machine import Machine, run_simulation
from repro.sim.timeline import Phase

from tests.util import diamond_program, make_config


class TestMachine:
    def test_run_returns_consistent_result(self, diamond, small_config):
        result = Machine(diamond, small_config).run()
        assert result.program_name == "diamond"
        assert result.runtime_name == "tdm"
        assert result.total_cycles > 0
        assert result.seconds > 0
        assert result.microseconds == pytest.approx(result.seconds * 1e6)

    def test_determinism(self, diamond, small_config):
        first = Machine(diamond, small_config).run()
        second = Machine(diamond, small_config).run()
        assert first.total_cycles == second.total_cycles
        assert first.energy.total_energy_mj == pytest.approx(second.energy.total_energy_mj)

    def test_speedup_and_edp_relations(self, small_chain_program):
        software = run_simulation(small_chain_program, make_config(runtime="software"))
        tdm = run_simulation(small_chain_program, make_config(runtime="tdm"))
        speedup = tdm.speedup_over(software)
        assert speedup == pytest.approx(software.total_cycles / tdm.total_cycles)
        assert tdm.normalized_edp(software) == pytest.approx(tdm.edp / software.edp)
        assert software.speedup_over(software) == pytest.approx(1.0)

    def test_master_creation_fraction_in_range(self, small_chain_program):
        result = run_simulation(small_chain_program, make_config(runtime="software"))
        assert 0.0 < result.master_creation_fraction < 1.0
        assert 0.0 <= result.idle_fraction < 1.0

    def test_breakdowns_sum_to_one(self, diamond, small_config):
        result = Machine(diamond, small_config).run()
        assert sum(result.master_breakdown().values()) == pytest.approx(1.0)
        assert sum(result.worker_breakdown().values()) == pytest.approx(1.0)

    def test_more_cores_do_not_slow_down_parallel_work(self, small_random_program):
        two = run_simulation(small_random_program, make_config(num_cores=2))
        eight = run_simulation(small_random_program, make_config(num_cores=8))
        assert eight.total_cycles <= two.total_cycles

    def test_cycle_budget_enforced(self, diamond):
        config = make_config(max_cycles=10)
        with pytest.raises(SimulationError):
            Machine(diamond, config).run()

    def test_single_core_executes_everything_on_master(self, diamond):
        result = run_simulation(diamond, make_config(num_cores=1))
        assert result.num_tasks_executed == 4
        assert result.timeline.threads[0].totals[Phase.EXEC] > 0

    def test_scheduler_name_reflects_fixed_hardware_policy(self, diamond):
        result = run_simulation(diamond, make_config(runtime="carbon", scheduler="age"))
        assert result.scheduler_name == "carbon"

    def test_record_timeline_false_still_accumulates_totals(self, diamond):
        config = make_config(record_timeline=False)
        result = run_simulation(diamond, config)
        assert sum(result.timeline.totals().values()) > 0
        assert result.timeline.threads[0].intervals == []

    def test_small_dmu_still_completes(self, small_random_program):
        dmu = DMUConfig(
            tat_entries=16,
            dat_entries=16,
            successor_list_entries=16,
            dependence_list_entries=16,
            reader_list_entries=16,
            ready_queue_entries=16,
        )
        result = run_simulation(small_random_program, make_config(runtime="tdm", dmu=dmu))
        assert result.num_tasks_executed == small_random_program.num_tasks

    def test_dat_occupancy_recorded_for_tdm(self, diamond, small_config):
        result = Machine(diamond, small_config).run()
        assert result.dat_average_occupied_sets > 0

    def test_validation_can_be_disabled(self, diamond):
        config = dataclasses.replace(make_config(), validate_execution=False)
        result = run_simulation(diamond, config)
        assert result.num_tasks_executed == 4
