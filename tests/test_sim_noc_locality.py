"""NoC latency model and per-core locality model."""

import pytest

from repro.config import LocalityConfig
from repro.sim.locality import CoreLocalityTracker, LocalityModel
from repro.sim.noc import NocModel


class TestNoc:
    def test_round_trip_positive_for_all_cores(self):
        noc = NocModel(num_cores=32)
        for core in range(32):
            assert noc.round_trip_cycles(core) > 0

    def test_center_core_is_closest(self):
        noc = NocModel(num_cores=32)
        trips = [noc.round_trip_cycles(core) for core in range(32)]
        side = noc.mesh_side()
        center = (side // 2) * side + side // 2
        assert trips[center] == min(trips)

    def test_out_of_range_core_rejected(self):
        noc = NocModel(num_cores=4)
        with pytest.raises(ValueError):
            noc.round_trip_cycles(4)

    def test_average_round_trip_between_min_and_max(self):
        noc = NocModel(num_cores=16)
        trips = [noc.round_trip_cycles(core) for core in range(16)]
        assert min(trips) <= noc.average_round_trip_cycles() <= max(trips)


class TestCoreLocalityTracker:
    def test_touch_and_hit(self):
        tracker = CoreLocalityTracker(capacity=4)
        tracker.touch([1, 2, 3])
        assert tracker.hit_fraction([1, 2]) == 1.0
        assert tracker.hit_fraction([9]) == 0.0
        assert tracker.hit_fraction([1, 9]) == 0.5

    def test_lru_eviction(self):
        tracker = CoreLocalityTracker(capacity=2)
        tracker.touch([1, 2])
        tracker.touch([3])
        assert 1 not in tracker
        assert 2 in tracker and 3 in tracker

    def test_touch_refreshes_recency(self):
        tracker = CoreLocalityTracker(capacity=2)
        tracker.touch([1, 2])
        tracker.touch([1])
        tracker.touch([3])
        assert 1 in tracker
        assert 2 not in tracker

    def test_empty_addresses_hit_fraction_zero(self):
        assert CoreLocalityTracker(4).hit_fraction([]) == 0.0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            CoreLocalityTracker(0)


class TestLocalityModel:
    def test_reuse_on_same_core_speeds_up_execution(self):
        model = LocalityModel(2, LocalityConfig(max_speedup_fraction=0.2))
        first = model.execution_cycles(0, 10_000, [1, 2], memory_sensitivity=1.0)
        assert first == 10_000  # cold: no reuse yet
        second = model.execution_cycles(0, 10_000, [1, 2], memory_sensitivity=1.0)
        assert second == 8_000

    def test_no_speedup_on_other_core(self):
        model = LocalityModel(2, LocalityConfig(max_speedup_fraction=0.2))
        model.execution_cycles(0, 10_000, [1, 2], memory_sensitivity=1.0)
        other = model.execution_cycles(1, 10_000, [1, 2], memory_sensitivity=1.0)
        assert other == 10_000

    def test_compute_bound_tasks_unaffected(self):
        model = LocalityModel(1, LocalityConfig(max_speedup_fraction=0.2))
        model.execution_cycles(0, 10_000, [1], memory_sensitivity=0.0)
        again = model.execution_cycles(0, 10_000, [1], memory_sensitivity=0.0)
        assert again == 10_000

    def test_disabled_model_never_adjusts(self):
        model = LocalityModel(1, LocalityConfig(enabled=False))
        model.execution_cycles(0, 10_000, [1], memory_sensitivity=1.0)
        assert model.execution_cycles(0, 10_000, [1], memory_sensitivity=1.0) == 10_000

    def test_average_hit_fraction_tracks_history(self):
        model = LocalityModel(1, LocalityConfig())
        model.execution_cycles(0, 1_000, [1], memory_sensitivity=1.0)
        model.execution_cycles(0, 1_000, [1], memory_sensitivity=1.0)
        assert 0.0 < model.average_hit_fraction() <= 1.0

    def test_partial_hit_scales_linearly(self):
        model = LocalityModel(1, LocalityConfig(max_speedup_fraction=0.2))
        model.execution_cycles(0, 10_000, [1], memory_sensitivity=1.0)
        mixed = model.execution_cycles(0, 10_000, [1, 99], memory_sensitivity=1.0)
        assert mixed == 9_000  # half the inputs hit -> half the max reduction
