"""Differential tests: columnar DMU structures vs object-model references.

The columnar rewrite of :class:`ListArray` / :class:`AliasTable` /
:class:`TaskTable` must be *observationally identical* to the
object-per-entry implementations it replaced: same results, same SRAM
access counts (they are part of the pinned timing model), and the same
entry-recycling / way-eviction order (it decides which SRAM entry a new
list or mapping lands in, which is observable through handles).

Each reference model below is a faithful port of the pre-rewrite
implementation (per-entry ``__slots__`` objects, per-set way lists, LIFO
free stacks).  Random op sequences drive the real and the reference model
in lockstep and every return value, exception, counter and handle is
compared.  Handles are compared *exactly*: both sides hand out entry
indices from the same fresh-counter + recycled-LIFO scheme, so any
divergence in recycle order shows up as a handle mismatch.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

import pytest

from repro.config import DMUConfig
from repro.core.alias_table import AliasTable
from repro.core.backends import numpy_available
from repro.core.dmu import DependenceManagementUnit
from repro.core.isa import DMUBlocked
from repro.core.list_array import INVALID_ELEMENT, ListArray
from repro.core.task_table import TaskTable
from repro.errors import DMUProtocolError, DMUStructureFullError


# --------------------------------------------------------------------------
# Reference models (ports of the pre-columnar, object-per-entry code)
# --------------------------------------------------------------------------
class _RefListEntry:
    __slots__ = ("elements", "next_index", "in_use", "valid")

    def __init__(self, elements: List[int], next_index: int) -> None:
        self.elements = elements
        self.next_index = next_index
        self.in_use = False
        self.valid = len(elements) - elements.count(INVALID_ELEMENT)


class RefListArray:
    """Object-per-entry list array with the original walk algorithms."""

    def __init__(self, name: str, num_entries: int, elements_per_entry: int) -> None:
        self.name = name
        self.num_entries = num_entries
        self.elements_per_entry = elements_per_entry
        self._entries: Dict[int, _RefListEntry] = {}
        self._recycled: List[int] = []
        self._next_fresh_index = 0
        self.peak_entries_used = 0
        self.free_entries = num_entries
        self._blank_row = (INVALID_ELEMENT,) * elements_per_entry

    def _allocate_entry(self) -> int:
        free = self.free_entries
        if free <= 0:
            raise DMUStructureFullError(self.name)
        if self._recycled:
            index = self._recycled.pop()
            entry = self._entries[index]
        else:
            index = self._next_fresh_index
            self._next_fresh_index = index + 1
            entry = _RefListEntry(list(self._blank_row), next_index=index)
            self._entries[index] = entry
        entry.in_use = True
        entry.next_index = index
        self.free_entries = free - 1
        in_use = self.num_entries - free + 1
        if in_use > self.peak_entries_used:
            self.peak_entries_used = in_use
        return index

    def _release_entry(self, index: int) -> None:
        entry = self._entries[index]
        entry.in_use = False
        entry.elements[:] = self._blank_row
        entry.valid = 0
        entry.next_index = index
        self.free_entries += 1
        self._recycled.append(index)

    def new_list(self) -> Tuple[int, int]:
        return self._allocate_entry(), 1

    def appending_needs_new_entry(self, head: int) -> bool:
        index = head
        visited = 0
        while True:
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError("free entry")
            visited += 1
            if entry.next_index == index:
                return entry.valid == self.elements_per_entry
            if visited > self.num_entries:
                raise ValueError("corrupted chain")
            index = entry.next_index

    def append(self, head: int, value: int) -> int:
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry = self._entries[index]
            if entry.valid < self.elements_per_entry:
                elements = entry.elements
                elements[elements.index(INVALID_ELEMENT)] = value
                entry.valid += 1
                return accesses
            next_index = entry.next_index
            if next_index == index:
                new_index = self._allocate_entry()
                accesses += 1
                entry.next_index = new_index
                new_entry = self._entries[new_index]
                new_entry.elements[0] = value
                new_entry.valid = 1
                return accesses
            index = next_index

    def iterate(self, head: int) -> Tuple[List[int], int]:
        values: List[int] = []
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError("free entry")
            values.extend(e for e in entry.elements if e != INVALID_ELEMENT)
            if entry.next_index == index:
                return values, accesses
            index = entry.next_index

    def remove(self, head: int, value: int) -> Tuple[bool, int]:
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError("free entry")
            if entry.valid and value in entry.elements:
                entry.elements[entry.elements.index(value)] = INVALID_ELEMENT
                entry.valid -= 1
                return True, accesses
            if entry.next_index == index:
                return False, accesses
            index = entry.next_index

    def flush(self, head: int) -> int:
        head_entry = self._entries[head]
        if not head_entry.in_use:
            raise ValueError("free entry")
        accesses = 1
        index = head_entry.next_index
        if index != head:
            while True:
                entry = self._entries[index]
                accesses += 1
                next_index = entry.next_index
                self._release_entry(index)
                if next_index == index:
                    break
                index = next_index
        head_entry.elements[:] = self._blank_row
        head_entry.valid = 0
        head_entry.next_index = head
        return accesses

    def free_list(self, head: int) -> int:
        accesses = 0
        index = head
        while True:
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError("free entry")
            accesses += 1
            next_index = entry.next_index
            self._release_entry(index)
            if next_index == index:
                return accesses
            index = next_index

    def length(self, head: int) -> int:
        total = 0
        index = head
        while True:
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError("free entry")
            total += entry.valid
            if entry.next_index == index:
                return total
            index = entry.next_index

    def entries_of(self, head: int) -> int:
        count = 0
        index = head
        while True:
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError("free entry")
            count += 1
            if entry.next_index == index:
                return count
            index = entry.next_index


class RefAliasTable:
    """Per-set way lists + free-ID LIFO, as in the pre-columnar AliasTable."""

    def __init__(self, num_entries: int, associativity: int) -> None:
        self.num_entries = num_entries
        self.associativity = associativity
        self.num_sets = num_entries // associativity
        self._sets: Dict[int, List[Tuple[int, int]]] = {}
        self._by_address: Dict[int, int] = {}
        self._address_set: Dict[int, int] = {}
        self._occupied_sets = 0
        self._next_fresh_id = 0
        self._recycled_ids: List[int] = []
        self.conflict_rejections = 0
        self.capacity_rejections = 0
        self.peak_occupancy = 0

    def set_index(self, address: int) -> int:
        return address % self.num_sets

    @property
    def free_entries(self) -> int:
        return self.num_entries - len(self._by_address)

    def occupied_sets(self) -> int:
        return self._occupied_sets

    def lookup(self, address: int) -> Optional[int]:
        return self._by_address.get(address)

    def can_allocate(self, address: int) -> bool:
        if address in self._by_address:
            return True
        if self.free_entries <= 0:
            return False
        ways = self._sets.get(self.set_index(address), [])
        return len(ways) < self.associativity

    def allocate(self, address: int) -> int:
        existing = self._by_address.get(address)
        if existing is not None:
            return existing
        if self.free_entries <= 0:
            self.capacity_rejections += 1
            raise DMUStructureFullError("ref")
        set_index = self.set_index(address)
        ways = self._sets.setdefault(set_index, [])
        if len(ways) >= self.associativity:
            self.conflict_rejections += 1
            raise DMUStructureFullError("ref")
        if self._recycled_ids:
            internal_id = self._recycled_ids.pop()
        else:
            internal_id = self._next_fresh_id
            self._next_fresh_id += 1
        if not ways:
            self._occupied_sets += 1
        ways.append((address, internal_id))
        self._by_address[address] = internal_id
        self._address_set[address] = set_index
        self.peak_occupancy = max(self.peak_occupancy, len(self._by_address))
        return internal_id

    def release(self, address: int) -> int:
        internal_id = self._by_address.pop(address)
        set_index = self._address_set.pop(address)
        ways = self._sets.get(set_index, [])
        for position, (way_address, _way_id) in enumerate(ways):
            if way_address == address:
                del ways[position]
                break
        if not ways:
            self._occupied_sets -= 1
        self._recycled_ids.append(internal_id)
        return internal_id

    def way_order(self, address: int) -> List[int]:
        """Way addresses of the set holding ``address``, in way order."""
        return [a for a, _ in self._sets.get(self.set_index(address), [])]


class _RefTaskEntry:
    __slots__ = ("descriptor_address", "predecessor_count", "successor_count",
                 "successor_list", "dependence_list", "creation_complete")

    def __init__(self, descriptor_address, successor_list, dependence_list):
        self.descriptor_address = descriptor_address
        self.predecessor_count = 0
        self.successor_count = 0
        self.successor_list = successor_list
        self.dependence_list = dependence_list
        self.creation_complete = False


class RefTaskTable:
    def __init__(self, num_entries: int) -> None:
        self.num_entries = num_entries
        self._entries: Dict[int, _RefTaskEntry] = {}
        self.peak_occupancy = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def install(self, task_id, descriptor_address, successor_list, dependence_list):
        if task_id in self._entries:
            raise DMUProtocolError("already in use")
        self._entries[task_id] = _RefTaskEntry(
            descriptor_address, successor_list, dependence_list
        )
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def free(self, task_id):
        if task_id not in self._entries:
            raise DMUProtocolError("already free")
        del self._entries[task_id]

    def is_valid(self, task_id):
        return task_id in self._entries


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------
def _assert_list_state(real: ListArray, ref: RefListArray, heads) -> None:
    assert real.free_entries == ref.free_entries
    assert real.peak_entries_used == ref.peak_entries_used
    assert real.entries_in_use == (ref.num_entries - ref.free_entries)
    for head in heads:
        assert real.iterate(head) == ref.iterate(head)
        assert real.length(head) == ref.length(head)
        assert real.entries_of(head) == ref.entries_of(head)
        assert real.is_empty(head) == (ref.length(head) == 0)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("append_only", [False, True])
def test_list_array_random_ops_differential(seed, append_only):
    rng = random.Random(0xC0FFEE + seed)
    entries, per = 24, 3
    real = ListArray("diff", entries, per, append_only=append_only)
    ref = RefListArray("diff", entries, per)
    heads: List[int] = []
    values_of: Dict[int, List[int]] = {}

    operations = ["new", "append", "iterate", "length", "free"]
    if not append_only:
        operations += ["remove", "flush"]
    for step in range(400):
        op = rng.choice(operations)
        if op == "new" or not heads:
            needs = real.free_entries < 1
            assert needs == (ref.free_entries < 1)
            if needs:
                with pytest.raises(DMUStructureFullError):
                    real.new_list()
                with pytest.raises(DMUStructureFullError):
                    ref.new_list()
                continue
            head_real, acc_real = real.new_list()
            head_ref, acc_ref = ref.new_list()
            # Exact handle equality pins the fresh/recycled allocation order.
            assert (head_real, acc_real) == (head_ref, acc_ref)
            heads.append(head_real)
            values_of[head_real] = []
            continue
        head = rng.choice(heads)
        if op == "append":
            value = rng.randrange(0, 200)
            needs_new = real.appending_needs_new_entry(head)
            assert needs_new == ref.appending_needs_new_entry(head)
            if needs_new and real.free_entries < 1:
                with pytest.raises(DMUStructureFullError):
                    real.append(head, value)
                with pytest.raises(DMUStructureFullError):
                    ref.append(head, value)
                continue
            assert real.append(head, value) == ref.append(head, value)
            values_of[head].append(value)
        elif op == "remove":
            pool = values_of[head]
            value = rng.choice(pool) if pool and rng.random() < 0.7 else 999
            result = real.remove(head, value)
            assert result == ref.remove(head, value)
            if result[0]:
                pool.remove(value)
        elif op == "flush":
            assert real.flush(head) == ref.flush(head)
            values_of[head] = []
        elif op == "iterate":
            assert real.iterate(head) == ref.iterate(head)
        elif op == "length":
            assert real.length(head) == ref.length(head)
            assert real.entries_of(head) == ref.entries_of(head)
        elif op == "free":
            assert real.free_list(head) == ref.free_list(head)
            heads.remove(head)
            del values_of[head]
        if step % 25 == 0:
            _assert_list_state(real, ref, heads)
    _assert_list_state(real, ref, heads)
    for head in heads:
        assert real.free_list(head) == ref.free_list(head)
    assert real.free_entries == real.num_entries


@pytest.mark.parametrize("seed", range(8))
def test_alias_table_random_ops_differential(seed):
    rng = random.Random(0xA11A5 + seed)
    entries, assoc = 32, 4
    real = AliasTable("diff", entries, assoc, index_start_bit=0)
    ref = RefAliasTable(entries, assoc)
    live: List[int] = []
    for _ in range(600):
        op = rng.random()
        if op < 0.55 or not live:
            address = rng.randrange(0, 96)
            can = real.can_allocate(address)
            assert can == ref.can_allocate(address)
            if not can:
                with pytest.raises(DMUStructureFullError):
                    real.allocate(address)
                with pytest.raises(DMUStructureFullError):
                    ref.allocate(address)
                continue
            # Identical IDs pin the fresh-counter + recycled-LIFO order.
            assert real.allocate(address) == ref.allocate(address)
            if address not in live:
                live.append(address)
        elif op < 0.85:
            address = rng.choice(live)
            assert real.release(address) == ref.release(address)
            live.remove(address)
        else:
            address = rng.randrange(0, 96)
            assert real.lookup(address) == ref.lookup(address)
        assert real.free_entries == ref.free_entries
        assert real.occupied_sets() == ref.occupied_sets()
        assert real.conflict_rejections == ref.conflict_rejections
        assert real.capacity_rejections == ref.capacity_rejections
        assert real.peak_occupancy == ref.peak_occupancy


def test_alias_table_way_eviction_order_matches_reference():
    """Releasing a middle way shifts later ways up, preserving way order."""
    real = AliasTable("ways", 16, 4, index_start_bit=0)
    ref = RefAliasTable(16, 4)
    addresses = [4, 8, 12, 16]  # all map to set 0 (num_sets = 4)
    for address in addresses:
        assert real.allocate(address) == ref.allocate(address)
    real.release(8)
    ref.release(8)
    # The set has a free way again; the next conflicting allocate succeeds
    # and the two implementations hand out the same (recycled) ID.
    assert real.can_allocate(20) and ref.can_allocate(20)
    assert real.allocate(20) == ref.allocate(20)
    assert ref.way_order(4) == [4, 12, 16, 20]


@pytest.mark.parametrize("seed", range(6))
def test_task_table_random_ops_differential(seed):
    rng = random.Random(0x7A5C + seed)
    real = TaskTable(16)
    ref = RefTaskTable(16)
    for _ in range(400):
        task_id = rng.randrange(0, 16)
        op = rng.random()
        if op < 0.45:
            if ref.is_valid(task_id):
                with pytest.raises(DMUProtocolError):
                    real.install(task_id, 1, 2, 3)
                continue
            descriptor = rng.randrange(1, 1 << 40)
            real.install(task_id, descriptor, task_id * 2, task_id * 2 + 1)
            ref.install(task_id, descriptor, task_id * 2, task_id * 2 + 1)
        elif op < 0.7:
            if not ref.is_valid(task_id):
                with pytest.raises(DMUProtocolError):
                    real.free(task_id)
                continue
            real.free(task_id)
            ref.free(task_id)
        elif ref.is_valid(task_id):
            delta = rng.randrange(0, 3)
            real.predecessor_count[task_id] += delta
            ref._entries[task_id].predecessor_count += delta
            real.successor_count[task_id] += 1
            ref._entries[task_id].successor_count += 1
            if rng.random() < 0.3:
                real.creation_complete[task_id] = 1
                ref._entries[task_id].creation_complete = True
        assert real.is_valid(task_id) == ref.is_valid(task_id)
        assert real.occupancy == ref.occupancy
        assert real.peak_occupancy == ref.peak_occupancy
        for tid, entry in ref._entries.items():
            assert real.descriptor_address[tid] == entry.descriptor_address
            assert real.predecessor_count[tid] == entry.predecessor_count
            assert real.successor_count[tid] == entry.successor_count
            assert real.successor_list[tid] == entry.successor_list
            assert real.dependence_list[tid] == entry.dependence_list
            assert bool(real.creation_complete[tid]) == entry.creation_complete


# --------------------------------------------------------------------------
# Explicit edge cases
# --------------------------------------------------------------------------
class TestListArrayEdgeCases:
    def test_full_table_blocks_new_list_and_growth(self):
        array = ListArray("full", 4, 2)
        heads = [array.new_list()[0] for _ in range(4)]
        with pytest.raises(DMUStructureFullError):
            array.new_list()
        array.append(heads[0], 1)
        array.append(heads[0], 2)
        assert array.appending_needs_new_entry(heads[0])
        with pytest.raises(DMUStructureFullError):
            array.append(heads[0], 3)
        # The failed growth attempt left no partial state behind.
        assert array.iterate(heads[0]) == ([1, 2], 1)
        assert array.free_entries == 0

    def test_free_list_reuse_is_lifo(self):
        array = ListArray("lifo", 8, 2)
        heads = [array.new_list()[0] for _ in range(4)]
        assert heads == [0, 1, 2, 3]
        array.free_list(heads[1])
        array.free_list(heads[3])
        # Last released is first reused, then the earlier release, then fresh.
        assert array.new_list()[0] == 3
        assert array.new_list()[0] == 1
        assert array.new_list()[0] == 4

    def test_flush_keeps_head_and_releases_tail_lifo(self):
        array = ListArray("flush", 8, 1)
        head = array.new_list()[0]
        for value in (1, 2, 3):
            array.append(head, value)
        assert array.entries_of(head) == 3
        accesses = array.flush(head)
        assert accesses == 3  # head read + two released chain entries
        assert array.iterate(head) == ([], 1)
        assert array.entries_of(head) == 1
        # Chain entries 1 and 2 were released walk-order; reuse is LIFO.
        assert array.new_list()[0] == 2
        assert array.new_list()[0] == 1

    def test_appending_needs_new_entry_follows_tail_not_holes(self):
        """The pre-check is pinned to tail-entry fullness, not hole absence.

        After ``remove`` leaves a hole in a non-tail entry while the tail is
        full, ``append`` fills the hole without allocating — but the
        historical pre-check (which the DMU's blocking behavior is pinned
        to) walked to the tail and looked only there, reporting True.
        """
        array = ListArray("holes", 8, 2)
        ref = RefListArray("holes", 8, 2)
        head = array.new_list()[0]
        ref_head = ref.new_list()[0]
        for value in (1, 2, 3, 4):  # two full entries
            assert array.append(head, value) == ref.append(ref_head, value)
        assert array.remove(head, 1) == ref.remove(ref_head, 1)
        assert array.appending_needs_new_entry(head) is True
        assert ref.appending_needs_new_entry(ref_head) is True
        # Append fills the hole in the head entry (1 access, no allocation).
        assert array.append(head, 9) == ref.append(ref_head, 9) == 1
        assert array.free_entries == ref.free_entries
        assert array.iterate(head) == ref.iterate(ref_head)

    def test_recycled_entry_is_blank(self):
        array = ListArray("blank", 4, 2)
        head = array.new_list()[0]
        array.append(head, 7)
        array.free_list(head)
        again = array.new_list()[0]
        assert again == head
        assert array.iterate(again) == ([], 1)
        assert array.length(again) == 0

    def test_append_only_rejects_remove_and_flush(self):
        array = ListArray("ao", 4, 2, append_only=True)
        head = array.new_list()[0]
        array.append(head, 1)
        with pytest.raises(ValueError):
            array.remove(head, 1)
        with pytest.raises(ValueError):
            array.flush(head)


class TestTaskTableEdgeCases:
    def test_full_table_and_reuse(self):
        table = TaskTable(4)
        for task_id in range(4):
            table.install(task_id, task_id + 100, 0, 1)
        assert table.occupancy == 4
        with pytest.raises(DMUProtocolError):
            table.install(0, 1, 2, 3)
        table.free(2)
        table.install(2, 999, 5, 6)
        assert table.descriptor_address[2] == 999
        assert table.predecessor_count[2] == 0
        assert table.peak_occupancy == 4


# --------------------------------------------------------------------------
# Backend differential: pure vs accel over full-DMU instruction streams
# --------------------------------------------------------------------------
def _drive_dmu_stream(backend: str, seed: int, steps: int = 3000):
    """Drive one DMU through a random ISA instruction stream.

    Returns ``(log, stats, extras)``: a per-op log of every result field,
    blocked structure and exception (type *and* message — both are pinned),
    the final statistics dict, and every externally observable counter the
    two backends must agree on — peaks, recycled-stack contents (LIFO order
    decides which SRAM entry the next allocation lands in), ready-queue
    totals, the capacity snapshot, and the backend audit recounts.
    """
    config = DMUConfig(
        tat_entries=64, dat_entries=64,
        tat_associativity=4, dat_associativity=4,
        successor_list_entries=32, dependence_list_entries=32,
        reader_list_entries=32, elements_per_list_entry=4,
        ready_queue_entries=64, backend=backend,
    )
    dmu = DependenceManagementUnit(config)
    rng = random.Random(seed)
    live: Dict[int, str] = {}
    addresses = [0x1000 + 0x40 * i for i in range(200)]
    dependences = [0x9000 + 0x100 * i for i in range(40)]
    log: list = []
    for _ in range(steps):
        op = rng.randrange(6)
        # Exceptions are part of the comparison, not failures: the stream
        # deliberately violates the DMU protocol (duplicate creates, unknown
        # descriptors, premature finishes) and both backends must raise the
        # same type with the same message at the same op.
        try:
            if op == 0:
                address = rng.choice(addresses)
                result = dmu.create_task(address)
                if isinstance(result, DMUBlocked):
                    log.append(("create-blocked", result.structure))
                else:
                    live[address] = "created"
                    log.append(("create", result.task_id, result.cycles))
            elif op == 1 and live:
                address = rng.choice(list(live))
                dependence = rng.choice(dependences)
                direction = rng.choice(["in", "out"])
                size = rng.choice([64, 256, 4096])
                result = dmu.add_dependence(address, dependence, size, direction)
                if isinstance(result, DMUBlocked):
                    log.append(("add-blocked", result.structure))
                else:
                    log.append(
                        ("add", result.dependence_id, result.predecessors_added,
                         result.cycles)
                    )
            elif op == 2 and live:
                address = rng.choice(list(live))
                if live[address] == "created":
                    result = dmu.complete_creation(address)
                    live[address] = "complete"
                    log.append(("complete", result.became_ready, result.cycles))
            elif op == 3:
                result = dmu.get_ready_task()
                popped = result.descriptor_address
                log.append(
                    ("ready", popped,
                     result.num_successors if popped is not None else -1,
                     result.cycles)
                )
            elif op == 4 and live:
                address = rng.choice(list(live))
                if live[address] == "complete" and rng.random() < 0.5:
                    result = dmu.finish_task(address)
                    del live[address]
                    log.append(("finish", result.tasks_woken, result.cycles))
            elif op == 5:
                kind = rng.randrange(2)
                if kind == 0:
                    dmu.add_dependence(0xDEAD, dependences[0], 64, "in")
                else:
                    dmu.finish_task(0xBEEF)
        except Exception as error:  # noqa: BLE001 — type + message compared
            log.append(("err", type(error).__name__, str(error)))
    stats = dmu.stats.as_dict()
    extras = dict(
        tat_lookups=dmu.tat.lookups, dat_lookups=dmu.dat.lookups,
        tat_allocations=dmu.tat.allocations,
        occupancy_average=dmu.dat.average_occupied_sets(),
        occupancy_samples=dmu.dat._occupied_set_samples,
        task_table_peak=dmu.task_table.peak_occupancy,
        dependence_table_peak=dmu.dependence_table.peak_occupancy,
        sla_peak=dmu.successor_lists.peak_entries_used,
        dla_peak=dmu.dependence_lists.peak_entries_used,
        rla_peak=dmu.reader_lists.peak_entries_used,
        sla_recycled=list(dmu.successor_lists._recycled),
        dla_recycled=list(dmu.dependence_lists._recycled),
        rla_recycled=list(dmu.reader_lists._recycled),
        tat_recycled=list(dmu.tat._recycled_ids),
        dat_recycled=list(dmu.dat._recycled_ids),
        ready_queue=dict(
            pushes=dmu.ready_queue.total_pushes,
            pops=dmu.ready_queue.total_pops,
            peak=dmu.ready_queue.peak_occupancy,
        ),
        snapshot=dmu.capacity_snapshot(),
        audits=[
            dmu.successor_lists.audit(), dmu.dependence_lists.audit(),
            dmu.reader_lists.audit(), dmu.tat.audit(), dmu.dat.audit(),
        ],
    )
    return log, stats, extras, dmu


@pytest.mark.skipif(not numpy_available(), reason="accel backend requires numpy")
class TestBackendDifferential:
    """The accel backend is observationally identical to pure.

    Every random-op stream is driven through a pure-backend DMU and an
    accel-backend DMU in lockstep: per-op results (IDs, cycle charges,
    blocked structures, exception types and messages), final statistics,
    peaks, handle-recycle order and the backend audit recounts must all be
    equal — the byte-identity contract behind sharing cache entries across
    backends (see ``repro/core/backends/__init__.py``).
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_random_streams_identical(self, seed):
        pure_log, pure_stats, pure_extras, _ = _drive_dmu_stream("pure", seed)
        accel_log, accel_stats, accel_extras, dmu = _drive_dmu_stream("accel", seed)
        assert dmu.backend.name == "accel"
        for step, (pure_op, accel_op) in enumerate(zip(pure_log, accel_log)):
            assert pure_op == accel_op, f"seed {seed} diverges at op {step}"
        assert len(pure_log) == len(accel_log)
        assert pure_stats == accel_stats
        assert pure_extras == accel_extras

    def test_accel_kernels_are_installed(self):
        """Guard against the differential becoming vacuous.

        The accel backend rebinds the five ISA instructions as *instance*
        attributes; if installation silently stopped happening, the stream
        test would compare pure against pure and prove nothing.
        """
        dmu = DependenceManagementUnit(DMUConfig(backend="accel"))
        for name in ("create_task", "add_dependence", "complete_creation",
                     "finish_task", "get_ready_task"):
            assert name in dmu.__dict__, f"{name} not rebound by accel install()"
            assert dmu.__dict__[name] is not getattr(type(dmu), name)
        assert dmu._stats_sync is not None
        pure = DependenceManagementUnit(DMUConfig(backend="pure"))
        assert "create_task" not in pure.__dict__
        assert pure._stats_sync is None
