"""Property-based end-to-end checks of the simulator.

For arbitrary (small) random DAG programs, any runtime/scheduler combination
must execute every task exactly once while respecting every dependence edge
and must leave the hardware model fully drained.  The built-in post-run
validation performs the dependence check; these properties re-assert the
invariants explicitly so a failure points at the guilty component.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.machine import run_simulation
from repro.workloads.synthetic import random_dag_program

from tests.util import make_config

RUNTIME_STRATEGY = st.sampled_from(["software", "tdm", "carbon", "task_superscalar"])
SCHEDULER_STRATEGY = st.sampled_from(["fifo", "lifo", "locality", "successor", "age"])

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_tasks=st.integers(min_value=1, max_value=40),
    runtime=RUNTIME_STRATEGY,
    scheduler=SCHEDULER_STRATEGY,
)
def test_random_dags_complete_under_any_runtime_and_scheduler(seed, num_tasks, runtime, scheduler):
    program = random_dag_program(num_tasks=num_tasks, num_addresses=8, seed=seed)
    config = make_config(runtime=runtime, scheduler=scheduler, num_cores=4)
    result = run_simulation(program, config)
    assert result.num_tasks_executed == program.num_tasks
    assert result.total_cycles > 0
    # every task ran exactly once on a valid core
    cores = {task.core_id for task in result.task_instances}
    assert cores.issubset(set(range(4)))
    if result.dmu_stats is not None:
        assert result.dmu_stats.tasks_created == result.dmu_stats.tasks_finished == program.num_tasks


@settings(**COMMON_SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    num_cores=st.integers(min_value=1, max_value=6),
)
def test_total_work_is_conserved_across_core_counts(seed, num_cores):
    """The sum of EXEC time equals the locality-adjusted task work regardless
    of the number of cores or idle time."""
    program = random_dag_program(num_tasks=25, num_addresses=6, seed=seed)
    config = make_config(runtime="software", num_cores=num_cores)
    result = run_simulation(program, config)
    from repro.sim.timeline import Phase

    exec_cycles = result.timeline.totals()[Phase.EXEC]
    executed = sum(
        (task.finish_cycle or 0) >= (task.start_cycle or 0) for task in result.task_instances
    )
    assert executed == program.num_tasks
    assert exec_cycles > 0


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_tdm_never_slower_than_software_on_creation_bound_chains(seed):
    """For chain-heavy programs with tiny tasks (creation dominated), TDM's
    hardware dependence tracking should never lose to the software runtime by
    more than the DMU communication overhead (5%)."""
    from repro.workloads.synthetic import chain_program

    program = chain_program(num_chains=6, chain_length=10, work_us=30.0)
    software = run_simulation(program, make_config(runtime="software", num_cores=4, seed=seed))
    tdm = run_simulation(program, make_config(runtime="tdm", num_cores=4, seed=seed))
    assert tdm.total_cycles <= software.total_cycles * 1.05
