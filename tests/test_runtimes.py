"""Runtime-system models driven through full (small) simulations."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.runtime.cost_model import RuntimeCostModel
from repro.runtime.factory import available_runtimes, create_runtime
from repro.runtime.ready_pool import ReadyPool
from repro.runtime.tracker import MatchResult
from repro.schedulers import FifoScheduler
from repro.sim.engine import Engine
from repro.sim.machine import run_simulation
from repro.sim.noc import NocModel
from repro.sim.timeline import Phase
from repro.config import CostModelConfig

from tests.util import diamond_program, make_config

RUNTIMES = ("software", "tdm", "carbon", "task_superscalar")


class TestFactory:
    def test_available_runtimes(self):
        assert set(available_runtimes()) == set(RUNTIMES)

    def test_create_each_runtime(self):
        engine = Engine()
        noc = NocModel(num_cores=8)
        for name in RUNTIMES:
            runtime = create_runtime(make_config(runtime=name), engine, noc)
            assert runtime.name == name

    def test_unknown_runtime_rejected(self):
        config = dataclasses.replace(make_config(), runtime="software")
        object.__setattr__(config, "runtime", "bogus")
        with pytest.raises(ConfigurationError):
            create_runtime(config, Engine(), NocModel(num_cores=8))

    def test_scheduler_honouring_flags(self):
        engine = Engine()
        noc = NocModel(num_cores=8)
        assert create_runtime(make_config(runtime="software"), engine, noc).honors_scheduler
        assert create_runtime(make_config(runtime="tdm"), engine, noc).honors_scheduler
        assert not create_runtime(make_config(runtime="carbon"), engine, noc).honors_scheduler
        assert not create_runtime(
            make_config(runtime="task_superscalar"), engine, noc
        ).honors_scheduler

    def test_dmu_presence(self):
        engine = Engine()
        noc = NocModel(num_cores=8)
        assert create_runtime(make_config(runtime="software"), engine, noc).dmu is None
        assert create_runtime(make_config(runtime="tdm"), engine, noc).dmu is not None


class TestCostModel:
    def test_software_cost_grows_with_matching_work(self):
        costs = RuntimeCostModel(CostModelConfig())
        cheap = MatchResult(1, 0, 0, 0, True)
        expensive = MatchResult(4, 10, 3, 8, False)
        assert costs.sw_creation_cycles(expensive) > costs.sw_creation_cycles(cheap)

    def test_lookup_plus_commit_equals_total(self):
        costs = RuntimeCostModel(CostModelConfig())
        match = MatchResult(3, 5, 2, 4, False)
        assert costs.sw_dependence_cycles(match) == (
            costs.sw_dependence_lookup_cycles(3) + costs.sw_dependence_commit_cycles(match)
        )

    def test_tdm_creation_side_cheaper_than_software(self):
        costs = RuntimeCostModel(CostModelConfig())
        match = MatchResult(3, 4, 2, 4, False)
        assert costs.tdm_task_alloc_cycles() < costs.sw_creation_cycles(match)

    def test_finish_cost_grows_with_successors(self):
        costs = RuntimeCostModel(CostModelConfig())
        assert costs.sw_finish_cycles(10) > costs.sw_finish_cycles(0)


class TestReadyPool:
    def test_push_pop_statistics(self):
        pool = ReadyPool(FifoScheduler())
        pool.push("a", creation_seq=0)
        pool.push("b", creation_seq=1)
        assert len(pool) == 2 and pool.peak_size == 2
        assert pool.pop(0).task == "a"
        assert pool.pop(0).task == "b"
        assert pool.pop(0) is None
        assert pool.total_pops == 2 and pool.failed_pops == 1

    def test_ready_seq_monotonic(self):
        pool = ReadyPool(FifoScheduler())
        first = pool.push("a", creation_seq=5)
        second = pool.push("b", creation_seq=1)
        assert second.ready_seq > first.ready_seq


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestEndToEnd:
    def test_diamond_executes_all_tasks(self, runtime):
        result = run_simulation(diamond_program(), make_config(runtime=runtime))
        assert result.num_tasks_executed == 4
        assert result.total_cycles > 0
        assert result.runtime_stats["tasks_created"] == 4
        assert result.runtime_stats["tasks_finished"] == 4

    def test_diamond_respects_dependences(self, runtime):
        result = run_simulation(diamond_program(), make_config(runtime=runtime))
        by_name = {task.name: task for task in result.task_instances}
        assert by_name["B"].start_cycle >= by_name["A"].finish_cycle
        assert by_name["C"].start_cycle >= by_name["A"].finish_cycle
        assert by_name["D"].start_cycle >= by_name["B"].finish_cycle
        assert by_name["D"].start_cycle >= by_name["C"].finish_cycle

    def test_middle_tasks_overlap(self, runtime):
        """B and C are independent and should run concurrently on >1 core."""
        result = run_simulation(diamond_program(work_us=500.0), make_config(runtime=runtime))
        by_name = {task.name: task for task in result.task_instances}
        b, c = by_name["B"], by_name["C"]
        assert b.start_cycle < c.finish_cycle and c.start_cycle < b.finish_cycle

    def test_timeline_covers_all_phases(self, runtime):
        result = run_simulation(diamond_program(), make_config(runtime=runtime))
        totals = result.timeline.totals()
        assert totals[Phase.EXEC] > 0
        assert totals[Phase.DEPS] > 0

    def test_energy_report_positive(self, runtime):
        result = run_simulation(diamond_program(), make_config(runtime=runtime))
        assert result.energy.total_energy_mj > 0
        assert result.edp > 0


class TestRuntimeOverheadOrdering:
    def test_tdm_spends_less_creation_time_than_software(self, small_chain_program):
        software = run_simulation(small_chain_program, make_config(runtime="software"))
        tdm = run_simulation(small_chain_program, make_config(runtime="tdm"))
        sw_deps = software.timeline.threads[0].totals[Phase.DEPS]
        tdm_deps = tdm.timeline.threads[0].totals[Phase.DEPS]
        assert tdm_deps < sw_deps

    def test_dmu_stats_only_present_for_hardware_runtimes(self, diamond):
        software = run_simulation(diamond, make_config(runtime="software"))
        tdm = run_simulation(diamond, make_config(runtime="tdm"))
        assert software.dmu_stats is None
        assert tdm.dmu_stats is not None
        assert tdm.dmu_stats.tasks_created == 4
        assert tdm.dmu_stats.tasks_finished == 4

    def test_dmu_drained_at_end_of_run(self, small_random_program):
        result = run_simulation(small_random_program, make_config(runtime="tdm"))
        assert result.dmu_stats.tasks_created == result.dmu_stats.tasks_finished

    def test_carbon_has_no_scheduling_lock_traffic(self, small_chain_program):
        carbon = run_simulation(small_chain_program, make_config(runtime="carbon"))
        software = run_simulation(small_chain_program, make_config(runtime="software"))
        assert carbon.runtime_stats["lock_acquisitions"] < software.runtime_stats["lock_acquisitions"]


class TestMultiRegionAndSchedulers:
    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_fork_join_regions_respect_barriers(self, runtime, small_fork_join_program):
        result = run_simulation(small_fork_join_program, make_config(runtime=runtime))
        assert result.num_tasks_executed == small_fork_join_program.num_tasks

    @pytest.mark.parametrize("scheduler", ["fifo", "lifo", "locality", "successor", "age"])
    def test_every_scheduler_completes_with_tdm(self, scheduler, small_random_program):
        config = make_config(runtime="tdm", scheduler=scheduler)
        result = run_simulation(small_random_program, config)
        assert result.num_tasks_executed == small_random_program.num_tasks
        assert result.scheduler_name == scheduler

    @pytest.mark.parametrize("scheduler", ["fifo", "age"])
    def test_every_scheduler_completes_with_software(self, scheduler, small_random_program):
        config = make_config(runtime="software", scheduler=scheduler)
        result = run_simulation(small_random_program, config)
        assert result.num_tasks_executed == small_random_program.num_tasks
