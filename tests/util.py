"""Plain (non-fixture) helpers shared by test modules."""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Optional, Sequence, Tuple

from repro.config import ChipConfig, CoreConfig, DMUConfig, SimulationConfig
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import run_experiment
from repro.experiments.shard import ShardManifest, ShardSpec, merge_shards, run_shard_worker
from repro.runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    single_region_program,
)


def make_config(
    runtime: str = "tdm",
    scheduler: str = "fifo",
    num_cores: int = 8,
    dmu: DMUConfig | None = None,
    **overrides,
) -> SimulationConfig:
    """A validated small-chip configuration for tests."""
    config = SimulationConfig(
        chip=ChipConfig(num_cores=num_cores, core=CoreConfig()),
        runtime=runtime,
        scheduler=scheduler,
    )
    if dmu is not None:
        config = dataclasses.replace(config, dmu=dmu)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config.validated()


def experiment_output(
    experiment: str,
    scale: float,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
    backend: Optional[str] = None,
) -> Tuple[str, str]:
    """Render one experiment and return its (CSV, Markdown) byte content.

    The differential determinism harness compares these strings across
    serial, ``jobs > 1``, sharded split-and-merge and pure-vs-accel backend
    executions — they must match byte for byte.  ``backend`` builds the
    default runner with that DMU storage backend (ignored when ``runner``
    is given).
    """
    runner = runner or SimulationRunner(scale=scale, backend=backend)
    result = run_experiment(experiment, scale=scale, benchmarks=benchmarks, runner=runner)
    return result.to_csv(), result.to_markdown()


def run_all_shards(
    experiment: str,
    scale: float,
    benchmarks: Optional[Sequence[str]],
    shard_root: pathlib.Path,
    count: int,
    strategy: str = "modulo",
    steal: bool = False,
    shared: bool = False,
    backend: Optional[str] = None,
) -> list[ShardManifest]:
    """Simulate every shard of an experiment into per-shard cache dirs.

    Each shard gets a *fresh* runner — the same isolation N distinct hosts
    would have — persisting to ``<shard_root>/shard<i>``, or to one
    ``<shard_root>/shared`` directory with ``shared=True`` (the layout a
    shared-filesystem or work-stealing campaign requires).
    """
    manifests = []
    for index in range(1, count + 1):
        cache_dir = shard_root / ("shared" if shared else f"shard{index}")
        runner = SimulationRunner(scale=scale, cache_dir=cache_dir, backend=backend)
        manifests.append(
            run_shard_worker(
                experiment,
                ShardSpec(index, count),
                runner,
                benchmarks=benchmarks,
                strategy=strategy,
                steal=steal,
            )
        )
    return manifests


def merge_and_render(
    experiment: str,
    scale: float,
    benchmarks: Optional[Sequence[str]],
    shard_root: pathlib.Path,
    count: int,
    sources: Optional[Sequence[pathlib.Path]] = None,
) -> Tuple[str, str, SimulationRunner]:
    """Union the shard caches, verify completeness, render from the union.

    Returns (CSV, Markdown, the merge runner) so callers can additionally
    assert that rendering simulated nothing.  ``sources`` overrides the
    default per-shard directory layout (e.g. one shared cache directory).
    """
    if sources is None:
        sources = [shard_root / f"shard{index}" for index in range(1, count + 1)]
    runner = SimulationRunner(scale=scale, cache_dir=shard_root / "merged")
    merge_shards(experiment, sources, runner, benchmarks=benchmarks).verify()
    csv, markdown = experiment_output(experiment, scale, benchmarks, runner=runner)
    return csv, markdown, runner


def diamond_program(work_us: float = 50.0):
    """A four-task diamond: A -> (B, C) -> D, expressed through data blocks."""
    block = 4096
    a_out = 0x1000_0000
    b_out = 0x2000_0000
    c_out = 0x3000_0000
    tasks = [
        TaskDefinition(
            uid=0,
            name="A",
            kind="source",
            work_us=work_us,
            dependences=(DependenceSpec(a_out, block, AccessMode.OUT),),
        ),
        TaskDefinition(
            uid=1,
            name="B",
            kind="middle",
            work_us=work_us,
            dependences=(
                DependenceSpec(a_out, block, AccessMode.IN),
                DependenceSpec(b_out, block, AccessMode.OUT),
            ),
        ),
        TaskDefinition(
            uid=2,
            name="C",
            kind="middle",
            work_us=work_us,
            dependences=(
                DependenceSpec(a_out, block, AccessMode.IN),
                DependenceSpec(c_out, block, AccessMode.OUT),
            ),
        ),
        TaskDefinition(
            uid=3,
            name="D",
            kind="sink",
            work_us=work_us,
            dependences=(
                DependenceSpec(b_out, block, AccessMode.IN),
                DependenceSpec(c_out, block, AccessMode.IN),
            ),
        ),
    ]
    return single_region_program("diamond", tasks)
