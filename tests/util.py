"""Plain (non-fixture) helpers shared by test modules."""

from __future__ import annotations

import dataclasses

from repro.config import ChipConfig, CoreConfig, DMUConfig, SimulationConfig
from repro.runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    single_region_program,
)


def make_config(
    runtime: str = "tdm",
    scheduler: str = "fifo",
    num_cores: int = 8,
    dmu: DMUConfig | None = None,
    **overrides,
) -> SimulationConfig:
    """A validated small-chip configuration for tests."""
    config = SimulationConfig(
        chip=ChipConfig(num_cores=num_cores, core=CoreConfig()),
        runtime=runtime,
        scheduler=scheduler,
    )
    if dmu is not None:
        config = dataclasses.replace(config, dmu=dmu)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config.validated()


def diamond_program(work_us: float = 50.0):
    """A four-task diamond: A -> (B, C) -> D, expressed through data blocks."""
    block = 4096
    a_out = 0x1000_0000
    b_out = 0x2000_0000
    c_out = 0x3000_0000
    tasks = [
        TaskDefinition(
            uid=0,
            name="A",
            kind="source",
            work_us=work_us,
            dependences=(DependenceSpec(a_out, block, AccessMode.OUT),),
        ),
        TaskDefinition(
            uid=1,
            name="B",
            kind="middle",
            work_us=work_us,
            dependences=(
                DependenceSpec(a_out, block, AccessMode.IN),
                DependenceSpec(b_out, block, AccessMode.OUT),
            ),
        ),
        TaskDefinition(
            uid=2,
            name="C",
            kind="middle",
            work_us=work_us,
            dependences=(
                DependenceSpec(a_out, block, AccessMode.IN),
                DependenceSpec(c_out, block, AccessMode.OUT),
            ),
        ),
        TaskDefinition(
            uid=3,
            name="D",
            kind="sink",
            work_us=work_us,
            dependences=(
                DependenceSpec(b_out, block, AccessMode.IN),
                DependenceSpec(c_out, block, AccessMode.IN),
            ),
        ),
    ]
    return single_region_program("diamond", tasks)
