"""Discrete-event kernel: engine, processes, events."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.events import NotificationEvent, Timeout, WaitEvent


def test_timeout_advances_clock():
    engine = Engine()
    log = []

    def body():
        yield Timeout(10)
        log.append(engine.now)
        yield Timeout(5)
        log.append(engine.now)

    engine.process(body(), name="p")
    engine.run()
    assert log == [10, 15]


def test_process_return_value_captured():
    engine = Engine()

    def body():
        yield Timeout(1)
        return 42

    process = engine.process(body(), name="p")
    engine.run()
    assert process.finished
    assert process.result == 42


def test_same_time_events_processed_in_scheduling_order():
    engine = Engine()
    order = []

    def body(tag):
        yield Timeout(10)
        order.append(tag)

    for tag in ("a", "b", "c"):
        engine.process(body(tag), name=tag)
    engine.run()
    assert order == ["a", "b", "c"]


def test_determinism_two_identical_runs():
    def build_and_run():
        engine = Engine()
        trace = []

        def worker(tag, delay):
            yield Timeout(delay)
            trace.append((engine.now, tag))
            yield Timeout(delay * 2)
            trace.append((engine.now, tag))

        for index in range(5):
            engine.process(worker(f"w{index}", index + 1), name=f"w{index}")
        engine.run()
        return trace

    assert build_and_run() == build_and_run()


def test_wait_event_resumes_with_value():
    engine = Engine()
    event = engine.event("data")
    seen = []

    def waiter():
        value = yield WaitEvent(event)
        seen.append(value)

    def producer():
        yield Timeout(30)
        event.trigger("payload")

    engine.process(waiter(), name="waiter")
    engine.process(producer(), name="producer")
    engine.run()
    assert seen == ["payload"]
    assert engine.now == 30


def test_waiting_on_already_triggered_event_resumes_immediately():
    engine = Engine()
    event = engine.event("done")
    event.trigger("early")
    seen = []

    def waiter():
        value = yield WaitEvent(event)
        seen.append((engine.now, value))

    engine.process(waiter(), name="waiter")
    engine.run()
    assert seen == [(0, "early")]


def test_event_trigger_is_idempotent():
    engine = Engine()
    event = engine.event("once")
    event.trigger(1)
    event.trigger(2)
    assert event.value == 1


def test_event_callback_invoked():
    engine = Engine()
    event = engine.event("cb")
    values = []
    event.add_callback(values.append)
    event.trigger("x")
    assert values == ["x"]
    # Callback added after trigger fires immediately.
    event.add_callback(values.append)
    assert values == ["x", "x"]


def test_notification_event_rearms():
    engine = Engine()
    channel = NotificationEvent(engine, "notify")
    woken = []

    def waiter(tag):
        target = channel.wait_target()
        yield WaitEvent(target)
        woken.append((tag, engine.now))
        target = channel.wait_target()
        yield WaitEvent(target)
        woken.append((tag, engine.now))

    def notifier():
        yield Timeout(5)
        channel.notify_all()
        yield Timeout(5)
        channel.notify_all()

    engine.process(waiter("w"), name="w")
    engine.process(notifier(), name="n")
    engine.run()
    assert woken == [("w", 5), ("w", 10)]


def test_deadlock_detection():
    engine = Engine()
    event = engine.event("never")

    def stuck():
        yield WaitEvent(event)

    engine.process(stuck(), name="stuck")
    with pytest.raises(DeadlockError):
        engine.run()


def test_run_until_stops_early():
    engine = Engine()
    log = []

    def body():
        yield Timeout(100)
        log.append("late")

    engine.process(body(), name="p")
    now = engine.run(until=50)
    assert now == 50
    assert log == []


def test_run_all_enforces_cycle_budget():
    engine = Engine()

    def body():
        yield Timeout(1000)

    engine.process(body(), name="p")
    with pytest.raises(SimulationError):
        engine.run_all(max_cycles=10)


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1)


def test_schedule_in_past_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-5, lambda: None)


def test_fractional_delays_round_half_up():
    # int(delay) used to truncate: a 2.7-cycle cost lost 0.7 cycles per event.
    engine = Engine()
    fired_at = []
    engine.schedule(2.7, lambda: fired_at.append(engine.now))
    engine.schedule(0.5, lambda: fired_at.append(engine.now))
    engine.schedule(0.4, lambda: fired_at.append(engine.now))
    engine.run()
    assert sorted(fired_at) == [0, 1, 3]


def test_fractional_timeout_rounds_half_up():
    assert Timeout(2.7).cycles == 3
    assert Timeout(2.2).cycles == 2
    assert Timeout(0.5).cycles == 1
    assert Timeout(7).cycles == 7


def test_negative_after_rounding_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(-0.6, lambda: None)
    # -0.4 rounds half-up to 0: schedulable "now", not in the past.
    engine.schedule(-0.4, lambda: None)
    with pytest.raises(ValueError):
        Timeout(-0.6)


def test_exception_in_process_is_wrapped():
    engine = Engine()

    def bad():
        yield Timeout(1)
        raise RuntimeError("boom")

    engine.process(bad(), name="bad")
    with pytest.raises(SimulationError, match="bad"):
        engine.run()


def test_unknown_command_rejected():
    engine = Engine()

    def body():
        yield "not a command"

    engine.process(body(), name="p")
    with pytest.raises(SimulationError, match="unknown command"):
        engine.run()
