"""Guards for the documentation subsystem.

Two ways docs rot silently, two checks:

* the generated CLI reference (``docs/cli.md``) drifts from the actual
  ``tdm-repro`` argparse tree — regenerated here and compared byte-for-byte;
* relative links in ``docs/`` or the README point at files that moved or
  never existed.

The CI ``docs`` job runs exactly these tests (plus the quickstart smoke in
``test_quickstart.py``), so a flag rename or a moved page fails the build,
not a reader.
"""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
SCRIPT = REPO_ROOT / "scripts" / "gen_cli_docs.py"

#: Markdown inline links: [text](target).  Images and reference-style links
#: are not used in this repo's docs.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


class TestGeneratedCliReference:
    def test_cli_reference_exists_and_is_marked_generated(self):
        page = (DOCS / "cli.md").read_text(encoding="utf-8")
        assert "GENERATED FILE" in page, "docs/cli.md must carry the generated marker"
        assert "tdm-repro" in page

    def test_cli_reference_matches_argparse_tree(self):
        """Regenerate the page in a subprocess and fail on drift."""
        proc = subprocess.run(
            [sys.executable, str(SCRIPT), "--check"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, (
            "docs/cli.md drifted from src/repro/experiments/cli.py:\n"
            f"{proc.stdout}{proc.stderr}"
        )

    def test_every_cli_option_is_documented(self):
        """Belt and braces: each parser flag appears in the committed page."""
        sys.path.insert(0, str(REPO_ROOT / "src"))
        try:
            from repro.experiments.cli import build_parser
        finally:
            sys.path.pop(0)
        page = (DOCS / "cli.md").read_text(encoding="utf-8")
        for action in build_parser()._actions:
            for flag in action.option_strings:
                assert f"`{flag}`" in page, f"{flag} missing from docs/cli.md"


class TestDocLinks:
    def _documents(self):
        docs = sorted(DOCS.glob("*.md"))
        assert docs, "docs/ must contain the documentation pages"
        return [REPO_ROOT / "README.md", *docs]

    def test_relative_links_resolve(self):
        broken = []
        for document in self._documents():
            text = document.read_text(encoding="utf-8")
            for target in _LINK.findall(text):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (document.parent / path).resolve()
                if not resolved.exists():
                    broken.append(f"{document.relative_to(REPO_ROOT)} -> {target}")
        assert not broken, "broken relative links:\n" + "\n".join(broken)

    def test_docs_reference_real_modules(self):
        """Backtick-quoted repo paths in the docs must exist on disk."""
        pattern = re.compile(r"`((?:src|scripts|tests|docs|benchmarks)/[\w./*-]+)`")
        missing = []
        for document in self._documents():
            for path in pattern.findall(document.read_text(encoding="utf-8")):
                if "*" in path:
                    if not list(REPO_ROOT.glob(path)):
                        missing.append(f"{document.name}: {path}")
                elif not (REPO_ROOT / path).exists():
                    missing.append(f"{document.name}: {path}")
        assert not missing, "docs reference nonexistent paths:\n" + "\n".join(missing)

    def test_required_pages_exist(self):
        for page in ("architecture.md", "determinism.md", "figures.md", "cli.md", "scenarios.md", "reliability.md"):
            assert (DOCS / page).exists(), f"docs/{page} is part of the docs contract"
