"""Software dependence tracker (last-writer / readers semantics)."""

import pytest

from repro.errors import ValidationError
from repro.runtime.task import AccessMode, DependenceSpec, TaskDefinition, TaskInstance
from repro.runtime.tracker import DependenceTracker

BLOCK = 4096
X = 0x1000_0000
Y = 0x2000_0000


def make_task(uid, deps):
    definition = TaskDefinition(
        uid=uid,
        name=f"t{uid}",
        kind="test",
        work_us=1.0,
        dependences=tuple(DependenceSpec(addr, BLOCK, mode) for addr, mode in deps),
    )
    return TaskInstance(definition, descriptor_address=0x8000 + uid * 0x100)


class TestEdges:
    def test_raw_edge(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT)])
        reader = make_task(1, [(X, AccessMode.IN)])
        tracker.register_task(writer)
        match = tracker.register_task(reader)
        assert reader in writer.successors
        assert reader.num_predecessors == 1
        assert match.writers_matched == 1
        assert not match.initially_ready

    def test_war_edge(self):
        tracker = DependenceTracker()
        reader = make_task(0, [(X, AccessMode.IN)])
        writer = make_task(1, [(X, AccessMode.OUT)])
        tracker.register_task(reader)
        match = tracker.register_task(writer)
        assert writer in reader.successors
        assert match.readers_traversed == 1

    def test_waw_edge(self):
        tracker = DependenceTracker()
        first = make_task(0, [(X, AccessMode.OUT)])
        second = make_task(1, [(X, AccessMode.OUT)])
        tracker.register_task(first)
        tracker.register_task(second)
        assert second in first.successors

    def test_inout_behaves_as_read_and_write(self):
        tracker = DependenceTracker()
        a = make_task(0, [(X, AccessMode.INOUT)])
        b = make_task(1, [(X, AccessMode.INOUT)])
        c = make_task(2, [(X, AccessMode.INOUT)])
        for task in (a, b, c):
            tracker.register_task(task)
        assert b in a.successors and c in b.successors
        assert c not in a.successors  # chained, not fanned out

    def test_independent_tasks_have_no_edges(self):
        tracker = DependenceTracker()
        a = make_task(0, [(X, AccessMode.IN)])
        b = make_task(1, [(Y, AccessMode.IN)])
        assert tracker.register_task(a).initially_ready
        assert tracker.register_task(b).initially_ready
        assert a.successors == [] and b.successors == []

    def test_readers_do_not_depend_on_each_other(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT)])
        r1 = make_task(1, [(X, AccessMode.IN)])
        r2 = make_task(2, [(X, AccessMode.IN)])
        for task in (writer, r1, r2):
            tracker.register_task(task)
        assert r2 not in r1.successors
        assert writer.num_successors == 2


class TestFinish:
    def test_finish_wakes_dependent(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT)])
        reader = make_task(1, [(X, AccessMode.IN)])
        tracker.register_task(writer)
        tracker.register_task(reader)
        newly_ready = tracker.finish_task(writer)
        assert newly_ready == [reader]

    def test_finish_cleans_dependence_records(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT)])
        tracker.register_task(writer)
        tracker.finish_task(writer)
        assert tracker.live_dependences == 0
        assert tracker.last_writer_of(X) is None

    def test_records_survive_while_readers_remain(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT)])
        reader = make_task(1, [(X, AccessMode.IN)])
        tracker.register_task(writer)
        tracker.register_task(reader)
        tracker.finish_task(writer)
        assert tracker.live_dependences == 1
        assert tracker.readers_of(X) == [reader]
        tracker.finish_task(reader)
        assert tracker.live_dependences == 0

    def test_finished_writer_creates_no_edge_for_later_tasks(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT)])
        tracker.register_task(writer)
        tracker.finish_task(writer)
        late_reader = make_task(1, [(X, AccessMode.IN)])
        match = tracker.register_task(late_reader)
        assert match.initially_ready
        assert late_reader.num_predecessors == 0

    def test_double_finish_rejected(self):
        tracker = DependenceTracker()
        task = make_task(0, [(X, AccessMode.OUT)])
        tracker.register_task(task)
        tracker.finish_task(task)
        task.mark_finished(0)
        with pytest.raises(ValidationError):
            tracker.finish_task(task)

    def test_war_chain_wakes_writer_after_all_readers(self):
        tracker = DependenceTracker()
        w0 = make_task(0, [(X, AccessMode.OUT)])
        r1 = make_task(1, [(X, AccessMode.IN)])
        r2 = make_task(2, [(X, AccessMode.IN)])
        w3 = make_task(3, [(X, AccessMode.OUT)])
        for task in (w0, r1, r2, w3):
            tracker.register_task(task)
        assert tracker.finish_task(w0) == [r1, r2]
        assert tracker.finish_task(r1) == []
        assert tracker.finish_task(r2) == [w3]


class TestStatistics:
    def test_counters(self):
        tracker = DependenceTracker()
        writer = make_task(0, [(X, AccessMode.OUT), (Y, AccessMode.OUT)])
        reader = make_task(1, [(X, AccessMode.IN), (Y, AccessMode.IN)])
        tracker.register_task(writer)
        tracker.register_task(reader)
        assert tracker.registered_tasks == 2
        assert tracker.total_successor_links == 2
        assert tracker.max_live_dependences == 2
