"""Property-based tests of the shard partition, plus pinned canonical keys.

The shard layer's whole correctness argument rests on two facts:

1. :func:`shard_of` is a *partition*: every canonical key lands in exactly
   one shard, for any shard count, regardless of how (or in what order) a
   plan enumerated it.  Hypothesis drives that over random key sets.
2. :func:`canonical_run_key` is a *stable contract*: hosts built from
   different checkouts agree on keys, and cached corpora stay valid across
   PRs.  The golden values pinned here fail loudly on any accidental
   key-schema drift (new hashed field, float formatting change, version
   bump, ...).  If a change is intentional, bump ``CACHE_FORMAT_VERSION``,
   regenerate these constants, and note that old caches resimulate.
"""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_paper_config
from repro.errors import ExperimentError
from repro.experiments.cache import canonical_run_key
from repro.experiments.campaign import CampaignEngine, RunRequest
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import resolve_plan
from repro.experiments.shard import ShardPlan, ShardSpec, lpt_assignment, shard_of
from repro.runtime.cost_model import CampaignCostModel

hex_keys = st.text(alphabet="0123456789abcdef", min_size=64, max_size=64)
key_sets = st.lists(hex_keys, min_size=1, max_size=64, unique=True)
shard_counts = st.integers(min_value=1, max_value=16)
cost_values = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False)
cost_maps = st.dictionaries(hex_keys, cost_values, min_size=1, max_size=48)


def _runs(keys):
    """Lightweight stand-ins for ResolvedRun (ShardPlan only reads ``.key``)."""
    return [SimpleNamespace(key=key) for key in keys]


class _TableModel:
    """A cost model that is just a lookup table (duck-typed ``predict``)."""

    def __init__(self, costs):
        self.costs = dict(costs)

    def predict(self, item):
        return self.costs[item.key]


class TestPartitionProperties:
    @given(keys=key_sets, count=shard_counts)
    @settings(max_examples=200, deadline=None)
    def test_every_key_lands_in_exactly_one_shard(self, keys, count):
        plan = ShardPlan(_runs(keys), count)
        slices = [plan.shard(ShardSpec(index, count)) for index in range(1, count + 1)]
        # Disjoint cover: the concatenation is a permutation of the key set …
        combined = [item.key for piece in slices for item in piece]
        assert sorted(combined) == sorted(keys)
        # … and each key's owner matches the pure hash function.
        for index, piece in enumerate(slices, start=1):
            for item in piece:
                assert shard_of(item.key, count) == index - 1

    @given(keys=key_sets, count=shard_counts, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_assignment_is_stable_under_plan_reordering(self, keys, count, seed):
        shuffled = list(keys)
        random.Random(seed).shuffle(shuffled)
        original = ShardPlan(_runs(keys), count)
        reordered = ShardPlan(_runs(shuffled), count)
        assert original.assignment() == reordered.assignment()
        assert original.keys() == reordered.keys()  # both key-sorted

    @given(keys=key_sets, count=shard_counts)
    @settings(max_examples=100, deadline=None)
    def test_duplicates_collapse(self, keys, count):
        plan = ShardPlan(_runs(keys + keys), count)
        assert len(plan) == len(keys)

    @given(key=hex_keys, count=shard_counts)
    @settings(max_examples=200, deadline=None)
    def test_exactly_one_spec_owns_each_key(self, key, count):
        owners = [index for index in range(1, count + 1) if ShardSpec(index, count).owns(key)]
        assert len(owners) == 1
        assert owners[0] == shard_of(key, count) + 1


class TestCostStrategyProperties:
    """The ``strategy="cost"`` partition obeys the same laws as modulo."""

    @given(costs=cost_maps, count=shard_counts)
    @settings(max_examples=200, deadline=None)
    def test_cost_partition_is_a_disjoint_cover(self, costs, count):
        plan = ShardPlan(_runs(costs), count, strategy="cost", cost_model=_TableModel(costs))
        slices = [plan.shard(ShardSpec(index, count)) for index in range(1, count + 1)]
        combined = [item.key for piece in slices for item in piece]
        assert sorted(combined) == sorted(costs)
        # Per-shard loads tile the total predicted cost exactly.
        assert sum(plan.shard_loads()) == pytest.approx(sum(costs.values()))

    @given(costs=cost_maps, count=shard_counts, seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_cost_assignment_is_stable_under_plan_reordering(self, costs, count, seed):
        shuffled = list(costs)
        random.Random(seed).shuffle(shuffled)
        model = _TableModel(costs)
        original = ShardPlan(_runs(costs), count, strategy="cost", cost_model=model)
        reordered = ShardPlan(_runs(shuffled), count, strategy="cost", cost_model=model)
        assert original.assignment() == reordered.assignment()
        assert original.keys() == reordered.keys()

    @given(keys=key_sets, count=shard_counts, cost=cost_values)
    @settings(max_examples=100, deadline=None)
    def test_equal_costs_degenerate_to_round_robin_over_sorted_keys(self, keys, count, cost):
        model = _TableModel({key: cost for key in keys})
        plan = ShardPlan(_runs(keys), count, strategy="cost", cost_model=model)
        assignment = plan.assignment()
        for position, key in enumerate(sorted(keys)):
            assert assignment[key] == (position % count) + 1

    @given(costs=cost_maps, count=shard_counts)
    @settings(max_examples=100, deadline=None)
    def test_lpt_places_keys_in_decreasing_cost_order(self, costs, count):
        # The first ``count`` keys by (cost desc, key) each open their own
        # bin — the defining LPT move, and the reason one giant key can
        # never share a bin with the runner-up while an empty bin exists.
        assignment = lpt_assignment(costs, count)
        ordered = sorted(costs, key=lambda key: (-costs[key], key))
        heads = ordered[: count]
        assert sorted(assignment[key] for key in heads) == list(range(len(heads)))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ExperimentError, match="unknown shard strategy"):
            ShardPlan(_runs(["ab" * 32]), 2, strategy="random")

    def test_modulo_plans_ignore_the_cost_model_for_ownership(self):
        # A model may still be attached (dry-run audits price modulo bins),
        # but ownership must stay the pure hash function.
        keys = [f"{index:064x}" for index in range(8)]
        costs = {key: float(index + 1) for index, key in enumerate(keys)}
        plan = ShardPlan(_runs(keys), 3, strategy="modulo", cost_model=_TableModel(costs))
        assert plan.assignment() == {key: shard_of(key, 3) + 1 for key in keys}
        assert plan.predicted_cost(keys[4]) == 5.0


class TestCostStrategyBalancesRealPlans:
    """The acceptance scenario: mixed-cost figures balance better than modulo."""

    def test_figure_07_three_shard_peak_load_drops_under_cost_binning(self):
        runner = SimulationRunner(scale=0.05)
        resolved = resolve_plan("figure_07", runner)
        model = CampaignCostModel(scale=0.05)
        modulo = ShardPlan(resolved, 3, strategy="modulo", cost_model=model)
        cost = ShardPlan(resolved, 3, strategy="cost", cost_model=model)
        assert cost.keys() == modulo.keys()  # same key space, different bins
        assert max(cost.shard_loads()) < max(modulo.shard_loads())
        # And the balanced peak sits within 1% of the ideal mean load.
        mean = sum(cost.shard_loads()) / 3
        assert max(cost.shard_loads()) < 1.01 * mean

    def test_describe_reports_loads_and_every_key(self):
        runner = SimulationRunner(scale=0.05)
        resolved = resolve_plan("figure_10", runner, benchmarks=["blackscholes"])
        plan = ShardPlan(resolved, 2, strategy="cost", cost_model=CampaignCostModel(scale=0.05))
        text = plan.describe("figure_10")
        assert "strategy=cost" in text and "shards=2" in text
        for item in plan.runs:
            assert item.key[:12] in text
        for line in ("shard 1/2", "shard 2/2", "max shard", "mean shard"):
            assert line in text


class TestSpecValidation:
    @pytest.mark.parametrize("text,index,count", [("1/1", 1, 1), ("2/3", 2, 3), ("16/16", 16, 16)])
    def test_parse_round_trip(self, text, index, count):
        spec = ShardSpec.parse(text)
        assert (spec.index, spec.count) == (index, count)
        assert str(spec) == text

    @pytest.mark.parametrize("text", ["", "3", "0/3", "4/3", "-1/3", "1/0", "a/b", "1/3/5"])
    def test_invalid_specs_rejected(self, text):
        with pytest.raises(ExperimentError):
            ShardSpec.parse(text)

    def test_mismatched_spec_rejected_by_plan(self):
        plan = ShardPlan(_runs(["ab" * 32]), 3)
        with pytest.raises(ExperimentError, match="does not match"):
            plan.shard(ShardSpec(1, 4))

    def test_zero_shards_rejected(self):
        with pytest.raises(ExperimentError):
            ShardPlan(_runs(["ab" * 32]), 0)
        with pytest.raises(ExperimentError):
            shard_of("ab" * 32, 0)


class TestCanonicalKeyGoldenValues:
    """Pinned key digests: the cross-host / cross-PR key-schema contract."""

    def test_workload_parameter_keys(self):
        config = default_paper_config()
        assert (
            canonical_run_key(config, "cholesky", 0.1)
            == "7cdb155fdc5f0c6703da6dbf27b25907555e5220e302d037847791a08d6ec3ec"
        )
        assert (
            canonical_run_key(config, "cholesky", 0.1, granularity=8)
            == "4a376a11ada6195c228c623fde3bef9901e827a96ec87acf2b4df763346f68b0"
        )
        assert (
            canonical_run_key(config, "qr", 1.0, granularity_runtime="tdm", seed=3)
            == "f500931c5262dcd4048255f5a8568707ba1b69001602bad6eee0dc0695fe4b1b"
        )

    def test_resolved_request_keys(self):
        engine = CampaignEngine(scale=0.1)
        assert (
            engine.resolve(RunRequest("blackscholes", "tdm", "lifo")).key
            == "866c126c467ad8a9a7698fe4dd6bdaeb61f0b62a62a462610a902c360dec3f31"
        )
        assert (
            engine.resolve(RunRequest("histogram", "software")).key
            == "6ce3873d2f63a7ed0a40e1956c5becafbf84d53694f463fb67a01e6ce0ca2518"
        )
