"""TAT/DAT alias tables: allocation, conflicts, dynamic index-bit selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alias_table import AliasTable, dat_index_start_bit
from repro.errors import DMUStructureFullError


class TestIndexStartBit:
    def test_power_of_two_sizes(self):
        assert dat_index_start_bit(4096) == 12
        assert dat_index_start_bit(64 * 1024) == 16

    def test_small_sizes_fall_back_to_bit_zero(self):
        assert dat_index_start_bit(1) == 0
        assert dat_index_start_bit(0) == 0

    def test_non_power_of_two_rounds_down(self):
        assert dat_index_start_bit(5000) == 12


def make_table(entries=64, associativity=4, dynamic=False, start_bit=0):
    return AliasTable(
        "DAT", entries, associativity, index_start_bit=start_bit, dynamic_index=dynamic
    )


class TestAllocation:
    def test_allocate_and_lookup(self):
        table = make_table()
        internal = table.allocate(0xABC000, size=4096)
        assert table.lookup(0xABC000) == internal
        assert 0xABC000 in table
        assert len(table) == 1

    def test_allocate_same_address_returns_same_id(self):
        table = make_table()
        first = table.allocate(0x1000)
        second = table.allocate(0x1000)
        assert first == second
        assert len(table) == 1

    def test_ids_unique(self):
        table = make_table()
        # Consecutive addresses spread across sets with the static bit-0 index.
        ids = {table.allocate(0x1000 + i) for i in range(32)}
        assert len(ids) == 32

    def test_release_recycles_id(self):
        table = make_table()
        internal = table.allocate(0x1000)
        table.release(0x1000)
        assert table.lookup(0x1000) is None
        assert len(table) == 0
        # Freed IDs can be reused by later allocations.
        again = table.allocate(0x2000)
        assert again == internal

    def test_release_unknown_address_rejected(self):
        table = make_table()
        with pytest.raises(KeyError):
            table.release(0xDEAD)

    def test_capacity_exhaustion_counted(self):
        table = make_table(entries=8, associativity=8)
        for index in range(8):
            table.allocate(0x1000 * (index + 1))
        with pytest.raises(DMUStructureFullError):
            table.allocate(0x9000)
        assert table.capacity_rejections == 1

    def test_conflict_exhaustion_counted(self):
        # 4 sets x 2 ways; all addresses map to set 0 with start bit 0 and a
        # stride that is a multiple of num_sets.
        table = make_table(entries=8, associativity=2)
        stride = table.num_sets  # keeps (addr >> 0) % num_sets == 0
        table.allocate(stride * 1)
        table.allocate(stride * 2)
        assert table.can_allocate(stride * 3) is False
        with pytest.raises(DMUStructureFullError):
            table.allocate(stride * 3)
        assert table.conflict_rejections == 1
        assert table.free_entries > 0  # capacity remained; it was a conflict

    def test_non_multiple_associativity_rejected(self):
        with pytest.raises(ValueError):
            AliasTable("bad", 10, 4)


class TestDynamicIndexSelection:
    def test_static_low_bits_collapse_to_one_set(self):
        table = make_table(entries=64, associativity=4, dynamic=False, start_bit=0)
        # 4 KB-aligned blocks: low 12 bits identical, stride multiple of set count.
        addresses = [0x100000 + i * 4096 for i in range(4)]
        for address in addresses:
            table.allocate(address, size=4096)
        assert table.occupied_sets() == 1

    def test_dynamic_selection_spreads_blocks(self):
        table = make_table(entries=64, associativity=4, dynamic=True)
        addresses = [0x100000 + i * 4096 for i in range(8)]
        for address in addresses:
            table.allocate(address, size=4096)
        assert table.occupied_sets() == 8

    def test_dynamic_selection_uses_dependence_size(self):
        table = make_table(entries=64, associativity=4, dynamic=True)
        small = table.set_index(0x10000, size=1024)
        large = table.set_index(0x10000, size=64 * 1024)
        # Different sizes select different index bits for the same address.
        assert isinstance(small, int) and isinstance(large, int)
        assert 0 <= small < table.num_sets and 0 <= large < table.num_sets

    def test_occupancy_sampling(self):
        table = make_table(entries=64, associativity=4, dynamic=True)
        table.allocate(0x1000, size=4096)
        table.sample_occupancy()
        table.allocate(0x2000, size=4096)
        table.sample_occupancy()
        assert 1.0 <= table.average_occupied_sets() <= 2.0

    def test_average_occupancy_without_samples_is_zero(self):
        assert make_table().average_occupied_sets() == 0.0


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        addresses=st.lists(
            st.integers(min_value=1, max_value=1 << 40), unique=True, max_size=32
        )
    )
    def test_allocate_release_round_trip(self, addresses):
        table = AliasTable("TAT", 64, 8)
        mapping = {}
        for address in addresses:
            try:
                mapping[address] = table.allocate(address)
            except DMUStructureFullError:
                # A set can legitimately fill up (e.g. nine size-1 addresses
                # that are all multiples of 8 land in the same set of the
                # 8-way table); rejection is correct model behavior, and the
                # round-trip property applies to the accepted addresses.
                continue
        assert len(set(mapping.values())) == len(mapping)
        for address, internal in mapping.items():
            assert table.lookup(address) == internal
            table.release(address)
        assert len(table) == 0
        assert table.free_entries == 64
