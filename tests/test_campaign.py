"""Campaign engine: canonical keys, result caching, parallel equivalence.

The headline regression here: the old ``SimulationRunner._config_token``
omitted several DMU fields, so two configurations differing only in (say)
``tat_associativity`` mapped to the same memo key and sweeps returned stale
results.  The canonical content hash must keep every such pair distinct.
"""

import dataclasses
import json
import warnings

import pytest

from repro.config import DMUConfig, default_paper_config
from repro.errors import ExperimentError
from repro.experiments.cache import ResultCache, canonical_run_key
from repro.experiments.campaign import CampaignEngine, RunRequest
from repro.experiments.common import SimulationRunner
from repro.experiments.registry import run_experiment
from repro.sim.machine import SimulationResult, run_simulation

from tests.util import diamond_program, make_config

SCALE = 0.1

#: DMU fields the legacy token silently dropped, with a distinct second value
#: that keeps the configuration valid.
LEGACY_TOKEN_OMISSIONS = {
    "tat_associativity": 4,
    "dat_associativity": 4,
    "elements_per_list_entry": 4,
    "ready_queue_entries": 4096,
    "instruction_issue_cycles": 16,
    "noc_roundtrip_cycles": 60,
    "unlimited": True,
}


def _key(config, **kwargs):
    defaults = dict(benchmark="cholesky", scale=SCALE, seed=0)
    defaults.update(kwargs)
    return canonical_run_key(config, **defaults)


class TestCanonicalKeyRegression:
    @pytest.mark.parametrize("field_name,other_value", sorted(LEGACY_TOKEN_OMISSIONS.items()))
    def test_legacy_token_collides_but_canonical_key_does_not(self, field_name, other_value):
        """Two configs differing only in a dropped field: the old token is
        identical (the collision), the canonical key is not (the fix)."""
        base = default_paper_config()
        varied = base.with_dmu(
            dataclasses.replace(base.dmu, **{field_name: other_value})
        ).validated()
        assert getattr(base.dmu, field_name) != other_value
        # The legacy token cannot tell the two configurations apart ...
        assert SimulationRunner._config_token(base) == SimulationRunner._config_token(varied)
        # ... the content hash always can.
        assert _key(base) != _key(varied)

    def test_scheduler_kept_for_hardware_runtimes(self):
        """The old RunKey collapsed the scheduler to the runtime name for
        carbon/task_superscalar; the canonical key must not."""
        engine = CampaignEngine(scale=SCALE)
        fifo = engine.resolve(RunRequest("cholesky", "carbon", "fifo"))
        age = engine.resolve(RunRequest("cholesky", "carbon", "age"))
        assert fifo.key != age.key

    def test_seed_is_part_of_the_key(self):
        seeded = CampaignEngine(scale=SCALE, seed=7)
        unseeded = CampaignEngine(scale=SCALE, seed=0)
        request = RunRequest("cholesky", "tdm")
        assert seeded.resolve(request).key != unseeded.resolve(request).key

    def test_explicit_granularity_normalizes_granularity_runtime(self):
        engine = CampaignEngine(scale=SCALE)
        a = engine.resolve(RunRequest("cholesky", "software", granularity=8))
        b = engine.resolve(
            RunRequest("cholesky", "software", granularity=8, granularity_runtime="tdm")
        )
        assert a.key == b.key

    def test_distinct_workloads_distinct_keys(self):
        config = default_paper_config()
        assert _key(config) != _key(config, benchmark="qr")
        assert _key(config) != _key(config, granularity=4)
        assert _key(config) != _key(config, seed=3)
        assert canonical_run_key(config, "cholesky", 0.1) != canonical_run_key(
            config, "cholesky", 0.2
        )


class TestResultSerialization:
    @pytest.fixture(scope="class")
    def live_result(self):
        return run_simulation(diamond_program(), make_config(runtime="tdm"))

    def test_round_trip_preserves_consumed_metrics(self, live_result):
        restored = SimulationResult.from_dict(
            json.loads(json.dumps(live_result.to_dict()))
        )
        assert restored.total_cycles == live_result.total_cycles
        assert restored.microseconds == live_result.microseconds
        assert restored.edp == live_result.edp
        assert restored.master_breakdown() == live_result.master_breakdown()
        assert restored.worker_breakdown() == live_result.worker_breakdown()
        assert restored.idle_fraction == live_result.idle_fraction
        assert restored.master_creation_fraction == live_result.master_creation_fraction
        assert restored.scheduler_name == live_result.scheduler_name
        assert restored.config == live_result.config
        assert restored.num_tasks_executed == live_result.num_tasks_executed
        assert restored.dmu_stats.as_dict() == live_result.dmu_stats.as_dict()
        assert restored.dat_average_occupied_sets == live_result.dat_average_occupied_sets

    def test_speedup_between_live_and_restored(self, live_result):
        restored = SimulationResult.from_dict(live_result.to_dict())
        assert restored.speedup_over(live_result) == 1.0
        assert restored.normalized_edp(live_result) == 1.0


class TestResultCache:
    def test_disk_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_simulation(diamond_program(), make_config(runtime="software"))
        key = "ab" + "0" * 62
        cache.put(key, result)
        assert key in cache
        restored = cache.get(key)
        assert restored.total_cycles == result.total_cycles
        assert restored.energy.to_dict() == result.energy.to_dict()
        assert len(cache) == 1

    def test_missing_and_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" + "0" * 62) is None
        path = cache.path_for("ef" + "0" * 62)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get("ef" + "0" * 62) is None
        assert cache.misses == 2

    @pytest.mark.parametrize(
        "document",
        ["[1, 2, 3]", '{"version": 1}', '{"version": 1, "result": {"oops": true}}'],
    )
    def test_structurally_malformed_entries_are_misses(self, tmp_path, document):
        # Valid JSON of the wrong shape must resimulate, not abort the campaign.
        cache = ResultCache(tmp_path)
        key = "aa" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(document, encoding="utf-8")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = run_simulation(diamond_program(), make_config(runtime="software"))
        cache.put("12" + "0" * 62, result)
        cache.clear()
        assert len(cache) == 0

    def test_read_only_cache_keeps_serving_hits(self, tmp_path, monkeypatch):
        """A read-only cache directory (NFS mount, permission squash) must
        degrade gracefully: the LRU mtime refresh fails, reads keep working,
        one warning fires, and the failure counter keeps counting."""
        cache = ResultCache(tmp_path)
        result = run_simulation(diamond_program(), make_config(runtime="software"))
        key = "ab" + "0" * 62
        cache.put(key, result)

        import os as os_module

        def read_only_utime(*args, **kwargs):
            raise PermissionError(30, "Read-only file system")

        monkeypatch.setattr("repro.experiments.cache.os.utime", read_only_utime)
        with pytest.warns(RuntimeWarning, match="is not writable"):
            restored = cache.get(key)
        assert restored is not None
        assert restored.total_cycles == result.total_cycles
        assert cache.hits == 1
        assert cache.mtime_refresh_failures == 1
        # Later hits keep serving and counting, but warn only once.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(key) is not None
        assert cache.hits == 2
        assert cache.mtime_refresh_failures == 2
        assert os_module.utime is not None  # monkeypatch scoped to the module under test

    def test_vanished_entry_mtime_refresh_stays_silent(self, tmp_path, monkeypatch):
        # A concurrent prune deleting the entry between read and refresh is
        # normal operation, not a degradation — no warning, no counter.
        cache = ResultCache(tmp_path)
        result = run_simulation(diamond_program(), make_config(runtime="software"))
        key = "cd" + "0" * 62
        cache.put(key, result)
        monkeypatch.setattr(
            "repro.experiments.cache.os.utime",
            lambda *args, **kwargs: (_ for _ in ()).throw(FileNotFoundError()),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get(key) is not None
        assert cache.mtime_refresh_failures == 0


class TestEngineCaching:
    def test_memo_hit_and_counters(self):
        runner = SimulationRunner(scale=SCALE)
        first = runner.run("cholesky", "software")
        second = runner.run("cholesky", "software")
        assert first is second
        info = runner.cache_info()
        assert info["simulations_run"] == 1
        assert info["memory_hits"] == 1

    def test_second_invocation_simulates_nothing(self, tmp_path):
        cold = SimulationRunner(scale=SCALE, cache_dir=tmp_path)
        cold.run("cholesky", "software")
        cold.run("cholesky", "tdm", "lifo")
        assert cold.cache_info()["simulations_run"] == 2

        warm = SimulationRunner(scale=SCALE, cache_dir=tmp_path)
        a = warm.run("cholesky", "software")
        b = warm.run("cholesky", "tdm", "lifo")
        info = warm.cache_info()
        assert info["simulations_run"] == 0
        assert info["disk_hits"] == 2
        assert a.total_cycles == cold.run("cholesky", "software").total_cycles
        assert b.scheduler_name == "lifo"

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            SimulationRunner(scale=SCALE, jobs=0)

    def test_run_many_deduplicates(self):
        runner = SimulationRunner(scale=SCALE)
        requests = [RunRequest("cholesky", "software")] * 3
        results = runner.run_many(requests)
        assert len(results) == 3
        assert results[0] is results[1] is results[2]
        assert runner.cache_info()["simulations_run"] == 1


class TestParallelEquivalence:
    def test_jobs2_csv_is_byte_identical_to_serial(self, tmp_path):
        serial = SimulationRunner(scale=SCALE)
        parallel = SimulationRunner(scale=SCALE, jobs=2, cache_dir=tmp_path / "cache")
        kwargs = dict(scale=SCALE, benchmarks=["blackscholes"])
        serial_result = run_experiment("figure_12", runner=serial, **kwargs)
        parallel_result = run_experiment("figure_12", runner=parallel, **kwargs)
        assert parallel_result.to_csv() == serial_result.to_csv()
        assert parallel_result.to_markdown() == serial_result.to_markdown()
        # The prefetch covered the whole sweep (the FIFO baseline and the
        # fifo scheduler point share one key): the harness itself then ran
        # entirely from the memo.
        assert parallel.cache_info()["simulations_run"] == 10

    def test_parallel_results_persist_for_warm_rerun(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = SimulationRunner(scale=SCALE, jobs=2, cache_dir=cache_dir)
        run_experiment("figure_10", runner=first, scale=SCALE, benchmarks=["blackscholes"])
        assert first.cache_info()["simulations_run"] == 2

        second = SimulationRunner(scale=SCALE, jobs=2, cache_dir=cache_dir)
        run_experiment("figure_10", runner=second, scale=SCALE, benchmarks=["blackscholes"])
        assert second.cache_info()["simulations_run"] == 0


class TestCachePruning:
    """``ResultCache.prune`` / ``--cache-max-bytes``: oldest-mtime eviction."""

    def _populate(self, tmp_path, count=4):
        import os
        import time

        cache = ResultCache(tmp_path / "cache")
        paths = []
        for index in range(count):
            key = f"{index:02x}" + "ab" * 31
            path = cache.put_serialized(key, {"payload": "x" * 100, "index": index})
            # Distinct, strictly increasing mtimes so eviction order is exact.
            stamp = time.time() - (count - index) * 100
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return cache, paths

    def test_prune_evicts_oldest_mtime_first(self, tmp_path):
        cache, paths = self._populate(tmp_path)
        entry_size = paths[0].stat().st_size
        total = cache.total_bytes()
        evicted = cache.prune(total - entry_size)  # force out exactly one
        assert evicted == 1
        assert not paths[0].exists()  # the oldest went first
        assert all(path.exists() for path in paths[1:])

    def test_prune_noop_under_budget(self, tmp_path):
        cache, paths = self._populate(tmp_path)
        assert cache.prune(cache.total_bytes()) == 0
        assert all(path.exists() for path in paths)

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache, paths = self._populate(tmp_path)
        assert cache.prune(0) == len(paths)
        assert cache.total_bytes() == 0
        assert len(cache) == 0

    def test_prune_rejects_negative_budget(self, tmp_path):
        cache, _paths = self._populate(tmp_path, count=1)
        with pytest.raises(ValueError):
            cache.prune(-1)

    def test_engine_enforces_budget_after_batches(self, tmp_path):
        engine = CampaignEngine(
            scale=SCALE, cache_dir=tmp_path / "cache", cache_max_bytes=0
        )
        engine.run_many([RunRequest("blackscholes", "software")])
        # A zero budget keeps the disk cache empty (everything evicted), and
        # the eviction is reported in the counters.
        assert engine.disk_cache.total_bytes() == 0
        assert engine.cache_info()["cache_evictions"] >= 1

    def test_engine_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ExperimentError):
            CampaignEngine(scale=SCALE, cache_dir=tmp_path / "c", cache_max_bytes=-5)

    def test_cli_requires_cache_dir_for_budget(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["figure_02", "--cache-max-bytes", "1000"])
        assert "--cache-max-bytes requires --cache-dir" in capsys.readouterr().err


class TestCachePruneEdgeCases:
    """The corners of eviction: mtime ties, zero budgets, mid-campaign needs."""

    def _cache_with_keys(self, tmp_path, keys, mtime=None):
        import os

        cache = ResultCache(tmp_path / "cache")
        for key in keys:
            path = cache.put_serialized(key, {"payload": "x" * 100})
            if mtime is not None:
                os.utime(path, (mtime, mtime))
        return cache

    def test_mtime_ties_break_deterministically_by_key(self, tmp_path):
        # Coarse-timestamp filesystems and just-merged shard caches produce
        # exact mtime ties; eviction order must not depend on readdir order.
        keys = sorted(f"{index:02x}" + "cd" * 31 for index in range(6))
        cache = self._cache_with_keys(tmp_path, keys, mtime=1_000_000.0)
        entry = cache.path_for(keys[0]).stat().st_size
        assert cache.prune(entry * 2) == 4
        assert cache.keys() == keys[4:]  # lexicographically-smallest evicted first

    def test_prune_zero_budget_on_empty_cache_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.prune(0) == 0
        assert cache.total_bytes() == 0

    def test_get_refreshes_mtime_so_hot_keys_survive_pruning(self, tmp_path):
        import os

        result = run_simulation(diamond_program(), make_config(runtime="software"))
        cache = ResultCache(tmp_path / "cache")
        old_key, new_key = "aa" + "0" * 62, "bb" + "0" * 62
        old_path = cache.put(old_key, result)
        new_path = cache.put(new_key, result)
        os.utime(old_path, (1_000_000.0, 1_000_000.0))
        os.utime(new_path, (2_000_000.0, 2_000_000.0))
        # A campaign reads the *older* entry: it becomes most-recently-used …
        assert cache.get(old_key) is not None
        # … so pruning down to one entry evicts the unread key instead.
        assert cache.prune(old_path.stat().st_size) == 1
        assert old_key in cache
        assert new_key not in cache

    def test_manifests_inside_cache_dir_are_never_pruned_or_counted(self, tmp_path):
        # Every non-result artifact a campaign parks inside the cache dir —
        # shard manifests, work-stealing claims, the cost profile — must be
        # invisible to entry enumeration, pruning, clearing and merging.
        cache = self._cache_with_keys(tmp_path, ["ab" + "0" * 62])
        manifest = cache.directory / "manifests" / "figure_10.shard-1-of-2.json"
        manifest.parent.mkdir()
        manifest.write_text('{"experiment": "figure_10"}', encoding="utf-8")
        claim = cache.directory / "claims" / ("cd" * 32 + ".claim")
        claim.parent.mkdir()
        claim.write_text("shard 1/3 own\n", encoding="utf-8")
        profile = cache.directory / "cost_profile.json"
        profile.write_text('{"version": 1, "timings": {}}', encoding="utf-8")
        artifacts = (manifest, claim, profile)
        assert len(cache) == 1
        stray = cache.total_bytes()
        assert stray == cache.path_for("ab" + "0" * 62).stat().st_size
        assert cache.prune(0) == 1  # the entry, none of the artifacts
        assert all(path.exists() for path in artifacts)
        cache.clear()
        assert all(path.exists() for path in artifacts)
        # Merging this cache into another copies results only — a peer's
        # claim files must never leak into (and poison) another worker's
        # claim board, and profiles merge through store_cost_profile, not
        # as cache entries.
        other = self._cache_with_keys(tmp_path / "other", ["ef" + "0" * 62])
        assert other.merge_from(cache) == 0  # the only entry was pruned
        assert not (other.directory / "claims").exists()
        assert not (other.directory / "cost_profile.json").exists()

    def test_midcampaign_eviction_never_loses_a_needed_result(self, tmp_path):
        # The harshest budget evicts every disk entry after each batch, yet
        # the run's own results stay reachable (memo) — re-requesting a key
        # the campaign already simulated never resimulates mid-run.
        engine = CampaignEngine(scale=SCALE, cache_dir=tmp_path / "cache", cache_max_bytes=0)
        request = RunRequest("blackscholes", "software")
        first = engine.run_many([request])[0]
        assert engine.disk_cache.total_bytes() == 0  # evicted on disk …
        second = engine.run(request)
        assert second is first  # … but not from the running campaign
        assert engine.cache_info()["simulations_run"] == 1


class TestRunManyFailureWrapping:
    """Worker crashes surface as CampaignRunError with key + workload params."""

    @pytest.fixture
    def broken_qr(self, monkeypatch):
        import repro.experiments.campaign as campaign_module

        real = campaign_module.run_simulation

        def explode_on_qr(program, config):
            if program.name.startswith("qr"):
                raise RuntimeError("injected qr fault")
            return real(program, config)

        monkeypatch.setattr(campaign_module, "run_simulation", explode_on_qr)

    def test_serial_batch_raises_wrapped_error(self, broken_qr):
        from repro.experiments.campaign import CampaignRunError

        engine = CampaignEngine(scale=SCALE)
        with pytest.raises(CampaignRunError) as excinfo:
            engine.run_many([RunRequest("qr", "software")])
        error = excinfo.value
        assert error.params["benchmark"] == "qr"
        assert error.params["runtime"] == "software"
        assert error.params["scheduler"] == "fifo"
        assert error.error_type == "RuntimeError"
        assert error.key in error.to_dict()["key"]
        assert "qr" in str(error) and error.key[:12] in str(error)

    def test_collect_mode_returns_none_slots_and_commits_survivors(self, broken_qr):
        from repro.experiments.campaign import CampaignRunError

        engine = CampaignEngine(scale=SCALE)
        failures = {}
        results = engine.run_many(
            [RunRequest("blackscholes", "software"), RunRequest("qr", "software")],
            failures=failures,
        )
        assert results[0] is not None and results[1] is None
        assert len(failures) == 1
        (error,) = failures.values()
        assert isinstance(error, CampaignRunError)
        assert error.params["benchmark"] == "qr"
        assert engine.cache_info()["simulations_run"] == 1  # survivor committed

    def test_failed_key_is_not_cached_anywhere(self, broken_qr, tmp_path):
        engine = CampaignEngine(scale=SCALE, cache_dir=tmp_path / "cache")
        failures = {}
        engine.run_many([RunRequest("qr", "software")], failures=failures)
        (key,) = failures
        assert key not in engine.disk_cache
        assert engine.run_many([RunRequest("qr", "software")], failures={}) == [None]


class TestProgramCache:
    """The engine reuses immutable built programs across simulations."""

    def test_same_workload_point_reuses_one_program(self):
        engine = CampaignEngine(scale=0.05)
        first = engine._build_program("cholesky", None, "software")
        again = engine._build_program("cholesky", None, "software")
        assert first is again, "identical workload points must share the program"
        other = engine._build_program("cholesky", None, "tdm")
        assert other is not first, "different workload runtimes must not alias"
        explicit = engine._build_program("cholesky", 7, None)
        assert explicit is not first, "explicit granularities must not alias"

    def test_cache_is_bounded(self):
        engine = CampaignEngine(scale=0.05)
        limit = CampaignEngine._PROGRAM_CACHE_LIMIT
        for granularity in range(1, limit + 3):
            engine._build_program("blackscholes", granularity, None)
        assert len(engine._program_cache) <= limit

    def test_scheduler_sweep_results_match_fresh_programs(self):
        """Rows computed off a cached program == rows off a fresh build."""
        shared = SimulationRunner(scale=0.05)
        rows_shared = []
        for scheduler in ("fifo", "lifo"):
            result = shared.run("cholesky", "software", scheduler)
            rows_shared.append(result.total_cycles)
        rows_fresh = [
            SimulationRunner(scale=0.05).run("cholesky", "software", scheduler).total_cycles
            for scheduler in ("fifo", "lifo")
        ]
        assert rows_shared == rows_fresh
