"""Guards for the discrete-event kernel hot-path rewrite.

The kernel rewrite (direct-resume heap entries, the zero-delay ready deque,
the bare-int timeout fast path, totals-only timelines) must be *bit-identical*
to the original lambda-per-event kernel.  Two layers of pinning enforce that:

* ``GOLDEN_CSV_DIGESTS`` — SHA-256 of every experiment's CSV rows at
  ``scale=0.1`` on a two-benchmark subset, captured on the pre-rewrite kernel.
  Any change to event ordering, timing arithmetic or phase accounting shows up
  here as a digest mismatch.
* ``PINNED_RUNTIME_CYCLES`` — total cycle counts of a small Cholesky run under
  each of the four runtime models, also captured pre-rewrite.  This covers the
  bare-int fast path end to end for every runtime (all four yield bare ints on
  their hot paths now).
"""

import hashlib

import pytest

from repro.config import default_paper_config
from repro.errors import SimulationError
from repro.sim.engine import WHEEL_SPAN, Engine
from repro.sim.events import NotificationEvent, SimEvent, Timeout, WaitEvent
from repro.sim.machine import run_simulation
from repro.sim.timeline import Phase, ThreadTimeline
from repro.workloads.registry import create_workload

# Captured on the pre-rewrite kernel (PR 1 state) at scale=0.1 with
# benchmarks=["blackscholes", "cholesky"]; see the experiments test below.
GOLDEN_CSV_DIGESTS = {
    "figure_02": "c3dfe6d155af4d94281721d3ab28b70094c176606521315f250bcecc7b525078",
    "figure_06": "e2b8eb3a38a0e494b54e21640cb76de1c06665197bc53e53598cfa13ca821ffa",
    "table_02": "1451c142d1d72a1adbdea36acba4579d1afe8fd006c3ff5df411fbe5a545aaca",
    "figure_07": "7b2720e7a4f002c485ac2f7cf9fc08685f9c2b2ad51b5f246dc3ecc4719a1a7b",
    "figure_08": "7a01b4f293a6dd7bc9841ddb5b8167c0a9ef4af38b37a50f04ce97dc8452f882",
    "figure_09": "68484f3da2eb9c67371a55b57736fc3e3d52711cc0464ba4cd1efa6ed2e8fa23",
    "table_03": "80d3f0b0fec221d4344c3c9bd0f2044e1b2142315a6c7fc4e79839f621c68fe8",
    "figure_10": "3172d140d654edf540b6c0453e29c01723f7780a44bc71477ebd51d6f475e5c9",
    "figure_11": "c7c86d936cafa68752b8dcb7c1dd18b079f9546131a91f3d80b1a2a4ae94b89d",
    "figure_12": "fd14aca03e43481673109a174887ed745ce54bd48fbfab6dfd316ea60144da80",
    "figure_13": "b86740e1b50837344c7e6251497ebcf0a79b44c8cd57cdb271172afbbd704a68",
}

# Cholesky at scale=0.05 under the paper's default configuration, captured on
# the pre-rewrite kernel.  The workload granularity follows each runtime's
# Table II optimum, exactly as the experiment harnesses choose it.
PINNED_RUNTIME_CYCLES = {
    "software": 7_940_856,
    "tdm": 7_639_446,
    "carbon": 7_725_088,
    "task_superscalar": 7_336_055,
}
PINNED_RUNTIME_TASKS = 364


def _run_pinned(runtime: str, backend: str = None):
    workload_runtime = "tdm" if runtime in ("tdm", "task_superscalar") else "software"
    workload = create_workload("cholesky", scale=0.05, runtime=workload_runtime)
    config = default_paper_config(runtime)
    if backend is not None:
        config = config.with_dmu_backend(backend)
    return run_simulation(workload.build_program(), config)


class TestGoldenDigests:
    """The full experiment surface is byte-identical to the pre-rewrite kernel."""

    @pytest.fixture(scope="class")
    def runner(self):
        from repro.experiments.common import SimulationRunner

        return SimulationRunner(scale=0.1)

    @pytest.mark.parametrize("experiment", sorted(GOLDEN_CSV_DIGESTS))
    def test_csv_rows_byte_identical(self, experiment, runner):
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            experiment, scale=0.1, benchmarks=["blackscholes", "cholesky"], runner=runner
        )
        digest = hashlib.sha256(result.to_csv().encode("utf-8")).hexdigest()
        assert digest == GOLDEN_CSV_DIGESTS[experiment], (
            f"{experiment}: CSV rows diverged from the pre-rewrite kernel"
        )


class TestPinnedRuntimeCycles:
    """Bare-int timeout fast path, end to end, across all four runtimes."""

    @pytest.mark.parametrize("runtime", sorted(PINNED_RUNTIME_CYCLES))
    def test_total_cycles_unchanged(self, runtime):
        result = _run_pinned(runtime)
        assert result.total_cycles == PINNED_RUNTIME_CYCLES[runtime]
        assert result.num_tasks_executed == PINNED_RUNTIME_TASKS


def _numpy_available() -> bool:
    from repro.core.backends import numpy_available

    return numpy_available()


@pytest.mark.skipif(not _numpy_available(), reason="accel backend requires numpy")
class TestAccelBackendIdentity:
    """The accel storage backend reproduces the pinned kernel byte for byte.

    Backends are excluded from canonical run keys precisely because they
    cannot change results; these pins are the end-to-end proof — the same
    golden digests and cycle counts the pure backend is held to, simulated
    with ``DMUConfig.backend = "accel"``.
    """

    @pytest.fixture(scope="class")
    def accel_runner(self):
        from repro.experiments.common import SimulationRunner

        return SimulationRunner(scale=0.1, backend="accel")

    @pytest.mark.parametrize("experiment", sorted(GOLDEN_CSV_DIGESTS))
    def test_csv_rows_byte_identical_under_accel(self, experiment, accel_runner):
        from repro.experiments.registry import run_experiment

        result = run_experiment(
            experiment, scale=0.1, benchmarks=["blackscholes", "cholesky"],
            runner=accel_runner,
        )
        digest = hashlib.sha256(result.to_csv().encode("utf-8")).hexdigest()
        assert digest == GOLDEN_CSV_DIGESTS[experiment], (
            f"{experiment}: accel backend diverged from the golden digest"
        )

    @pytest.mark.parametrize("runtime", sorted(PINNED_RUNTIME_CYCLES))
    def test_total_cycles_unchanged_under_accel(self, runtime):
        result = _run_pinned(runtime, backend="accel")
        assert result.total_cycles == PINNED_RUNTIME_CYCLES[runtime]
        assert result.num_tasks_executed == PINNED_RUNTIME_TASKS


class TestBareIntTimeouts:
    def test_int_yield_advances_clock(self):
        engine = Engine()
        log = []

        def body():
            yield 10
            log.append(engine.now)
            yield 0  # zero-delay: wakes at the same cycle via the ready deque
            log.append(engine.now)
            yield 5
            log.append(engine.now)

        engine.process(body(), name="p")
        engine.run()
        assert log == [10, 10, 15]

    def test_int_and_timeout_yields_interleave_identically(self):
        def build(use_ints):
            engine = Engine()
            trace = []

            def worker(tag, delay):
                yield delay if use_ints else Timeout(delay)
                trace.append((engine.now, tag))
                yield (delay * 2) if use_ints else Timeout(delay * 2)
                trace.append((engine.now, tag))

            for index in range(5):
                engine.process(worker(f"w{index}", index + 1), name=f"w{index}")
            engine.run()
            return trace

        assert build(True) == build(False)

    def test_negative_int_rejected(self):
        engine = Engine()

        def body():
            yield -3

        engine.process(body(), name="bad")
        with pytest.raises(SimulationError, match="negative timeout"):
            engine.run()

    def test_bool_yield_rejected(self):
        # bool is an int subclass but makes no sense as a cycle count.
        engine = Engine()

        def body():
            yield True

        engine.process(body(), name="bool")
        with pytest.raises(SimulationError, match="unknown command"):
            engine.run()

    def test_timeout_subclass_dispatches_via_cold_path(self):
        class SlowTimeout(Timeout):
            pass

        engine = Engine()
        fired = []

        def body():
            yield SlowTimeout(7)
            fired.append(engine.now)

        engine.process(body(), name="sub")
        engine.run()
        assert fired == [7]


class TestRunUntilReentry:
    def test_reentry_produces_identical_trace(self):
        def build():
            engine = Engine()
            trace = []

            def worker(tag, delay):
                for _ in range(4):
                    yield delay
                    trace.append((engine.now, tag))

            for index in range(3):
                engine.process(worker(f"w{index}", 7 * (index + 1)), name=f"w{index}")
            return engine, trace

        engine, full_trace = build()
        engine.run()

        engine2, step_trace = build()
        # Resume repeatedly from arbitrary stopping points.
        for until in (5, 20, 21, 55):
            assert engine2.run(until=until) == until
        engine2.run()
        assert step_trace == full_trace
        assert engine2.now == engine.now

    def test_until_is_inclusive_of_due_events(self):
        engine = Engine()
        fired = []

        def body():
            yield 10
            fired.append(engine.now)

        engine.process(body(), name="p")
        engine.run(until=10)
        assert fired == [10]


class TestBucketedWheel:
    """The two-tier queue (near-future wheel + far-future heap) is order-
    transparent: delays on either side of the WHEEL_SPAN horizon, horizon
    crossings via run(until), and heap-to-wheel migration must all preserve
    the single-queue (time, seq) order."""

    def test_delays_across_the_horizon_interleave_by_time_then_seq(self):
        engine = Engine()
        trace = []
        # Delays straddling the wheel horizon, scheduled in one batch: the
        # far-future heap and the wheel must merge back into time order.
        delays = [1, WHEEL_SPAN - 1, WHEEL_SPAN, WHEEL_SPAN + 1, 3 * WHEEL_SPAN, 7]

        def worker(tag, delay):
            yield delay
            trace.append((engine.now, tag))

        for tag, delay in enumerate(delays):
            engine.process(worker(tag, delay), name=f"w{tag}")
        engine.run()
        assert trace == sorted(trace), "events fired out of (time, seq) order"
        assert [now for now, _tag in trace] == sorted(delays)

    def test_same_cycle_ties_follow_scheduling_order_across_tiers(self):
        engine = Engine()
        trace = []

        def sleeper(tag, first, second):
            yield first
            trace.append((engine.now, tag, "a"))
            yield second
            trace.append((engine.now, tag, "b"))

        # Both processes reach cycle WHEEL_SPAN + 2: p0 via a far-future
        # sleep (heap, migrated into the wheel), p1 via two near sleeps
        # (wheel only).  p0 scheduled its arrival first, so it runs first.
        engine.process(sleeper("p0", WHEEL_SPAN + 2, 1), name="p0")
        engine.process(sleeper("p1", 2, WHEEL_SPAN), name="p1")
        engine.run()
        assert trace == [
            (2, "p1", "a"),
            (WHEEL_SPAN + 2, "p0", "a"),
            (WHEEL_SPAN + 2, "p1", "b"),
            (WHEEL_SPAN + 3, "p0", "b"),
        ]

    def test_run_until_pauses_inside_and_beyond_the_wheel_window(self):
        def build():
            engine = Engine()
            trace = []

            def worker(tag, delay):
                for _ in range(3):
                    yield delay
                    trace.append((engine.now, tag))

            engine.process(worker("near", 5), name="near")
            engine.process(worker("far", WHEEL_SPAN + 11), name="far")
            return engine, trace

        engine, full = build()
        engine.run()

        engine2, stepped = build()
        # Bounds inside the first window, exactly at the horizon, and far
        # beyond it (forcing heap->wheel migration on re-entry).
        for until in (3, WHEEL_SPAN, WHEEL_SPAN + 11, 2 * WHEEL_SPAN + 30):
            assert engine2.run(until=until) == until
        engine2.run()
        assert stepped == full
        assert engine2.now == engine.now

    def test_schedule_callbacks_merge_with_process_wakeups(self):
        engine = Engine()
        trace = []

        def worker():
            yield 4
            trace.append(("proc", engine.now))

        engine.process(worker(), name="p")
        engine.schedule(4, lambda: trace.append(("cb4", engine.now)))
        engine.schedule(WHEEL_SPAN + 4, lambda: trace.append(("far", engine.now)))
        engine.schedule(0, lambda: trace.append(("cb0", engine.now)))
        engine.run()
        # Ties at time 4 break by scheduling order: the callback claimed its
        # sequence number when schedule() ran, the process's wakeup only when
        # its first step executed `yield 4` (during cycle 0) — exactly the
        # pre-wheel single-queue order.
        assert trace == [
            ("cb0", 0),
            ("cb4", 4),
            ("proc", 4),
            ("far", WHEEL_SPAN + 4),
        ]

    def test_batched_trigger_preserves_waiter_and_bystander_order(self):
        engine = Engine()
        event = SimEvent(engine, "broadcast")
        trace = []

        def waiter(tag):
            yield WaitEvent(event)
            trace.append(("woke", tag, engine.now))
            yield 1
            trace.append(("after", tag, engine.now))

        def bystander():
            # Scheduled *after* the waiters at the trigger cycle: the batched
            # drain must still run every waiter first.
            yield 2
            trace.append(("bystander", engine.now))

        def trigger():
            yield 2
            event.trigger("payload")
            trace.append(("triggered", engine.now))

        for tag in range(3):
            engine.process(waiter(tag), name=f"w{tag}")
        engine.process(trigger(), name="t")
        engine.process(bystander(), name="b")
        engine.run()
        assert trace == [
            ("triggered", 2),
            ("bystander", 2),
            ("woke", 0, 2),
            ("woke", 1, 2),
            ("woke", 2, 2),
            ("after", 0, 3),
            ("after", 1, 3),
            ("after", 2, 3),
        ]

    def test_batch_drain_skips_processes_finished_mid_drain(self):
        # Process.resume guards against resuming a finished process; drive
        # a batch containing one directly (no generator interleaving can
        # produce this naturally, which is exactly why the guard must not
        # rely on it never happening).
        from repro.sim.events import _WaiterBatch

        engine = Engine()
        woken = []

        def quick():
            yield 1

        def waiter():
            got = yield WaitEvent(SimEvent(engine, "unused"))
            woken.append(got)

        finished = engine.process(quick(), name="done")
        engine.run()
        assert finished.finished
        live = engine.process(waiter(), name="live")

        def sentinel():  # keeps the queues non-empty so run(until) pauses
            yield WHEEL_SPAN * 4

        engine.process(sentinel(), name="sentinel")
        engine.run(until=engine.now + 1)  # let the waiter reach its yield
        # The stale finished process must be skipped without touching its
        # generator; the live waiter resumes with the batch value.
        _WaiterBatch([finished, live]).resume(42)
        assert woken == [42]
        assert finished.result is None

    def test_deadlock_detection_sees_wheel_and_heap_events(self):
        # A pending far-future event must keep the engine alive; once the
        # queues drain with a blocked process, DeadlockError still fires.
        from repro.errors import DeadlockError

        engine = Engine()

        def blocked():
            yield WaitEvent(SimEvent(engine, "never"))

        def worker():
            yield WHEEL_SPAN * 2

        engine.process(blocked(), name="blocked")
        engine.process(worker(), name="w")
        with pytest.raises(DeadlockError):
            engine.run()
        assert engine.now == WHEEL_SPAN * 2


class TestProcessRegistry:
    def test_process_counts_are_cheap_and_correct(self):
        engine = Engine()

        def body(delay):
            yield delay

        engine.process(body(5), name="a")
        engine.process(body(9), name="b")
        assert engine.live_process_count == 2
        assert engine.finished_process_count == 0
        # The registry property returns the live list (no per-access copy).
        assert engine.processes is engine.processes
        engine.run(until=5)
        assert engine.live_process_count == 1
        engine.run()
        assert engine.live_process_count == 0
        assert engine.finished_process_count == 2
        assert [p.name for p in engine.processes] == ["a", "b"]


class TestNotificationEventLazyRearm:
    def test_notify_with_no_waiters_allocates_nothing(self):
        engine = Engine()
        channel = NotificationEvent(engine, "n")
        assert channel._current is None
        channel.notify_all()
        assert channel._current is None

    def test_target_captured_before_notify_is_triggered(self):
        engine = Engine()
        channel = NotificationEvent(engine, "n")
        target = channel.wait_target()
        assert channel.wait_target() is target  # stable until a notification
        channel.notify_all("payload")
        assert target.triggered and target.value == "payload"
        rearmed = channel.wait_target()
        assert rearmed is not target and not rearmed.triggered

    def test_waiters_wake_in_registration_order(self):
        engine = Engine()
        channel = NotificationEvent(engine, "n")
        woken = []

        def waiter(tag):
            yield WaitEvent(channel.wait_target())
            woken.append(tag)

        def notifier():
            yield 3
            channel.notify_all()

        for tag in ("a", "b", "c"):
            engine.process(waiter(tag), name=tag)
        engine.process(notifier(), name="n")
        engine.run()
        assert woken == ["a", "b", "c"]


class TestTimelineMerge:
    def test_reentering_open_phase_merges_intervals(self):
        timeline = ThreadTimeline(0, record_intervals=True)
        timeline.begin(Phase.EXEC, 10)
        timeline.begin(Phase.EXEC, 20)  # same phase: continues the open span
        timeline.begin(Phase.DEPS, 30)
        timeline.end(45)
        assert [(i.phase, i.start, i.end) for i in timeline.intervals] == [
            (Phase.EXEC, 10, 30),
            (Phase.DEPS, 30, 45),
        ]
        assert timeline.totals[Phase.EXEC] == 20
        assert timeline.totals[Phase.DEPS] == 15

    def test_zero_duration_phase_changes_leave_no_interval(self):
        timeline = ThreadTimeline(0, record_intervals=True)
        timeline.begin(Phase.IDLE, 5)
        timeline.begin(Phase.SCHED, 9)
        timeline.begin(Phase.IDLE, 9)  # zero-duration SCHED visit
        timeline.end(12)
        assert [(i.phase, i.start, i.end) for i in timeline.intervals] == [
            (Phase.IDLE, 5, 9),
            (Phase.IDLE, 9, 12),
        ]
        assert timeline.totals[Phase.SCHED] == 0

    def test_interval_recording_is_opt_in_via_config(self):
        from repro.config import SimulationConfig

        assert SimulationConfig().record_timeline is False
        result = _run_pinned("software")
        assert all(not thread.intervals for thread in result.timeline.threads)
        assert sum(result.timeline.totals().values()) > 0
