"""The README quickstart must actually work.

The commands are *parsed out of README.md* (not duplicated here), scaled
down for test time, and executed in subprocesses — so a renamed flag, a
broken CLI entry point or a stale example fails this suite instead of the
first reader who copy-pastes it.

Scale-down transformations (the shape of each command is preserved):

* ``tdm-repro ...``      → ``python -m repro.experiments.cli ...`` (the
  console script only exists after ``pip install -e .``);
* ``--scale X``          → ``--scale 0.05`` plus a single-benchmark subset;
* the tier-1 pytest line → bounded to one fast test file (running the whole
  suite from inside the suite would recurse);
* ``pip install`` lines are checked for shape but not executed (network).
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"


def quickstart_commands() -> list[str]:
    """The command lines of the README's first Quickstart ``bash`` block."""
    text = README.read_text(encoding="utf-8")
    match = re.search(r"## Quickstart.*?```bash\n(.*?)```", text, re.DOTALL)
    assert match, "README.md lost its Quickstart bash block"
    commands = []
    for raw in match.group(1).splitlines():
        line = raw.strip()
        if line and not line.startswith("#"):
            commands.append(line)
    return commands


def scaled_down(command: str) -> list[str] | None:
    """Shell line for a scaled-down run, or None for commands we only lint."""
    if command.startswith("pip install"):
        return None
    # Pin the interpreter first; the tdm-repro replacement below inserts an
    # interpreter path that must not be rewritten again.
    command = re.sub(r"\bpython\b", sys.executable, command, count=1)
    command = command.replace(
        "tdm-repro", f"{sys.executable} -m repro.experiments.cli"
    )
    if "-m pytest" in command:
        return [command + " tests/test_units.py"]
    if "-m repro.experiments.cli" in command and "--list" not in command:
        command = re.sub(r"--scale\s+[\d.]+", "--scale 0.05", command)
        command += " --benchmarks blackscholes"
    return [command]


class TestQuickstartShape:
    def test_readme_quickstart_covers_the_essentials(self):
        joined = "\n".join(quickstart_commands())
        assert "-m pytest" in joined, "quickstart must show how to run the tests"
        assert "repro.experiments.cli" in joined or "tdm-repro" in joined
        assert "--list" in joined, "quickstart must show experiment discovery"


class TestQuickstartExecutes:
    @pytest.mark.parametrize(
        "command", quickstart_commands(), ids=lambda c: c[:60].replace(" ", "_")
    )
    def test_command_runs(self, command, tmp_path):
        shell_lines = scaled_down(command)
        if shell_lines is None:
            assert "-e ." in command  # editable install of this package
            return
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for shell_line in shell_lines:
            proc = subprocess.run(
                shell_line,
                shell=True,
                cwd=REPO_ROOT,
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert proc.returncode == 0, (
                f"quickstart command failed: {command!r}\n"
                f"(ran as: {shell_line!r})\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
            )

    def test_list_names_every_experiment(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "--list"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        listed = proc.stdout.split()
        for name in ("figure_02", "figure_12", "table_03"):
            assert name in listed
