"""Tests for the shared REPRO_BENCH_* environment handling."""

from __future__ import annotations

import warnings

import pytest

from repro.experiments import env
from repro.experiments.shard import ShardSpec


@pytest.fixture(autouse=True)
def _clean_environment(monkeypatch):
    """Every REPRO* knob unset unless a test sets it."""
    for name in (
        "REPRO_BENCH_SCALE",
        "REPRO_BENCH_BENCHMARKS",
        "REPRO_BENCH_JOBS",
        "REPRO_BENCH_CACHE_DIR",
        "REPRO_BENCH_BACKEND",
        "REPRO_BENCH_SHARDS",
        "REPRO_JOBS",
        "REPRO_CACHE_DIR",
    ):
        monkeypatch.delenv(name, raising=False)


class TestBenchEnv:
    def test_unset_returns_none(self):
        assert env.bench_env("JOBS") is None

    def test_new_name_wins_without_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env.bench_env("JOBS") == "4"

    def test_deprecated_spelling_warns_and_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        with pytest.warns(DeprecationWarning, match="REPRO_JOBS is deprecated"):
            assert env.bench_env("JOBS") == "3"

    def test_new_name_shadows_deprecated(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "4")
        monkeypatch.setenv("REPRO_JOBS", "3")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env.bench_env("JOBS") == "4"

    def test_empty_values_count_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", "legacy-dir")
        with pytest.warns(DeprecationWarning):
            assert env.bench_env("CACHE_DIR") == "legacy-dir"

    def test_deprecated_mapping_applies_automatically(self, monkeypatch):
        # The pre-PR6 spellings are honored without callers having to name
        # them — the drift this module fixed: only run_campaign_rest.py used
        # to pass the deprecated spelling explicitly.
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/legacy")
        with pytest.warns(DeprecationWarning, match="REPRO_CACHE_DIR"):
            assert env.bench_cache_dir() == "/tmp/legacy"

    def test_knobs_without_deprecated_spelling_ignore_legacy_names(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_BACKEND", "accel")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env.bench_backend() == "accel"


class TestTypedHelpers:
    def test_scale_default_and_override(self, monkeypatch):
        assert env.bench_scale() == env.DEFAULT_SCALE
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert env.bench_scale() == 0.5

    def test_jobs_deprecated_spelling(self, monkeypatch):
        assert env.bench_jobs() == 1
        monkeypatch.setenv("REPRO_JOBS", "6")
        with pytest.warns(DeprecationWarning):
            assert env.bench_jobs() == 6

    def test_benchmarks_parsing(self, monkeypatch):
        assert env.bench_benchmarks() is None
        assert env.bench_benchmarks(["cholesky"]) == ["cholesky"]
        monkeypatch.setenv("REPRO_BENCH_BENCHMARKS", "cholesky, qr ,,lu")
        assert env.bench_benchmarks(["ferret"]) == ["cholesky", "qr", "lu"]

    def test_backend_default_is_none(self):
        assert env.bench_backend() is None

    def test_shard_parsing(self, monkeypatch):
        assert env.bench_shard() is None
        monkeypatch.setenv("REPRO_BENCH_SHARDS", "2/3")
        assert env.bench_shard() == ShardSpec(2, 3)
