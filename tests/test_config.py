"""Configuration objects: defaults, validation and helpers."""

import dataclasses

import pytest

from repro.config import (
    ChipConfig,
    CoreConfig,
    CostModelConfig,
    DMUConfig,
    LocalityConfig,
    SimulationConfig,
    default_paper_config,
)
from repro.errors import ConfigurationError


class TestDMUConfig:
    def test_defaults_match_table1(self):
        dmu = DMUConfig()
        assert dmu.tat_entries == 2048
        assert dmu.dat_entries == 2048
        assert dmu.tat_associativity == 8
        assert dmu.successor_list_entries == 1024
        assert dmu.dependence_list_entries == 1024
        assert dmu.reader_list_entries == 1024
        assert dmu.elements_per_list_entry == 8
        assert dmu.access_cycles == 1

    def test_task_table_mirrors_tat(self):
        dmu = DMUConfig(tat_entries=512, dat_entries=1024)
        assert dmu.task_table_entries == 512
        assert dmu.dependence_table_entries == 1024

    def test_id_bits_default(self):
        dmu = DMUConfig()
        assert dmu.task_id_bits == 11
        assert dmu.dependence_id_bits == 11

    def test_id_bits_small_tables(self):
        dmu = DMUConfig(tat_entries=256, dat_entries=512)
        assert dmu.task_id_bits == 8
        assert dmu.dependence_id_bits == 9

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigurationError):
            DMUConfig(tat_entries=1000).validate()

    def test_associativity_larger_than_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            DMUConfig(tat_entries=4, tat_associativity=8).validate()

    def test_bad_index_selection_rejected(self):
        dmu = dataclasses.replace(DMUConfig(), index_selection="weird")
        with pytest.raises(ConfigurationError):
            dmu.validate()

    def test_negative_access_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            DMUConfig(access_cycles=-1).validate()

    def test_ideal_is_effectively_unlimited(self):
        ideal = DMUConfig.ideal()
        ideal.validate()
        assert ideal.unlimited
        assert ideal.tat_entries >= 1 << 20

    def test_with_sizes(self):
        dmu = DMUConfig().with_sizes(tat_entries=4096)
        assert dmu.tat_entries == 4096
        assert dmu.dat_entries == 2048

    def test_ready_queue_smaller_than_tat_rejected(self):
        # An undersized Ready Queue would overflow mid-simulation (the model
        # treats overflow as a protocol error, not a blocking condition).
        with pytest.raises(ConfigurationError, match="ready_queue_entries"):
            DMUConfig(tat_entries=4096, ready_queue_entries=2048).validate()

    def test_ready_queue_matching_tat_accepted(self):
        DMUConfig(tat_entries=4096, dat_entries=4096, ready_queue_entries=4096).validate()

    def test_simulation_config_round_trips_through_dict(self):
        config = default_paper_config(runtime="software", scheduler="age")
        rebuilt = SimulationConfig.from_dict(config.to_dict())
        assert rebuilt == config


class TestChipConfig:
    def test_defaults(self):
        chip = ChipConfig()
        assert chip.num_cores == 32
        assert chip.clock_ghz == 2.0

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(num_cores=0).validate()

    def test_core_power_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(active_power_watts=0.1, idle_power_watts=0.5).validate()


class TestCostModelConfig:
    def test_default_validates(self):
        CostModelConfig().validate()

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModelConfig(sw_dep_base_cycles=-1).validate()


class TestLocalityConfig:
    def test_default_validates(self):
        LocalityConfig().validate()

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalityConfig(max_speedup_fraction=1.5).validate()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            LocalityConfig(tracked_blocks_per_core=0).validate()


class TestSimulationConfig:
    def test_default_paper_config(self):
        config = default_paper_config()
        assert config.chip.num_cores == 32
        assert config.runtime == "tdm"
        assert config.scheduler == "fifo"

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(runtime="magic").validate()

    def test_with_runtime_and_scheduler(self):
        config = default_paper_config().with_runtime("software", "age")
        assert config.runtime == "software"
        assert config.scheduler == "age"

    def test_with_scheduler_only(self):
        config = default_paper_config().with_scheduler("lifo")
        assert config.scheduler == "lifo"
        assert config.runtime == "tdm"

    def test_with_dmu(self):
        dmu = DMUConfig(tat_entries=512)
        config = default_paper_config().with_dmu(dmu)
        assert config.dmu.tat_entries == 512

    def test_validated_returns_self(self):
        config = SimulationConfig()
        assert config.validated() is config

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(seed=-1).validate()

    def test_zero_max_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(max_cycles=0).validate()
