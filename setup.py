"""Setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools/pip combination
cannot build editable wheels (no ``wheel`` package available offline), by
falling back to the legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
