"""Figure 6: execution time vs task granularity (software runtime)."""

DEFAULT_BENCHMARKS = ["blackscholes", "cholesky", "lu"]


def test_figure_06_granularity(reproduce):
    result = reproduce("figure_06", default_benchmarks=DEFAULT_BENCHMARKS)
    # The sweep is normalized to the best granularity of each benchmark, so
    # every benchmark has exactly one 1.0 point and nothing below it.
    for name in {row["benchmark"] for row in result.rows}:
        values = [row["normalized_time"] for row in result.rows if row["benchmark"] == name]
        assert min(values) == 1.0
        assert max(values) > 1.0
