"""Figure 9: performance sensitivity to the DMU access latency."""

DEFAULT_BENCHMARKS = ["cholesky", "lu", "qr"]


def test_figure_09_latency(reproduce):
    result = reproduce("figure_09", default_benchmarks=DEFAULT_BENCHMARKS)
    averages = {
        row["access_cycles"]: row["speedup_vs_zero_latency"]
        for row in result.rows
        if row["benchmark"] == "AVG"
    }
    # DMU latency barely matters at the evaluated task granularities: even a
    # 16x slower SRAM stays within a few percent of the zero-latency DMU.
    # (At reduced scales the locality model adds a little schedule-dependent
    # noise, hence the 10% tolerance rather than the paper's 0.9%.)
    for latency, speedup in averages.items():
        assert speedup > 0.90, f"{latency}-cycle DMU degraded performance by more than 10%"
