"""Table III: DMU storage and area + the 7.3x hardware-complexity comparison."""

import pytest


def test_table_03_area(reproduce):
    result = reproduce("table_03")
    total = result.row_for(structure="Total")
    assert total["storage_kb"] == pytest.approx(105.25)
    assert total["area_mm2"] == pytest.approx(0.17, rel=0.1)
    assert any("7.3x" in note for note in result.notes)
