"""Table II: benchmark characteristics (task counts and durations)."""


def test_table_02_characteristics(reproduce):
    # Table II is always generated at full scale: it characterizes the
    # workload generators, not the simulator.
    result = reproduce("table_02", default_benchmarks=None, scale=1.0)
    qr = result.row_for(benchmark="qr")
    assert qr["tdm_tasks"] == qr["paper_tdm_tasks"]
    cholesky = result.row_for(benchmark="cholesky")
    assert cholesky["sw_tasks"] == cholesky["paper_sw_tasks"]
