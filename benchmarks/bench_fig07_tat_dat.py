"""Figure 7: performance sensitivity to TAT and DAT sizes."""

DEFAULT_BENCHMARKS = ["histogram", "qr"]
SIZES = [512, 2048]


def test_figure_07_tat_dat(reproduce):
    result = reproduce("figure_07", default_benchmarks=DEFAULT_BENCHMARKS, sizes=SIZES)
    # The selected design point (2048/2048) is close to the ideal DMU.
    for name in {row["benchmark"] for row in result.rows}:
        selected = result.row_for(benchmark=name, tat_entries=2048, dat_entries=2048)
        assert selected["performance_vs_ideal"] > 0.9
