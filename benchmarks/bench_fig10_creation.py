"""Figure 10: time spent in task creation, software runtime vs TDM."""

DEFAULT_BENCHMARKS = None  # all nine benchmarks


def test_figure_10_creation_time(reproduce):
    result = reproduce("figure_10", default_benchmarks=DEFAULT_BENCHMARKS)
    # TDM reduces the master's task-creation time for the creation-bound
    # benchmarks and never increases it dramatically elsewhere.
    cholesky = result.row_for(benchmark="cholesky")
    assert cholesky["reduction_factor"] > 2.0
    averages_sw = [row["sw_creation_fraction"] for row in result.rows]
    averages_tdm = [row["tdm_creation_fraction"] for row in result.rows]
    assert sum(averages_tdm) < sum(averages_sw)
