"""Figure 12: speedup and EDP of the five software schedulers with TDM."""

DEFAULT_BENCHMARKS = ["cholesky", "dedup", "blackscholes", "qr"]


def test_figure_12_schedulers(reproduce):
    result = reproduce("figure_12", default_benchmarks=DEFAULT_BENCHMARKS)
    averages = {
        row["configuration"]: row
        for row in result.rows
        if row["benchmark"] == "AVG"
    }
    # TDM with the best scheduler per benchmark beats the software runtime on
    # both performance and EDP, and beats the best software-only configuration.
    assert averages["OptTDM"]["speedup"] > 1.0
    assert averages["OptTDM"]["speedup"] >= averages["OptSW"]["speedup"]
    assert averages["OptTDM"]["normalized_edp"] < 1.0
    # The best TDM scheduler is at least as good as always using FIFO.
    assert averages["OptTDM"]["speedup"] >= averages["fifo+TDM"]["speedup"]
