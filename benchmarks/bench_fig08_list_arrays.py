"""Figure 8: performance sensitivity to the list-array sizes."""

DEFAULT_BENCHMARKS = ["cholesky", "histogram"]
SIZES = [128, 1024]


def test_figure_08_list_arrays(reproduce):
    result = reproduce("figure_08", default_benchmarks=DEFAULT_BENCHMARKS, sizes=SIZES)
    averages = {
        row["successor_entries"]: row["performance_vs_ideal"]
        for row in result.rows
        if row["benchmark"] == "AVG"
    }
    # 1024-entry list arrays perform at least as well as 128-entry ones.
    assert averages[1024] >= averages[128]
    assert averages[1024] > 0.9
