"""Figure 2: execution-time breakdown of the software runtime (all benchmarks)."""


def test_figure_02_breakdown(reproduce):
    result = reproduce("figure_02", default_benchmarks=None)
    # Creation-bound benchmarks must show a dependence-management-heavy master.
    cholesky = result.row_for(benchmark="cholesky")
    assert cholesky["master_DEPS"] > 0.5
    # Workers spend most of their time executing tasks or idling.
    for row in result.rows:
        assert row["worker_EXEC"] + row["worker_IDLE"] > 0.7
