"""Shared infrastructure of the benchmark harnesses.

Every file in this directory regenerates one table or figure of the paper
through :mod:`repro.experiments` and reports it via pytest-benchmark.  The
rows are printed (run pytest with ``-s`` to see them inline) and stored in
``benchmark.extra_info`` so the numbers survive in the benchmark JSON.

Two environment variables control the cost of the campaign:

``REPRO_BENCH_SCALE``
    Problem scale in (0, 1].  The default of 0.25 keeps the whole benchmark
    suite at a few minutes; 1.0 reproduces the paper's task counts (use the
    ``tdm-repro`` CLI for full-scale campaigns).

``REPRO_BENCH_BENCHMARKS``
    Comma-separated benchmark subset overriding each harness's default.

``REPRO_BENCH_JOBS``
    Worker processes for the campaign engine (default 1 = serial).  With
    more than one, every harness prefetches its sweep over a process pool.

``REPRO_BENCH_CACHE_DIR``
    Directory for the persistent result cache.  A second benchmark session
    pointed at the same directory simulates nothing.

``REPRO_BENCH_SHARDS``
    ``i/N`` turns the session into a distributed cache warmer: every
    simulating harness runs only its deterministic shard of the sweep into
    ``REPRO_BENCH_CACHE_DIR`` (required), writes a shard manifest, and the
    row assertions are skipped.  Run shard sessions on N hosts against a
    shared (or later-merged) cache directory, then one plain session renders
    every figure from pure cache hits and asserts as usual.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import pytest

from repro.experiments.common import SimulationRunner
from repro.experiments.registry import plan_function, run_experiment
from repro.experiments.shard import ShardSpec, run_shard_worker

DEFAULT_SCALE = 0.25


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_SCALE))


def bench_benchmarks(default: Optional[Sequence[str]]) -> Optional[Sequence[str]]:
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS")
    if not raw:
        return default
    return [name.strip() for name in raw.split(",") if name.strip()]


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_cache_dir() -> Optional[str]:
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None


def bench_shard() -> Optional[ShardSpec]:
    raw = os.environ.get("REPRO_BENCH_SHARDS")
    return ShardSpec.parse(raw) if raw else None


@pytest.fixture(scope="session")
def shared_runner() -> SimulationRunner:
    """One memoizing runner shared by every harness in the session."""
    return SimulationRunner(
        scale=bench_scale(), jobs=bench_jobs(), cache_dir=bench_cache_dir()
    )


@pytest.fixture
def reproduce(benchmark, shared_runner):
    """Run one experiment under pytest-benchmark and report its rows."""

    def _run(experiment: str, default_benchmarks: Optional[Sequence[str]] = None, **kwargs):
        names = bench_benchmarks(default_benchmarks)
        scale = kwargs.pop("scale", shared_runner.scale)

        shard = bench_shard()
        if shard is not None and plan_function(experiment) is not None:
            if bench_cache_dir() is None:
                pytest.fail("REPRO_BENCH_SHARDS requires REPRO_BENCH_CACHE_DIR")

            def _warm():
                return run_shard_worker(
                    experiment, shard, shared_runner, benchmarks=names, **kwargs
                )

            manifest = benchmark.pedantic(_warm, rounds=1, iterations=1)
            benchmark.extra_info["experiment"] = experiment
            benchmark.extra_info["shard"] = str(shard)
            benchmark.extra_info["manifest"] = manifest.to_dict()
            assert not manifest.failures, f"shard failures: {sorted(manifest.failures)}"
            pytest.skip(
                f"shard-warm mode {shard}: {experiment} warmed "
                f"{manifest.attempted} keys ({manifest.simulated} simulated); "
                "row assertions run in the merged render session"
            )

        def _call():
            return run_experiment(
                experiment,
                scale=scale,
                benchmarks=names,
                runner=shared_runner,
                **kwargs,
            )

        result = benchmark.pedantic(_call, rounds=1, iterations=1)
        print()
        print(result.to_markdown())
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["scale"] = shared_runner.scale
        benchmark.extra_info["rows"] = [dict(row) for row in result.rows]
        benchmark.extra_info["notes"] = list(result.notes)
        return result

    return _run
