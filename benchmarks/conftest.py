"""Shared infrastructure of the benchmark harnesses.

Every file in this directory regenerates one table or figure of the paper
through :mod:`repro.experiments` and reports it via pytest-benchmark.  The
rows are printed (run pytest with ``-s`` to see them inline) and stored in
``benchmark.extra_info`` so the numbers survive in the benchmark JSON.

Two environment variables control the cost of the campaign:

``REPRO_BENCH_SCALE``
    Problem scale in (0, 1].  The default of 0.25 keeps the whole benchmark
    suite at a few minutes; 1.0 reproduces the paper's task counts (use the
    ``tdm-repro`` CLI for full-scale campaigns).

``REPRO_BENCH_BENCHMARKS``
    Comma-separated benchmark subset overriding each harness's default.

``REPRO_BENCH_JOBS``
    Worker processes for the campaign engine (default 1 = serial).  With
    more than one, every harness prefetches its sweep over a process pool.

``REPRO_BENCH_CACHE_DIR``
    Directory for the persistent result cache.  A second benchmark session
    pointed at the same directory simulates nothing.

``REPRO_BENCH_SHARDS``
    ``i/N`` turns the session into a distributed cache warmer: every
    simulating harness runs only its deterministic shard of the sweep into
    ``REPRO_BENCH_CACHE_DIR`` (required), writes a shard manifest, and the
    row assertions are skipped.  Run shard sessions on N hosts against a
    shared (or later-merged) cache directory, then one plain session renders
    every figure from pure cache hits and asserts as usual.

``REPRO_BENCH_BACKEND``
    DMU storage backend for the campaign (``pure``/``accel``); unset falls
    back to the config default (itself overridable via ``REPRO_BACKEND``).

The knobs are parsed by :mod:`repro.experiments.env` — one definition shared
with ``scripts/run_campaign*.py`` — which also honors the deprecated
``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` spellings with a DeprecationWarning.
"""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.experiments.common import SimulationRunner
from repro.experiments.env import (
    bench_backend,
    bench_benchmarks,
    bench_cache_dir,
    bench_jobs,
    bench_scale,
    bench_shard,
)
from repro.experiments.registry import plan_function, run_experiment
from repro.experiments.shard import run_shard_worker


@pytest.fixture(scope="session")
def shared_runner() -> SimulationRunner:
    """One memoizing runner shared by every harness in the session."""
    return SimulationRunner(
        scale=bench_scale(),
        jobs=bench_jobs(),
        cache_dir=bench_cache_dir(),
        backend=bench_backend(),
    )


@pytest.fixture
def reproduce(benchmark, shared_runner):
    """Run one experiment under pytest-benchmark and report its rows."""

    def _run(experiment: str, default_benchmarks: Optional[Sequence[str]] = None, **kwargs):
        names = bench_benchmarks(default_benchmarks)
        scale = kwargs.pop("scale", shared_runner.scale)

        shard = bench_shard()
        if shard is not None and plan_function(experiment) is not None:
            if bench_cache_dir() is None:
                pytest.fail("REPRO_BENCH_SHARDS requires REPRO_BENCH_CACHE_DIR")

            def _warm():
                return run_shard_worker(
                    experiment, shard, shared_runner, benchmarks=names, **kwargs
                )

            manifest = benchmark.pedantic(_warm, rounds=1, iterations=1)
            benchmark.extra_info["experiment"] = experiment
            benchmark.extra_info["shard"] = str(shard)
            benchmark.extra_info["manifest"] = manifest.to_dict()
            assert not manifest.failures, f"shard failures: {sorted(manifest.failures)}"
            pytest.skip(
                f"shard-warm mode {shard}: {experiment} warmed "
                f"{manifest.attempted} keys ({manifest.simulated} simulated); "
                "row assertions run in the merged render session"
            )

        def _call():
            return run_experiment(
                experiment,
                scale=scale,
                benchmarks=names,
                runner=shared_runner,
                **kwargs,
            )

        result = benchmark.pedantic(_call, rounds=1, iterations=1)
        print()
        print(result.to_markdown())
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["scale"] = shared_runner.scale
        benchmark.extra_info["rows"] = [dict(row) for row in result.rows]
        benchmark.extra_info["notes"] = list(result.notes)
        return result

    return _run
