"""Figure 13: TDM vs Carbon vs Task Superscalar."""

DEFAULT_BENCHMARKS = ["cholesky", "dedup", "blackscholes", "qr"]


def test_figure_13_comparison(reproduce):
    result = reproduce("figure_13", default_benchmarks=DEFAULT_BENCHMARKS)
    averages = {
        row["configuration"]: row
        for row in result.rows
        if row["benchmark"] == "AVG"
    }
    # The paper's ordering: OptTDM >= Task Superscalar >= Carbon (on average),
    # with TDM also winning on EDP.
    assert averages["OptTDM"]["speedup"] >= averages["TaskSuperscalar"]["speedup"] * 0.99
    assert averages["TaskSuperscalar"]["speedup"] >= averages["Carbon"]["speedup"] * 0.98
    assert averages["OptTDM"]["normalized_edp"] <= averages["Carbon"]["normalized_edp"]
