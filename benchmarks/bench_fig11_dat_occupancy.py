"""Figure 11: DAT occupancy with static vs dynamic index-bit selection."""

DEFAULT_BENCHMARKS = ["blackscholes", "cholesky"]
STATIC_BITS = [0, 8, 16]


def test_figure_11_dat_occupancy(reproduce):
    result = reproduce(
        "figure_11", default_benchmarks=DEFAULT_BENCHMARKS, static_bits=STATIC_BITS
    )
    for name in {row["benchmark"] for row in result.rows}:
        dynamic = result.row_for(benchmark=name, index_policy="DYN")["average_occupied_sets"]
        statics = [
            row["average_occupied_sets"]
            for row in result.rows
            if row["benchmark"] == name and row["index_policy"] != "DYN"
        ]
        # Dynamic selection occupies at least as many sets as the best static
        # choice and strictly more than the worst one.
        assert dynamic >= max(statics) * 0.99
        assert dynamic > min(statics)
