#!/usr/bin/env python3
"""Design-space exploration of the DMU (the Section V story).

Explores the three hardware design axes of the paper on a reduced-scale
Histogram (the benchmark most sensitive to the alias-table sizing):

1. the TAT/DAT sizes (Figure 7),
2. the access latency of the DMU structures (Figure 9),
3. static vs dynamic DAT index-bit selection (Figure 11),

and finally prints the storage/area budget of the selected configuration
(Table III).

Run with:  python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro import DMUConfig, DMUStorageModel, default_paper_config, run_simulation
from repro.workloads import create_workload

BENCHMARK = "histogram"
SCALE = 1.0


def main() -> None:
    program = create_workload(BENCHMARK, scale=SCALE, runtime="tdm").build_program()
    base_dmu = DMUConfig()

    def run_with(dmu: DMUConfig):
        return run_simulation(program, default_paper_config(runtime="tdm").with_dmu(dmu))

    print(f"Design-space exploration on {BENCHMARK} ({program.num_tasks} tasks)\n")

    ideal = run_with(DMUConfig.ideal())
    print("TAT/DAT sizing (performance relative to an ideal, unlimited DMU):")
    for entries in (512, 1024, 2048, 4096):
        swept = replace(
            base_dmu,
            tat_entries=entries,
            dat_entries=entries,
            ready_queue_entries=max(entries, base_dmu.ready_queue_entries),
        )
        sim = run_with(swept)
        print(f"  {entries:>5} entries : {ideal.microseconds / sim.microseconds:6.3f}")
    print()

    print("DMU structure access latency (relative to zero-latency structures):")
    zero = run_with(replace(base_dmu, access_cycles=0))
    for cycles in (1, 4, 16):
        sim = run_with(replace(base_dmu, access_cycles=cycles))
        print(f"  {cycles:>2} cycles   : {zero.microseconds / sim.microseconds:6.3f}")
    print()

    print("DAT index-bit selection (average occupied sets out of 256):")
    for policy in ("static-0", "static-12", "dynamic"):
        if policy == "dynamic":
            dmu = replace(base_dmu, index_selection="dynamic")
        else:
            dmu = replace(
                base_dmu,
                index_selection="static",
                static_index_start_bit=int(policy.split("-")[1]),
            )
        sim = run_with(dmu)
        print(f"  {policy:<10} : {sim.dat_average_occupied_sets:6.1f} sets, {sim.microseconds / 1000:8.2f} ms")
    print()

    storage = DMUStorageModel(base_dmu)
    print("Selected configuration storage budget (Table III):")
    for structure in storage.structures():
        print(f"  {structure.name:<11} {structure.kilobytes:6.2f} KB  {structure.area_mm2:6.3f} mm^2")
    print(f"  {'Total':<11} {storage.total_kilobytes:6.2f} KB  {storage.total_area_mm2:6.3f} mm^2")


if __name__ == "__main__":
    main()
