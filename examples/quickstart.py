#!/usr/bin/env python3
"""Quickstart: software runtime vs TDM on a Cholesky factorization.

Builds the Cholesky task graph at a reduced scale, runs it on the simulated
32-core chip with the pure-software runtime and with TDM (hardware dependence
management, software FIFO scheduler), and prints the speedup, the
energy-delay product and the per-phase breakdown of the master thread — the
core result of the paper in a few lines of code.

Run with:  python examples/quickstart.py
"""

from repro import Phase, default_paper_config, run_simulation
from repro.workloads import create_workload


def main() -> None:
    scale = 0.4  # 40% of the paper's problem size keeps this example fast

    # The evaluation always runs each approach at its own optimal granularity.
    software_program = create_workload("cholesky", scale=scale, runtime="software").build_program()
    tdm_program = create_workload("cholesky", scale=scale, runtime="tdm").build_program()

    software = run_simulation(software_program, default_paper_config(runtime="software"))
    tdm = run_simulation(tdm_program, default_paper_config(runtime="tdm", scheduler="fifo"))

    print(f"Cholesky, {software_program.num_tasks} tasks, 32 simulated cores")
    print(f"  software runtime : {software.microseconds / 1000:8.2f} ms")
    print(f"  TDM (FIFO)       : {tdm.microseconds / 1000:8.2f} ms")
    print(f"  speedup          : {tdm.speedup_over(software):8.3f}x")
    print(f"  normalized EDP   : {tdm.normalized_edp(software):8.3f}")
    print()

    print("Master-thread time breakdown (fraction of its time):")
    print(f"  {'phase':<8} {'software':>10} {'TDM':>10}")
    sw_breakdown = software.master_breakdown()
    tdm_breakdown = tdm.master_breakdown()
    for phase in Phase:
        print(f"  {phase.value:<8} {sw_breakdown[phase]:>10.2f} {tdm_breakdown[phase]:>10.2f}")
    print()

    dmu_stats = tdm.dmu_stats
    assert dmu_stats is not None
    print("DMU activity during the TDM run:")
    print(f"  instructions retired : {dmu_stats.total_instructions}")
    print(f"  SRAM accesses        : {dmu_stats.total_accesses}")
    print(f"  cycles per instr.    : {dmu_stats.average_cycles_per_instruction():.1f}")
    print(f"  DMU share of energy  : {tdm.energy.dmu_power_fraction * 100:.4f}%")


if __name__ == "__main__":
    main()
