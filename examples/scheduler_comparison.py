#!/usr/bin/env python3
"""Flexible software scheduling with TDM (the Figure 12 story).

Runs two benchmarks with very different scheduling needs — Dedup (a pipeline
whose serialized I/O tasks must overlap with computation) and Cholesky (a
memory-intensive factorization that rewards data locality) — under all five
software schedulers combined with TDM, and prints the speedup of each
combination over the software-runtime FIFO baseline.

The point of the exercise is the paper's central argument: no single
scheduling policy wins everywhere, so keeping the scheduler in software (as
TDM does) beats fixing it in hardware (as Carbon and Task Superscalar do).

Run with:  python examples/scheduler_comparison.py
"""

from repro import default_paper_config, run_simulation
from repro.schedulers import available_schedulers
from repro.workloads import create_workload

BENCHMARKS = ("dedup", "cholesky")
SCALE = 0.4


def main() -> None:
    schedulers = [name for name in ("fifo", "lifo", "locality", "successor", "age")
                  if name in available_schedulers()]

    print(f"{'benchmark':<12} {'configuration':<18} {'speedup':>9} {'norm. EDP':>10}")
    for benchmark in BENCHMARKS:
        software_program = create_workload(benchmark, scale=SCALE, runtime="software").build_program()
        tdm_program = create_workload(benchmark, scale=SCALE, runtime="tdm").build_program()

        baseline = run_simulation(software_program, default_paper_config(runtime="software"))
        best_name, best_speedup = None, 0.0
        for scheduler in schedulers:
            config = default_paper_config(runtime="tdm", scheduler=scheduler)
            sim = run_simulation(tdm_program, config)
            speedup = sim.speedup_over(baseline)
            edp = sim.normalized_edp(baseline)
            print(f"{benchmark:<12} {scheduler + '+TDM':<18} {speedup:>9.3f} {edp:>10.3f}")
            if speedup > best_speedup:
                best_name, best_speedup = scheduler, speedup
        print(f"{benchmark:<12} {'OptTDM (' + str(best_name) + ')':<18} {best_speedup:>9.3f}")
        print()


if __name__ == "__main__":
    main()
