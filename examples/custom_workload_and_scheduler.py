#!/usr/bin/env python3
"""Extending the library: a custom workload and a custom scheduling policy.

TDM's selling point is that scheduling stays in software, so new policies are
plain code.  This example:

1. defines a custom workload — a wide map/reduce analytics job that is not
   part of the paper's benchmark suite — directly in terms of task
   definitions and data dependences;
2. registers a custom scheduler ("widest-first": prefer the ready task with
   the most successors, falling back to age) through the scheduler registry;
3. runs the workload with the stock FIFO policy and with the custom policy on
   top of TDM and compares the outcome.

Run with:  python examples/custom_workload_and_scheduler.py
"""

from typing import List, Optional

from repro import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    default_paper_config,
    run_simulation,
    single_region_program,
)
from repro.schedulers import ReadyEntry, Scheduler, register_scheduler

INPUT_BASE = 0xD0_0000_0000
PARTIAL_BASE = 0xD8_0000_0000
BLOCK = 64 * 1024
PARTIAL = 4 * 1024


def build_mapreduce_program(num_shards: int = 96, fanin: int = 8):
    """A map/shuffle/reduce job: wide map stage, tree-structured reduce stage."""
    tasks: List[TaskDefinition] = []
    uid = 0

    def task(name, kind, work_us, deps):
        nonlocal uid
        definition = TaskDefinition(
            uid=uid, name=name, kind=kind, work_us=work_us, dependences=tuple(deps)
        )
        uid += 1
        return definition

    # Map stage: one task per input shard.
    for shard in range(num_shards):
        tasks.append(
            task(
                f"map_{shard}",
                "map",
                work_us=900.0,
                deps=[
                    DependenceSpec(INPUT_BASE + shard * BLOCK, BLOCK, AccessMode.IN),
                    DependenceSpec(PARTIAL_BASE + shard * PARTIAL, PARTIAL, AccessMode.OUT),
                ],
            )
        )
    # Reduce stage: combine partials in groups of ``fanin`` until one remains.
    live = list(range(num_shards))
    next_partial = num_shards
    while len(live) > 1:
        merged = []
        for start in range(0, len(live), fanin):
            group = live[start:start + fanin]
            deps = [DependenceSpec(PARTIAL_BASE + p * PARTIAL, PARTIAL, AccessMode.IN) for p in group]
            deps.append(DependenceSpec(PARTIAL_BASE + next_partial * PARTIAL, PARTIAL, AccessMode.OUT))
            tasks.append(task(f"reduce_{next_partial}", "reduce", work_us=450.0, deps=deps))
            merged.append(next_partial)
            next_partial += 1
        live = merged
    return single_region_program("mapreduce", tasks)


class WidestFirstScheduler(Scheduler):
    """Prefer ready tasks with the most successors; break ties by age."""

    name = "widest_first"

    def __init__(self) -> None:
        self._entries: List[ReadyEntry] = []

    def push(self, entry: ReadyEntry) -> None:
        self._entries.append(entry)

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        if not self._entries:
            return None
        best = max(self._entries, key=lambda e: (e.successor_count, -e.creation_seq))
        self._entries.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._entries)


def main() -> None:
    register_scheduler(WidestFirstScheduler.name, WidestFirstScheduler, replace=True)
    program = build_mapreduce_program()
    print(f"custom map/reduce job: {program.num_tasks} tasks, "
          f"{program.total_work_us / 1000:.1f} ms of task work")

    baseline = run_simulation(program, default_paper_config(runtime="software"))
    for scheduler in ("fifo", WidestFirstScheduler.name):
        config = default_paper_config(runtime="tdm", scheduler=scheduler)
        sim = run_simulation(program, config)
        print(
            f"  TDM + {scheduler:<13}: {sim.microseconds / 1000:7.2f} ms "
            f"(speedup over software FIFO: {sim.speedup_over(baseline):.3f}x)"
        )


if __name__ == "__main__":
    main()
