"""Last-In First-Out scheduler: the most recently ready task runs first."""

from __future__ import annotations

from typing import List, Optional

from .base import ReadyEntry, Scheduler


class LifoScheduler(Scheduler):
    """Schedule first the last task that became ready (a work stack)."""

    name = "lifo"

    def __init__(self) -> None:
        self._stack: List[ReadyEntry] = []

    def push(self, entry: ReadyEntry) -> None:
        self._stack.append(entry)

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
