"""Scheduler interface and the ready-pool entry it operates on.

A scheduler is a policy over the software pool of ready tasks: the runtime
``push``-es an entry whenever a task becomes ready and a worker ``pop``-s one
entry when it looks for work.  ``pop`` receives the identifier of the core
asking for work so that locality-aware policies can prefer tasks whose inputs
were produced on that core.

Schedulers are deliberately unaware of the runtime-system flavour (software,
TDM, ...): all the information they may use is carried by
:class:`ReadyEntry`, which is exactly what the paper's TDM interface exposes
to software (the task descriptor, its number of successors, and what the
runtime itself can remember, such as creation order and the core that
discovered the task).
"""

from __future__ import annotations

import abc
from typing import Any, Optional


class ReadyEntry:
    """One ready task as seen by the software scheduler.

    One entry is allocated per ready-pool push (an inner loop of every
    simulation), hence a ``__slots__`` class rather than a dataclass.

    Attributes:
        task: opaque handle to the runtime's task object (returned on pop).
        creation_seq: program creation order of the task (lower = older).
        ready_seq: order in which tasks were pushed to the pool.
        successor_count: number of successors known when the task became
            ready (returned by ``get_ready_task`` under TDM, read from the
            software TDG otherwise).
        producer_core: core that discovered the task (finished its last
            predecessor or drained it from the DMU), or ``None`` when unknown.
    """

    __slots__ = ("task", "creation_seq", "ready_seq", "successor_count", "producer_core")

    def __init__(
        self,
        task: Any,
        creation_seq: int,
        ready_seq: int,
        successor_count: int = 0,
        producer_core: Optional[int] = None,
    ) -> None:
        self.task = task
        self.creation_seq = creation_seq
        self.ready_seq = ready_seq
        self.successor_count = successor_count
        self.producer_core = producer_core

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReadyEntry(task={self.task!r}, creation_seq={self.creation_seq}, "
            f"ready_seq={self.ready_seq}, successor_count={self.successor_count}, "
            f"producer_core={self.producer_core})"
        )


class Scheduler(abc.ABC):
    """Base class of all software scheduling policies."""

    #: Registry name; subclasses must override it.
    name: str = "abstract"

    @abc.abstractmethod
    def push(self, entry: ReadyEntry) -> None:
        """Add a ready task to the pool."""

    @abc.abstractmethod
    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        """Select and remove a task for ``core_id`` (None when the pool is empty)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of ready tasks currently in the pool."""

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def peek_available(self) -> bool:
        """Cheap check used by idle workers before paying the pop cost."""
        return len(self) > 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(len={len(self)})"
