"""First-In First-Out scheduler: tasks run in the order they became ready."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .base import ReadyEntry, Scheduler


class FifoScheduler(Scheduler):
    """The paper's baseline policy: schedule tasks in ready order."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: Deque[ReadyEntry] = deque()

    def push(self, entry: ReadyEntry) -> None:
        self._queue.append(entry)

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)
