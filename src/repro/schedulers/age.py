"""Age scheduler: older tasks (earlier creation time) run first.

Section VI of the paper: "Age scheduler sorts tasks in the ready queue by
their creation time, so older tasks have higher priority than younger ones."
Creation time is the program creation order captured in
:attr:`~repro.schedulers.base.ReadyEntry.creation_seq`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from .base import ReadyEntry, Scheduler


class AgeScheduler(Scheduler):
    """Priority queue ordered by task creation time (oldest first)."""

    name = "age"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, ReadyEntry]] = []
        self._tiebreak = itertools.count()

    def push(self, entry: ReadyEntry) -> None:
        heapq.heappush(self._heap, (entry.creation_seq, next(self._tiebreak), entry))

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        if not self._heap:
            return None
        _, _, entry = heapq.heappop(self._heap)
        return entry

    def __len__(self) -> int:
        return len(self._heap)
