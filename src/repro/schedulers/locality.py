"""Locality-aware scheduler.

Section VI of the paper: "Locality scheduler exploits data locality and
assigns tasks to cores aiming to minimize data movements.  When a task
finishes executing on a core and some of its successor tasks is ready, a
successor is executed on the core.  If no successors are ready the first task
in the ready queue is scheduled."

The runtime tags every ready entry with the core that discovered it
(``producer_core``): under TDM that is the core that drained the task from
the DMU right after finishing its predecessor, and under the software runtime
the core that woke it up — both are exactly "a successor of the task that
just finished on this core".
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from .base import ReadyEntry, Scheduler


class LocalityScheduler(Scheduler):
    """Prefer tasks whose predecessor just ran on the requesting core."""

    name = "locality"

    def __init__(self) -> None:
        self._global_queue: Deque[ReadyEntry] = deque()
        self._per_core: Dict[int, Deque[ReadyEntry]] = {}
        self._size = 0

    def push(self, entry: ReadyEntry) -> None:
        if entry.producer_core is not None:
            self._per_core.setdefault(entry.producer_core, deque()).append(entry)
        else:
            self._global_queue.append(entry)
        self._size += 1

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        if self._size == 0:
            return None
        local = self._per_core.get(core_id)
        if local:
            self._size -= 1
            return local.popleft()
        if self._global_queue:
            self._size -= 1
            return self._global_queue.popleft()
        # Steal the oldest entry from the core with the longest backlog.
        victim = max(
            (queue for queue in self._per_core.values() if queue),
            key=len,
            default=None,
        )
        if victim is None:
            return None
        self._size -= 1
        return victim.popleft()

    def __len__(self) -> int:
        return self._size
