"""Name-based scheduler registry.

Experiments refer to schedulers by name ("fifo", "lifo", "locality",
"successor", "age"); :func:`create_scheduler` instantiates a fresh policy for
every simulation.  Client code can plug additional policies in with
:func:`register_scheduler`, which is the extension point the paper's
"flexible software scheduling" argument is about.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .age import AgeScheduler
from .base import Scheduler
from .fifo import FifoScheduler
from .lifo import LifoScheduler
from .locality import LocalityScheduler
from .successor import SuccessorScheduler

SchedulerFactory = Callable[[], Scheduler]

_REGISTRY: Dict[str, SchedulerFactory] = {
    FifoScheduler.name: FifoScheduler,
    LifoScheduler.name: LifoScheduler,
    LocalityScheduler.name: LocalityScheduler,
    SuccessorScheduler.name: SuccessorScheduler,
    AgeScheduler.name: AgeScheduler,
}

#: Scheduler names evaluated in Figure 12 of the paper, in plot order.
PAPER_SCHEDULERS = ("fifo", "lifo", "locality", "successor", "age")


def register_scheduler(name: str, factory: SchedulerFactory, replace: bool = False) -> None:
    """Register a custom scheduling policy under ``name``."""
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise ConfigurationError(f"scheduler {name!r} is already registered")
    _REGISTRY[key] = factory


def available_schedulers() -> List[str]:
    """Names of all registered scheduling policies (sorted)."""
    return sorted(_REGISTRY)


def create_scheduler(name: str) -> Scheduler:
    """Instantiate the scheduler registered under ``name``."""
    key = name.lower()
    try:
        factory = _REGISTRY[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from exc
    return factory()
