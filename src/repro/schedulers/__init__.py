"""Software task schedulers.

TDM leaves scheduling decisions to the runtime system; the paper evaluates
five policies (Section VI): FIFO, LIFO, Locality, Successor and Age.  Each
policy is a small class operating on :class:`~repro.schedulers.base.ReadyEntry`
objects pushed by the runtime when tasks become ready and popped by worker
threads.

Policies are looked up by name through :func:`repro.schedulers.registry.create_scheduler`
so experiments can sweep them, and new policies can be registered by client
code via :func:`repro.schedulers.registry.register_scheduler`.
"""

from .base import ReadyEntry, Scheduler
from .fifo import FifoScheduler
from .lifo import LifoScheduler
from .locality import LocalityScheduler
from .successor import SuccessorScheduler
from .age import AgeScheduler
from .registry import available_schedulers, create_scheduler, register_scheduler

__all__ = [
    "ReadyEntry",
    "Scheduler",
    "FifoScheduler",
    "LifoScheduler",
    "LocalityScheduler",
    "SuccessorScheduler",
    "AgeScheduler",
    "available_schedulers",
    "create_scheduler",
    "register_scheduler",
]
