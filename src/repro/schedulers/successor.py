"""Successor-count (criticality) scheduler.

Section VI of the paper: "Successor scheduler counts the number of successors
of a task.  If this number is above a threshold it is placed in a high
priority ready queue, otherwise it is placed in a low priority ready queue.
Threads first check the high priority ready queue and, if it is empty, they
look for tasks in the low priority ready queue."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from .base import ReadyEntry, Scheduler

#: Default threshold: tasks with more than one successor are considered
#: critical (they unblock more downstream work).
DEFAULT_SUCCESSOR_THRESHOLD = 1


class SuccessorScheduler(Scheduler):
    """Two-level priority queue keyed on the number of successors."""

    name = "successor"

    def __init__(self, threshold: int = DEFAULT_SUCCESSOR_THRESHOLD) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.threshold = threshold
        self._high: Deque[ReadyEntry] = deque()
        self._low: Deque[ReadyEntry] = deque()

    def push(self, entry: ReadyEntry) -> None:
        if entry.successor_count > self.threshold:
            self._high.append(entry)
        else:
            self._low.append(entry)

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        if self._high:
            return self._high.popleft()
        if self._low:
            return self._low.popleft()
        return None

    def __len__(self) -> int:
        return len(self._high) + len(self._low)
