"""Workload registry and the paper's reference benchmark data.

``PAPER_TABLE2`` embeds Table II of the paper (task counts and average task
durations at the optimal granularity of the software runtime and of TDM) so
that the Table II experiment can print generated-vs-paper numbers side by
side, and so that tests can assert the generators stay close to the published
characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from .base import Workload
from .blackscholes import BlackscholesWorkload
from .cholesky import CholeskyWorkload
from .dedup import DedupWorkload
from .ferret import FerretWorkload
from .fluidanimate import FluidanimateWorkload
from .histogram import HistogramWorkload
from .lu import LUWorkload
from .qr import QRWorkload
from .streamcluster import StreamclusterWorkload

WorkloadFactory = Callable[..., Workload]

_REGISTRY: Dict[str, WorkloadFactory] = {
    BlackscholesWorkload.name: BlackscholesWorkload,
    CholeskyWorkload.name: CholeskyWorkload,
    DedupWorkload.name: DedupWorkload,
    FerretWorkload.name: FerretWorkload,
    FluidanimateWorkload.name: FluidanimateWorkload,
    HistogramWorkload.name: HistogramWorkload,
    LUWorkload.name: LUWorkload,
    QRWorkload.name: QRWorkload,
    StreamclusterWorkload.name: StreamclusterWorkload,
}

#: The nine benchmarks of the paper, in the order used by its figures.
PAPER_BENCHMARKS = (
    "blackscholes",
    "cholesky",
    "dedup",
    "ferret",
    "fluidanimate",
    "histogram",
    "lu",
    "qr",
    "streamcluster",
)

#: Short labels used on the paper's x axes.
PAPER_LABELS = {
    "blackscholes": "bla",
    "cholesky": "cho",
    "dedup": "ded",
    "ferret": "fer",
    "fluidanimate": "flu",
    "histogram": "hist",
    "lu": "LU",
    "qr": "QR",
    "streamcluster": "str",
}


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II of the paper."""

    benchmark: str
    sw_tasks: int
    sw_duration_us: float
    tdm_tasks: int
    tdm_duration_us: float


#: Table II of the paper: number of tasks and average task duration with the
#: optimal granularity for the software runtime and for TDM.
PAPER_TABLE2: Dict[str, Table2Row] = {
    "blackscholes": Table2Row("blackscholes", 3_300, 1_770.0, 6_500, 823.0),
    "cholesky": Table2Row("cholesky", 5_984, 183.0, 5_984, 183.0),
    "dedup": Table2Row("dedup", 244, 27_748.0, 244, 27_748.0),
    "ferret": Table2Row("ferret", 1_536, 7_667.0, 1_536, 7_667.0),
    "fluidanimate": Table2Row("fluidanimate", 2_560, 1_804.0, 2_560, 1_804.0),
    "histogram": Table2Row("histogram", 512, 3_824.0, 512, 3_824.0),
    "lu": Table2Row("lu", 1_512, 424.0, 1_512, 424.0),
    "qr": Table2Row("qr", 1_496, 997.0, 11_440, 96.0),
    "streamcluster": Table2Row("streamcluster", 42_115, 376.0, 42_115, 376.0),
}


def register_workload(name: str, factory: WorkloadFactory, replace: bool = False) -> None:
    """Register a custom workload generator under ``name``."""
    key = name.lower()
    if key in _REGISTRY and not replace:
        raise ConfigurationError(f"workload {name!r} is already registered")
    _REGISTRY[key] = factory


def available_workloads() -> List[str]:
    """Names of all registered workloads (sorted)."""
    return sorted(_REGISTRY)


def create_workload(
    name: str,
    scale: float = 1.0,
    granularity: Optional[int] = None,
    runtime: Optional[str] = None,
    seed: int = 0,
) -> Workload:
    """Instantiate the workload registered under ``name``.

    ``granularity`` selects an explicit granularity value; when omitted,
    ``runtime`` ('software' or 'tdm') selects that runtime's optimal
    granularity from Table II (defaulting to the software one).
    """
    key = name.lower()
    if key not in _REGISTRY and key.startswith(("gen_", "trace_")):
        # Scenario workloads register lazily so campaign pool workers (fresh
        # processes that only ever see a workload *name*) can rebuild them
        # without the parent having imported repro.scenarios first.
        from ..scenarios.generative import register_builtin_workloads

        register_builtin_workloads()
    try:
        factory = _REGISTRY[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from exc
    workload = factory(scale=scale, granularity=granularity, seed=seed)
    if granularity is None and runtime is not None:
        workload = workload.for_runtime(runtime)
    return workload
