"""Address layout of blocked (tiled) matrices.

The linear-algebra benchmarks (Cholesky, LU, QR) annotate dependences on 2D
blocks of a matrix, exactly like the code of Figure 1 of the paper
(``depend(in: A[i][k], A[j][k]) depend(inout: A[i][j])``).  This helper
computes the virtual address and size of each block so that the DAT observes
the same kind of address stream the paper's DAT does: many dependences whose
low ``log2(block_bytes)`` bits are identical, which is what makes dynamic
index-bit selection matter (Figure 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.task import DependenceSpec, AccessMode


@dataclass(frozen=True)
class BlockedMatrix:
    """An ``num_blocks x num_blocks`` matrix of square blocks."""

    base_address: int
    num_blocks: int
    block_bytes: int
    name: str = "A"

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.block_bytes < 1:
            raise ValueError("block_bytes must be >= 1")

    def block_address(self, row: int, col: int) -> int:
        """Virtual address of block (row, col) — blocks are stored contiguously."""
        if not (0 <= row < self.num_blocks and 0 <= col < self.num_blocks):
            raise IndexError(f"block ({row}, {col}) out of range for {self.num_blocks}x{self.num_blocks}")
        return self.base_address + (row * self.num_blocks + col) * self.block_bytes

    def dep(self, row: int, col: int, mode: AccessMode) -> DependenceSpec:
        """A dependence on block (row, col) with the given access mode."""
        return DependenceSpec(
            address=self.block_address(row, col), size=self.block_bytes, mode=mode
        )

    def read(self, row: int, col: int) -> DependenceSpec:
        return self.dep(row, col, AccessMode.IN)

    def write(self, row: int, col: int) -> DependenceSpec:
        return self.dep(row, col, AccessMode.OUT)

    def update(self, row: int, col: int) -> DependenceSpec:
        return self.dep(row, col, AccessMode.INOUT)

    @property
    def total_bytes(self) -> int:
        return self.num_blocks * self.num_blocks * self.block_bytes


def block_bytes_for_elements(block_elements: int, element_bytes: int = 4) -> int:
    """Bytes of a square block of ``block_elements`` x ``block_elements`` values."""
    return block_elements * block_elements * element_bytes
