"""Blackscholes workload (PARSECSs).

The task-based Blackscholes prices a large array of options.  The PARSECSs
version partitions the options into 64 independent slices; every slice is
processed by a chain of dependent tasks (each task updates its slice in
place, so consecutive tasks on the same slice carry an inout dependence),
and different slices never interact — "Blackscholes is parallelized with 64
independent chains of dependent tasks" (Section VI-A of the paper).

The granularity knob is the block of options processed per task in KB
(Figure 6 sweeps 1 KB to 8 KB).  At 4 KB blocks the generator produces 64
chains of 52 tasks (3328 tasks, Table II reports 3300 at 1770 us); at 2 KB it
produces 64 chains of 104 tasks (6656 tasks; Table II reports 6500 at 823 us
for TDM).
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload, inout_dep

#: Number of independent option slices (chains).
NUM_CHAINS = 64
#: Tasks per chain at the 4 KB reference granularity.
REFERENCE_TASKS_PER_CHAIN = 52
REFERENCE_GRANULARITY_KB = 4
#: Task duration at the 4 KB reference granularity (Table II).
REFERENCE_DURATION_US = 1770.0
OPTIONS_BASE_ADDRESS = 0x40_0000_0000


class BlackscholesWorkload(Workload):
    """64 independent chains of in-place option-pricing tasks."""

    name = "blackscholes"
    label = "bla"
    memory_sensitivity = 0.1

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(1, "1KB option blocks"),
            GranularityOption(2, "2KB option blocks"),
            GranularityOption(4, "4KB option blocks"),
            GranularityOption(8, "8KB option blocks"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        # Table II: software at 4 KB blocks (3300 tasks), TDM at 2 KB (6500).
        return 2 if runtime == "tdm" else 4

    # ------------------------------------------------------------------ geometry
    @property
    def tasks_per_chain(self) -> int:
        per_chain = REFERENCE_TASKS_PER_CHAIN * REFERENCE_GRANULARITY_KB / self.granularity
        return self._scaled(max(1, int(round(per_chain))), minimum=1)

    @property
    def task_duration_us(self) -> float:
        return REFERENCE_DURATION_US * self.granularity / REFERENCE_GRANULARITY_KB

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        tasks = []
        length = self.tasks_per_chain
        block_bytes = self.granularity * 1024
        # Option blocks are contiguous in memory (the option array is simply
        # partitioned), so different chains' dependence addresses share their
        # low log2(block) bits — the address pattern that motivates the DAT's
        # dynamic index-bit selection (Section V-E of the paper).
        # Tasks are created iteration by iteration (the application loops over
        # all blocks once per pricing iteration), which chains consecutive
        # iterations of the same block through their inout dependence.
        for step in range(length):
            for chain in range(NUM_CHAINS):
                block_address = OPTIONS_BASE_ADDRESS + chain * block_bytes
                tasks.append(
                    self._task(
                        f"bs_{chain}_{step}",
                        "blackscholes",
                        self.task_duration_us,
                        [inout_dep(block_address, block_bytes)],
                    )
                )
        return self._single_region(
            tasks,
            metadata={"chains": NUM_CHAINS, "tasks_per_chain": length},
        )
