"""Common infrastructure of the benchmark generators.

A :class:`Workload` turns a benchmark description (problem size, task
granularity, scale factor) into a :class:`~repro.runtime.task.TaskProgram`.
Generators are deterministic: the same parameters always produce the same
program (a seeded RNG adds only small per-task duration jitter so tasks of
the same kind are not perfectly identical, which real benchmarks never are).

Granularity follows the paper's Figure 6: every workload exposes the list of
granularity values swept in the figure and its *optimal* granularity for the
software runtime and for TDM (Table II), because the evaluation always runs
each approach at its own best granularity.

The ``scale`` parameter shrinks the problem (fewer tasks, same structure) so
the test suite and the pytest benchmarks stay fast; ``scale=1.0`` reproduces
the paper's task counts.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskProgram,
    TaskRegion,
)

#: Fractional duration jitter applied per task (deterministic, seeded).
DURATION_JITTER = 0.08


@dataclass(frozen=True)
class GranularityOption:
    """One point of the Figure 6 granularity sweep."""

    value: int
    label: str


class Workload(abc.ABC):
    """Base class of all benchmark task-graph generators."""

    #: Registry name ("cholesky", "blackscholes", ...).
    name: str = "abstract"
    #: Short label used in the paper's figures ("cho", "bla", ...).
    label: str = "abs"
    #: How much the benchmark benefits from data locality (0 = compute bound).
    memory_sensitivity: float = 0.0

    def __init__(
        self,
        scale: float = 1.0,
        granularity: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if not (0.0 < scale <= 1.0):
            raise ConfigurationError(f"scale must be in (0, 1], got {scale}")
        self.scale = scale
        self.seed = seed
        self._granularity = granularity if granularity is not None else self.optimal_granularity("software")
        if self._granularity not in {option.value for option in self.granularity_options()}:
            # Custom granularities are allowed (they are needed for sweeps
            # finer than the paper's), but must be positive.
            if self._granularity <= 0:
                raise ConfigurationError(f"granularity must be positive, got {granularity}")
        self._rng = random.Random(seed)
        self._uid = 0

    # ------------------------------------------------------------------ knobs
    @property
    def granularity(self) -> int:
        """Current granularity value (meaning is workload specific; see Fig. 6)."""
        return self._granularity

    @abc.abstractmethod
    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        """The granularity values swept in Figure 6 for this benchmark."""

    @abc.abstractmethod
    def optimal_granularity(self, runtime: str = "software") -> int:
        """The granularity used in the evaluation for ``runtime`` ('software'/'tdm')."""

    def with_granularity(self, granularity: int) -> "Workload":
        """A copy of this workload at a different granularity."""
        return type(self)(scale=self.scale, granularity=granularity, seed=self.seed)

    def for_runtime(self, runtime: str) -> "Workload":
        """A copy of this workload at the optimal granularity for ``runtime``."""
        return type(self)(
            scale=self.scale,
            granularity=self.optimal_granularity(runtime),
            seed=self.seed,
        )

    # ------------------------------------------------------------------ program
    @abc.abstractmethod
    def build_program(self) -> TaskProgram:
        """Generate the task program for the current parameters."""

    # ------------------------------------------------------------------ helpers
    def _reset(self) -> None:
        """Reset per-build state (uid counter and RNG) for reproducibility."""
        self._rng = random.Random(self.seed)
        self._uid = 0

    def _next_uid(self) -> int:
        uid = self._uid
        self._uid += 1
        return uid

    def _duration(self, base_us: float) -> float:
        """Base duration with a small deterministic jitter."""
        if base_us <= 0:
            return 0.0
        jitter = 1.0 + self._rng.uniform(-DURATION_JITTER, DURATION_JITTER)
        return base_us * jitter

    def _task(
        self,
        name: str,
        kind: str,
        work_us: float,
        dependences: Iterable[DependenceSpec] = (),
        creation_work_us: float = 0.0,
    ) -> TaskDefinition:
        """Create a :class:`TaskDefinition` with this workload's defaults."""
        return TaskDefinition(
            uid=self._next_uid(),
            name=name,
            kind=kind,
            work_us=self._duration(work_us),
            dependences=tuple(dependences),
            memory_sensitivity=self.memory_sensitivity,
            creation_work_us=creation_work_us,
        )

    def _scaled(self, value: int, minimum: int = 1, exponent: float = 1.0) -> int:
        """Scale an integer problem dimension by ``scale ** exponent``."""
        return max(minimum, int(round(value * (self.scale ** exponent))))

    def _program(self, regions: Sequence[TaskRegion], metadata: Optional[Dict[str, object]] = None) -> TaskProgram:
        meta: Dict[str, object] = {
            "workload": self.name,
            "granularity": self.granularity,
            "scale": self.scale,
            "memory_sensitivity": self.memory_sensitivity,
        }
        meta.update(metadata or {})
        return TaskProgram(name=self.name, regions=tuple(regions), metadata=meta)

    def _single_region(self, tasks: List[TaskDefinition], metadata: Optional[Dict[str, object]] = None) -> TaskProgram:
        return self._program([TaskRegion(tasks=tuple(tasks), name=f"{self.name}.region0")], metadata)

    # ------------------------------------------------------------------ info
    def describe(self) -> Dict[str, object]:
        """Summary of the generated program (used by Table II reproduction)."""
        program = self.build_program()
        return {
            "workload": self.name,
            "granularity": self.granularity,
            "scale": self.scale,
            "num_tasks": program.num_tasks,
            "average_task_us": program.average_task_us,
            "total_work_us": program.total_work_us,
            "num_regions": len(program.regions),
            "max_dependences_per_task": program.max_dependences_per_task(),
        }


def in_dep(address: int, size: int) -> DependenceSpec:
    """Shorthand for an input dependence."""
    return DependenceSpec(address=address, size=size, mode=AccessMode.IN)


def out_dep(address: int, size: int) -> DependenceSpec:
    """Shorthand for an output dependence."""
    return DependenceSpec(address=address, size=size, mode=AccessMode.OUT)


def inout_dep(address: int, size: int) -> DependenceSpec:
    """Shorthand for an inout dependence."""
    return DependenceSpec(address=address, size=size, mode=AccessMode.INOUT)
