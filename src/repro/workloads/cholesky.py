"""Cholesky factorization workload (Figure 1 of the paper).

Blocked right-looking Cholesky factorization of a dense 2048x2048 matrix.
Each iteration ``j`` of the outer loop creates ``sgemm`` updates, ``ssyrk``
updates of the diagonal block, one ``spotrf`` of the diagonal block and
``strsm`` panel solves, annotated exactly like the paper's Figure 1 code:

* ``sgemm``:  in A[i][k], A[j][k]; inout A[i][j]
* ``ssyrk``:  in A[j][i];          inout A[j][j]
* ``spotrf``:                      inout A[j][j]
* ``strsm``:  in A[j][j];          inout A[i][j]

With 32x32 blocks of 64x64 elements this yields 32*33*34/6 = 5984 tasks,
matching Table II.  The granularity knob is the block size in KB (Figure 6
sweeps 4 KB to 256 KB); task durations scale with the block volume.
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload
from .blocked_matrix import BlockedMatrix

#: Matrix dimension (elements per side) of the paper's input set.
MATRIX_ELEMENTS = 2048
ELEMENT_BYTES = 4
#: Reference durations (microseconds) for 64x64-element blocks (16 KB).
REFERENCE_BLOCK_ELEMENTS = 64
REFERENCE_DURATIONS_US = {"sgemm": 200.0, "ssyrk": 100.0, "strsm": 110.0, "spotrf": 66.0}
MATRIX_BASE_ADDRESS = 0x10_0000_0000


class CholeskyWorkload(Workload):
    """Tiled Cholesky decomposition of a dense matrix."""

    name = "cholesky"
    label = "cho"
    memory_sensitivity = 0.7

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(4, "4KB blocks"),
            GranularityOption(16, "16KB blocks"),
            GranularityOption(64, "64KB blocks"),
            GranularityOption(256, "256KB blocks"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        # Table II: Cholesky uses the same granularity (5984 tasks) for both.
        return 16

    # ------------------------------------------------------------------ geometry
    @property
    def block_elements(self) -> int:
        """Block side length in elements for the current granularity (KB)."""
        block_bytes = self.granularity * 1024
        side = int(round((block_bytes / ELEMENT_BYTES) ** 0.5))
        return max(1, side)

    @property
    def num_blocks(self) -> int:
        """Blocks per matrix side, after applying the scale factor."""
        full = max(2, MATRIX_ELEMENTS // self.block_elements)
        return self._scaled(full, minimum=2, exponent=1.0 / 3.0)

    def _kind_duration_us(self, kind: str) -> float:
        volume_ratio = (self.block_elements / REFERENCE_BLOCK_ELEMENTS) ** 3
        return REFERENCE_DURATIONS_US[kind] * volume_ratio

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        nb = self.num_blocks
        matrix = BlockedMatrix(
            base_address=MATRIX_BASE_ADDRESS,
            num_blocks=nb,
            block_bytes=self.block_elements * self.block_elements * ELEMENT_BYTES,
        )
        tasks = []
        for j in range(nb):
            for k in range(j):
                for i in range(j + 1, nb):
                    tasks.append(
                        self._task(
                            f"sgemm_{i}_{j}_{k}",
                            "sgemm",
                            self._kind_duration_us("sgemm"),
                            [matrix.read(i, k), matrix.read(j, k), matrix.update(i, j)],
                        )
                    )
            for k in range(j):
                tasks.append(
                    self._task(
                        f"ssyrk_{j}_{k}",
                        "ssyrk",
                        self._kind_duration_us("ssyrk"),
                        [matrix.read(j, k), matrix.update(j, j)],
                    )
                )
            tasks.append(
                self._task(
                    f"spotrf_{j}",
                    "spotrf",
                    self._kind_duration_us("spotrf"),
                    [matrix.update(j, j)],
                )
            )
            for i in range(j + 1, nb):
                tasks.append(
                    self._task(
                        f"strsm_{i}_{j}",
                        "strsm",
                        self._kind_duration_us("strsm"),
                        [matrix.read(j, j), matrix.update(i, j)],
                    )
                )
        return self._single_region(
            tasks,
            metadata={"num_blocks": nb, "block_elements": self.block_elements},
        )
