"""LU factorization workload.

Tiled LU decomposition (without pivoting) of a 2048x2048 matrix.  Every outer
iteration ``k`` factorizes the diagonal block, solves the row and column
panels against it and updates the trailing submatrix:

* ``getrf``:   inout A[k][k]
* ``trsm_row``: in A[k][k]; inout A[k][j]   (j > k)
* ``trsm_col``: in A[k][k]; inout A[i][k]   (i > k)
* ``gemm``:    in A[i][k], A[k][j]; inout A[i][j]   (i, j > k)

At 16x16 blocks of 128x128 elements this yields 1496 tasks; Table II reports
1512 for the paper's (sparse) LU, a 1% difference documented in
EXPERIMENTS.md.  The granularity knob is the block size in KB.
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload
from .blocked_matrix import BlockedMatrix

MATRIX_ELEMENTS = 2048
ELEMENT_BYTES = 4
#: Reference durations (microseconds) for 128x128-element blocks (64 KB).
REFERENCE_BLOCK_ELEMENTS = 128
REFERENCE_DURATIONS_US = {"gemm": 456.0, "trsm": 273.0, "getrf": 182.0}
MATRIX_BASE_ADDRESS = 0x20_0000_0000


class LUWorkload(Workload):
    """Tiled LU decomposition."""

    name = "lu"
    label = "LU"
    memory_sensitivity = 0.5

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(4, "4KB blocks"),
            GranularityOption(16, "16KB blocks"),
            GranularityOption(64, "64KB blocks"),
            GranularityOption(256, "256KB blocks"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        # Table II: LU uses the same granularity (and task count) for both.
        return 64

    # ------------------------------------------------------------------ geometry
    @property
    def block_elements(self) -> int:
        block_bytes = self.granularity * 1024
        return max(1, int(round((block_bytes / ELEMENT_BYTES) ** 0.5)))

    @property
    def num_blocks(self) -> int:
        full = max(2, MATRIX_ELEMENTS // self.block_elements)
        return self._scaled(full, minimum=2, exponent=1.0 / 3.0)

    def _kind_duration_us(self, kind: str) -> float:
        volume_ratio = (self.block_elements / REFERENCE_BLOCK_ELEMENTS) ** 3
        return REFERENCE_DURATIONS_US[kind] * volume_ratio

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        nb = self.num_blocks
        matrix = BlockedMatrix(
            base_address=MATRIX_BASE_ADDRESS,
            num_blocks=nb,
            block_bytes=self.block_elements * self.block_elements * ELEMENT_BYTES,
        )
        tasks = []
        for k in range(nb):
            tasks.append(
                self._task(
                    f"getrf_{k}",
                    "getrf",
                    self._kind_duration_us("getrf"),
                    [matrix.update(k, k)],
                )
            )
            for j in range(k + 1, nb):
                tasks.append(
                    self._task(
                        f"trsm_row_{k}_{j}",
                        "trsm",
                        self._kind_duration_us("trsm"),
                        [matrix.read(k, k), matrix.update(k, j)],
                    )
                )
            for i in range(k + 1, nb):
                tasks.append(
                    self._task(
                        f"trsm_col_{i}_{k}",
                        "trsm",
                        self._kind_duration_us("trsm"),
                        [matrix.read(k, k), matrix.update(i, k)],
                    )
                )
            for i in range(k + 1, nb):
                for j in range(k + 1, nb):
                    tasks.append(
                        self._task(
                            f"gemm_{i}_{j}_{k}",
                            "gemm",
                            self._kind_duration_us("gemm"),
                            [matrix.read(i, k), matrix.read(k, j), matrix.update(i, j)],
                        )
                    )
        return self._single_region(
            tasks,
            metadata={"num_blocks": nb, "block_elements": self.block_elements},
        )
