"""Histogram workload.

"Histogram computes a cumulative histogram for all pixels of an image"
(Section IV-B of the paper): a 4096x4096 image (64 MB) is split into blocks;
one leaf task per block computes a partial histogram, and a binary reduction
tree combines the partials into the final cumulative histogram.

The reduction pairs partial results that are far apart in creation order
(block ``i`` merges with block ``i + stride``), which gives the benchmark the
property the paper highlights in the design-space exploration: "its tasks
have a significant amount of dependences between them and the distance
between independent tasks is high", making it the benchmark most sensitive to
the TAT size (Figure 7).

The granularity knob is the image block size in KB; at the optimal 256 KB
blocks the generator produces 256 leaves + 255 reduction tasks = 511 tasks
(Table II reports 512 at 3824 us).
"""

from __future__ import annotations

from typing import List, Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload, in_dep, out_dep

IMAGE_BYTES = 64 * 1024 * 1024
IMAGE_BASE_ADDRESS = 0x60_0000_0000
PARTIAL_BASE_ADDRESS = 0x68_0000_0000
PARTIAL_BYTES = 4096
#: Leaf duration at the 256 KB reference block (microseconds).
REFERENCE_LEAF_US = 7200.0
REFERENCE_BLOCK_KB = 256
REDUCE_US = 430.0


class HistogramWorkload(Workload):
    """Per-block histograms followed by a binary reduction tree."""

    name = "histogram"
    label = "hist"
    memory_sensitivity = 0.6

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(16, "16KB blocks"),
            GranularityOption(64, "64KB blocks"),
            GranularityOption(256, "256KB blocks"),
            GranularityOption(1024, "1MB blocks"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        return REFERENCE_BLOCK_KB

    # ------------------------------------------------------------------ geometry
    @property
    def num_blocks(self) -> int:
        full = max(2, IMAGE_BYTES // (self.granularity * 1024))
        return self._scaled(full, minimum=2)

    @property
    def leaf_duration_us(self) -> float:
        return REFERENCE_LEAF_US * self.granularity / REFERENCE_BLOCK_KB

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        blocks = self.num_blocks
        block_bytes = self.granularity * 1024
        tasks = []

        def partial_address(index: int) -> int:
            return PARTIAL_BASE_ADDRESS + index * PARTIAL_BYTES

        # Leaf tasks: one partial histogram per image block.
        live: List[int] = []
        for block in range(blocks):
            image_address = IMAGE_BASE_ADDRESS + block * block_bytes
            tasks.append(
                self._task(
                    f"hist_leaf_{block}",
                    "leaf",
                    self.leaf_duration_us,
                    [in_dep(image_address, block_bytes), out_dep(partial_address(block), PARTIAL_BYTES)],
                )
            )
            live.append(block)

        # Binary reduction tree over partials that are far apart in creation
        # order (long dependence distance).
        next_partial = blocks
        while len(live) > 1:
            half = len(live) // 2
            merged: List[int] = []
            for index in range(half):
                left = live[index]
                right = live[index + half]
                tasks.append(
                    self._task(
                        f"hist_reduce_{next_partial}",
                        "reduce",
                        REDUCE_US,
                        [
                            in_dep(partial_address(left), PARTIAL_BYTES),
                            in_dep(partial_address(right), PARTIAL_BYTES),
                            out_dep(partial_address(next_partial), PARTIAL_BYTES),
                        ],
                    )
                )
                merged.append(next_partial)
                next_partial += 1
            if len(live) % 2:
                merged.append(live[-1])
            live = merged
        return self._single_region(tasks, metadata={"blocks": blocks})
