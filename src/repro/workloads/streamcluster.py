"""Streamcluster workload (PARSECSs).

Streamcluster solves an online clustering problem with fork-join parallelism:
every evaluation of a candidate centre fans a batch of points out over
independent tasks and joins before the next decision.  The generator models
this as a sequence of parallel regions (the fork-join barriers), each region
containing one independent task per block of points.

The granularity knob of Figure 6 is the number of points processed per task;
at the optimal 256 points per task the generator produces about 410 rounds
of 102 tasks = 41 820 tasks of 376 us (Table II reports 42 115), the largest
task count of the benchmark suite.
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram, TaskRegion
from .base import GranularityOption, Workload, in_dep, out_dep

#: Points evaluated per fork-join round.
POINTS_PER_ROUND = 26_112
NUM_ROUNDS = 410
REFERENCE_POINTS_PER_TASK = 256
#: Duration of a task processing 256 points (Table II).
REFERENCE_DURATION_US = 376.0
POINT_BASE_ADDRESS = 0x70_0000_0000
RESULT_BASE_ADDRESS = 0x78_0000_0000
BYTES_PER_POINT = 64
RESULT_BYTES = 256


class StreamclusterWorkload(Workload):
    """Fork-join rounds of independent point-evaluation tasks."""

    name = "streamcluster"
    label = "str"
    memory_sensitivity = 0.3

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(64, "64 points/task"),
            GranularityOption(128, "128 points/task"),
            GranularityOption(256, "256 points/task"),
            GranularityOption(512, "512 points/task"),
            GranularityOption(1024, "1024 points/task"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        return REFERENCE_POINTS_PER_TASK

    # ------------------------------------------------------------------ geometry
    @property
    def tasks_per_round(self) -> int:
        return max(1, POINTS_PER_ROUND // self.granularity)

    @property
    def num_rounds(self) -> int:
        return self._scaled(NUM_ROUNDS, minimum=2)

    @property
    def task_duration_us(self) -> float:
        return REFERENCE_DURATION_US * self.granularity / REFERENCE_POINTS_PER_TASK

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        regions = []
        tasks_per_round = self.tasks_per_round
        block_bytes = self.granularity * BYTES_PER_POINT
        for round_index in range(self.num_rounds):
            tasks = []
            for block in range(tasks_per_round):
                point_address = POINT_BASE_ADDRESS + block * block_bytes
                result_address = RESULT_BASE_ADDRESS + (round_index % 2) * 0x100_0000 + block * RESULT_BYTES
                tasks.append(
                    self._task(
                        f"str_{round_index}_{block}",
                        "gain",
                        self.task_duration_us,
                        [in_dep(point_address, block_bytes), out_dep(result_address, RESULT_BYTES)],
                    )
                )
            regions.append(TaskRegion(tasks=tuple(tasks), name=f"round{round_index}"))
        return self._program(
            regions,
            metadata={"rounds": self.num_rounds, "tasks_per_round": tasks_per_round},
        )
