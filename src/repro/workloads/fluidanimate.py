"""Fluidanimate workload (PARSECSs).

Fluidanimate is a smoothed-particle-hydrodynamics simulation parallelized as
a 3D stencil: the volume is split into partitions, every timestep updates
each partition (inout) using the state of its neighbouring partitions (in),
and timesteps repeat.  The granularity knob of Figure 6 is the *number of
partitions* of the 3D volume (more partitions = finer tasks); the paper's
optimal configuration uses 128 partitions over 20 timesteps = 2560 tasks of
1804 us (Table II).

Partitions are arranged as slabs, so each task reads its two neighbours —
the classic 1D-decomposed 3D stencil the PARSECSs implementation uses.
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload, in_dep, inout_dep

REFERENCE_PARTITIONS = 128
NUM_TIMESTEPS = 20
#: Total simulation work per timestep, in microseconds (128 x 1804 us).
WORK_PER_TIMESTEP_US = REFERENCE_PARTITIONS * 1804.0
PARTITION_BASE_ADDRESS = 0x50_0000_0000
PARTITION_BYTES = 512 * 1024


class FluidanimateWorkload(Workload):
    """3D-stencil particle simulation over partitioned slabs."""

    name = "fluidanimate"
    label = "flu"
    memory_sensitivity = 0.5

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(256, "256 partitions"),
            GranularityOption(128, "128 partitions"),
            GranularityOption(64, "64 partitions"),
            GranularityOption(32, "32 partitions"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        return REFERENCE_PARTITIONS

    # ------------------------------------------------------------------ geometry
    @property
    def num_partitions(self) -> int:
        return self._scaled(self.granularity, minimum=2)

    @property
    def num_timesteps(self) -> int:
        return self._scaled(NUM_TIMESTEPS, minimum=2)

    @property
    def task_duration_us(self) -> float:
        return WORK_PER_TIMESTEP_US / self.granularity

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        partitions = self.num_partitions
        timesteps = self.num_timesteps
        tasks = []

        def partition_address(index: int) -> int:
            return PARTITION_BASE_ADDRESS + index * PARTITION_BYTES

        for _step in range(timesteps):
            for part in range(partitions):
                deps = [inout_dep(partition_address(part), PARTITION_BYTES)]
                if part > 0:
                    deps.append(in_dep(partition_address(part - 1), PARTITION_BYTES))
                if part < partitions - 1:
                    deps.append(in_dep(partition_address(part + 1), PARTITION_BYTES))
                tasks.append(
                    self._task(
                        f"flu_{_step}_{part}",
                        "stencil",
                        self.task_duration_us,
                        deps,
                    )
                )
        return self._single_region(
            tasks,
            metadata={"partitions": partitions, "timesteps": timesteps},
        )
