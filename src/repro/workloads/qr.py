"""QR factorization workload.

Tiled Householder QR factorization of a dense 1024x1024 matrix (the paper's
input set), using the standard tile algorithm:

* ``geqrt``:  inout A[k][k]; out T[k][k]
* ``unmqr``:  in A[k][k], T[k][k]; inout A[k][j]          (j > k)
* ``tsqrt``:  inout A[k][k]; inout A[i][k]; out T[i][k]   (i > k)
* ``tsmqr``:  in A[i][k], T[i][k]; inout A[k][j], A[i][j] (i, j > k)

At 16x16 tiles of 64x64 elements this yields 1496 tasks (the software
runtime's optimal granularity in Table II); at 32x32 tiles of 32x32 elements
it yields 11440 tasks (the granularity TDM uses).  QR is the benchmark where
fine-grained tasking pays off the most — and where software task-creation
overheads hurt the most — because the panel factorization serializes each
column and only small tiles expose enough parallelism for 32 cores.
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload
from .blocked_matrix import BlockedMatrix

MATRIX_ELEMENTS = 1024
ELEMENT_BYTES = 4
#: Reference durations (microseconds) for 64x64-element tiles (16 KB).
REFERENCE_BLOCK_ELEMENTS = 64
REFERENCE_DURATIONS_US = {
    "tsmqr": 1088.0,
    "unmqr": 544.0,
    "tsqrt": 598.0,
    "geqrt": 326.0,
}
MATRIX_BASE_ADDRESS = 0x30_0000_0000
REFLECTOR_BASE_ADDRESS = 0x38_0000_0000


class QRWorkload(Workload):
    """Tiled Householder QR factorization."""

    name = "qr"
    label = "QR"
    memory_sensitivity = 0.4

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (
            GranularityOption(2, "2KB tiles"),
            GranularityOption(4, "4KB tiles"),
            GranularityOption(16, "16KB tiles"),
            GranularityOption(64, "64KB tiles"),
            GranularityOption(256, "256KB tiles"),
        )

    def optimal_granularity(self, runtime: str = "software") -> int:
        # Table II: software uses 16 KB tiles (1496 tasks), TDM 4 KB (11440).
        return 4 if runtime == "tdm" else 16

    # ------------------------------------------------------------------ geometry
    @property
    def block_elements(self) -> int:
        block_bytes = self.granularity * 1024
        return max(1, int(round((block_bytes / ELEMENT_BYTES) ** 0.5)))

    @property
    def num_blocks(self) -> int:
        full = max(2, MATRIX_ELEMENTS // self.block_elements)
        return self._scaled(full, minimum=2, exponent=1.0 / 3.0)

    def _kind_duration_us(self, kind: str) -> float:
        volume_ratio = (self.block_elements / REFERENCE_BLOCK_ELEMENTS) ** 3
        return REFERENCE_DURATIONS_US[kind] * volume_ratio

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        nb = self.num_blocks
        block_bytes = self.block_elements * self.block_elements * ELEMENT_BYTES
        matrix = BlockedMatrix(MATRIX_BASE_ADDRESS, nb, block_bytes, name="A")
        reflectors = BlockedMatrix(REFLECTOR_BASE_ADDRESS, nb, block_bytes, name="T")
        tasks = []
        for k in range(nb):
            tasks.append(
                self._task(
                    f"geqrt_{k}",
                    "geqrt",
                    self._kind_duration_us("geqrt"),
                    [matrix.update(k, k), reflectors.write(k, k)],
                )
            )
            for j in range(k + 1, nb):
                tasks.append(
                    self._task(
                        f"unmqr_{k}_{j}",
                        "unmqr",
                        self._kind_duration_us("unmqr"),
                        [matrix.read(k, k), reflectors.read(k, k), matrix.update(k, j)],
                    )
                )
            for i in range(k + 1, nb):
                tasks.append(
                    self._task(
                        f"tsqrt_{i}_{k}",
                        "tsqrt",
                        self._kind_duration_us("tsqrt"),
                        [matrix.update(k, k), matrix.update(i, k), reflectors.write(i, k)],
                    )
                )
                for j in range(k + 1, nb):
                    tasks.append(
                        self._task(
                            f"tsmqr_{i}_{j}_{k}",
                            "tsmqr",
                            self._kind_duration_us("tsmqr"),
                            [
                                matrix.read(i, k),
                                reflectors.read(i, k),
                                matrix.update(k, j),
                                matrix.update(i, j),
                            ],
                        )
                    )
        return self._single_region(
            tasks,
            metadata={"num_blocks": nb, "block_elements": self.block_elements},
        )
