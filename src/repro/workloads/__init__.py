"""Benchmark task-graph generators.

The paper evaluates nine task-based benchmarks (Section IV-B): five from
PARSECSs (Blackscholes, Dedup, Ferret, Fluidanimate, Streamcluster) and four
HPC kernels (Cholesky, Histogram, LU, QR).  Running the original binaries is
impossible in this environment, so each benchmark is re-created as a
*task-dependence-graph generator* that reproduces its parallelization
strategy, its dependence structure, its published task count and average
task duration (Table II), and its granularity knob (Figure 6).

All generators derive from :class:`~repro.workloads.base.Workload` and are
instantiated by name through :func:`~repro.workloads.registry.create_workload`.
"""

from .base import GranularityOption, Workload
from .blocked_matrix import BlockedMatrix
from .blackscholes import BlackscholesWorkload
from .cholesky import CholeskyWorkload
from .dedup import DedupWorkload
from .ferret import FerretWorkload
from .fluidanimate import FluidanimateWorkload
from .histogram import HistogramWorkload
from .lu import LUWorkload
from .qr import QRWorkload
from .streamcluster import StreamclusterWorkload
from .synthetic import chain_program, fork_join_program, random_dag_program
from .registry import (
    PAPER_BENCHMARKS,
    PAPER_LABELS,
    PAPER_TABLE2,
    available_workloads,
    create_workload,
    register_workload,
)

__all__ = [
    "Workload",
    "GranularityOption",
    "BlockedMatrix",
    "BlackscholesWorkload",
    "CholeskyWorkload",
    "DedupWorkload",
    "FerretWorkload",
    "FluidanimateWorkload",
    "HistogramWorkload",
    "LUWorkload",
    "QRWorkload",
    "StreamclusterWorkload",
    "chain_program",
    "fork_join_program",
    "random_dag_program",
    "PAPER_BENCHMARKS",
    "PAPER_LABELS",
    "PAPER_TABLE2",
    "available_workloads",
    "create_workload",
    "register_workload",
]
