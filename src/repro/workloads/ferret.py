"""Ferret workload (PARSECSs).

Ferret performs content-based image similarity search with a six-stage
pipeline (load, segment, extract, vectorize, rank, output).  Each query
flows through the six stages; consecutive stages of the same query exchange a
buffer (out -> in dependence) and the final output stage is serialized on the
result file (inout), exactly the pipeline-parallel pattern PARSECSs uses.

The task granularity is fixed (one task per stage and query), so Ferret does
not appear in the Figure 6 sweep.  At full scale the generator produces
256 queries x 6 stages = 1536 tasks averaging about 7.7 ms (Table II).
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload, in_dep, inout_dep, out_dep

NUM_QUERIES = 256
#: Stage durations in microseconds (load, segment, extract, vectorize, rank, output).
#: The serialized output stage is short relative to the compute stages, so the
#: pipeline is compute bound and scheduler choice matters little — matching
#: the paper, where Ferret shows minimal speedup and EDP improvements.
STAGE_DURATIONS_US = (
    ("load", 2_000.0),
    ("segment", 8_000.0),
    ("extract", 12_000.0),
    ("vectorize", 16_500.0),
    ("rank", 7_000.0),
    ("output", 500.0),
)
QUERY_BASE_ADDRESS = 0x90_0000_0000
BUFFER_BASE_ADDRESS = 0x98_0000_0000
RESULT_FILE_ADDRESS = 0x9F_0000_0000
QUERY_BYTES = 512 * 1024
BUFFER_BYTES = 256 * 1024
RESULT_BYTES = 4096


class FerretWorkload(Workload):
    """Six-stage image-similarity pipeline with a serialized output stage."""

    name = "ferret"
    label = "fer"
    memory_sensitivity = 0.3

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        return (GranularityOption(1, "one task per pipeline stage"),)

    def optimal_granularity(self, runtime: str = "software") -> int:
        return 1

    @property
    def num_queries(self) -> int:
        # As with Dedup, the pipeline depth is structural: the scale factor
        # shrinks stage durations rather than the number of queries.
        return NUM_QUERIES

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        tasks = []
        num_stages = len(STAGE_DURATIONS_US)
        for query in range(self.num_queries):
            query_address = QUERY_BASE_ADDRESS + query * QUERY_BYTES
            for stage_index, (stage_name, duration_us) in enumerate(STAGE_DURATIONS_US):
                buffer_in = BUFFER_BASE_ADDRESS + (query * num_stages + stage_index - 1) * BUFFER_BYTES
                buffer_out = BUFFER_BASE_ADDRESS + (query * num_stages + stage_index) * BUFFER_BYTES
                deps = []
                if stage_index == 0:
                    deps.append(in_dep(query_address, QUERY_BYTES))
                else:
                    deps.append(in_dep(buffer_in, BUFFER_BYTES))
                if stage_index == num_stages - 1:
                    deps.append(inout_dep(RESULT_FILE_ADDRESS, RESULT_BYTES))
                else:
                    deps.append(out_dep(buffer_out, BUFFER_BYTES))
                tasks.append(
                    self._task(
                        f"ferret_{stage_name}_{query}",
                        stage_name,
                        duration_us * self.scale,
                        deps,
                    )
                )
        return self._single_region(tasks, metadata={"queries": self.num_queries})
