"""Synthetic task programs for tests, examples and property-based checks.

Three generators are provided:

* :func:`chain_program` — independent chains of dependent tasks (the
  Blackscholes pattern at arbitrary size),
* :func:`fork_join_program` — waves of independent tasks separated by
  barriers,
* :func:`random_dag_program` — a random DAG with configurable edge density,
  used by the hypothesis-based tests to stress the dependence-tracking
  models with arbitrary (but acyclic) structures.
"""

from __future__ import annotations

import random
from typing import Optional

from ..runtime.task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskProgram,
    TaskRegion,
)

_CHAIN_BASE = 0xA0_0000_0000
_FORK_BASE = 0xB0_0000_0000
_DAG_BASE = 0xC0_0000_0000
_BLOCK = 4096


def chain_program(
    num_chains: int = 4,
    chain_length: int = 8,
    work_us: float = 100.0,
    name: str = "chains",
) -> TaskProgram:
    """Independent chains of in-place (inout) tasks."""
    if num_chains < 1 or chain_length < 1:
        raise ValueError("num_chains and chain_length must be >= 1")
    tasks = []
    uid = 0
    for step in range(chain_length):
        for chain in range(num_chains):
            address = _CHAIN_BASE + chain * 0x10_0000
            tasks.append(
                TaskDefinition(
                    uid=uid,
                    name=f"chain{chain}_{step}",
                    kind="chain",
                    work_us=work_us,
                    dependences=(DependenceSpec(address, _BLOCK, AccessMode.INOUT),),
                )
            )
            uid += 1
    region = TaskRegion(tasks=tuple(tasks), name=f"{name}.region0")
    return TaskProgram(name=name, regions=(region,), metadata={"chains": num_chains})


def fork_join_program(
    num_waves: int = 3,
    tasks_per_wave: int = 16,
    work_us: float = 100.0,
    name: str = "forkjoin",
) -> TaskProgram:
    """Waves of independent tasks, one parallel region (barrier) per wave."""
    if num_waves < 1 or tasks_per_wave < 1:
        raise ValueError("num_waves and tasks_per_wave must be >= 1")
    regions = []
    uid = 0
    for wave in range(num_waves):
        tasks = []
        for index in range(tasks_per_wave):
            input_address = _FORK_BASE + index * _BLOCK
            output_address = _FORK_BASE + 0x1000_0000 + (wave * tasks_per_wave + index) * _BLOCK
            tasks.append(
                TaskDefinition(
                    uid=uid,
                    name=f"wave{wave}_{index}",
                    kind="fork",
                    work_us=work_us,
                    dependences=(
                        DependenceSpec(input_address, _BLOCK, AccessMode.IN),
                        DependenceSpec(output_address, _BLOCK, AccessMode.OUT),
                    ),
                )
            )
            uid += 1
        regions.append(TaskRegion(tasks=tuple(tasks), name=f"wave{wave}"))
    return TaskProgram(name=name, regions=tuple(regions), metadata={"waves": num_waves})


def random_dag_program(
    num_tasks: int = 32,
    num_addresses: int = 12,
    dependences_per_task: int = 3,
    output_probability: float = 0.4,
    work_us: float = 50.0,
    seed: int = 0,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> TaskProgram:
    """A random (but reproducible) task DAG over a small set of data blocks.

    Tasks pick ``dependences_per_task`` random blocks; each is an output with
    ``output_probability`` and an input otherwise.  Because dependences are
    derived from data accesses in creation order, the resulting graph is
    always acyclic regardless of the random choices.

    All randomness comes from ``rng`` when given (``seed`` is then only a
    label in the program name/metadata) or from a private
    ``random.Random(seed)`` otherwise — never from module-level state, so
    two processes with the same arguments build identical programs.
    """
    if num_tasks < 1 or num_addresses < 1 or dependences_per_task < 0:
        raise ValueError("invalid random DAG parameters")
    rng = rng if rng is not None else random.Random(seed)
    tasks = []
    for uid in range(num_tasks):
        chosen = rng.sample(range(num_addresses), k=min(dependences_per_task, num_addresses))
        deps = []
        for block in chosen:
            address = _DAG_BASE + block * _BLOCK
            if rng.random() < output_probability:
                mode = AccessMode.OUT if rng.random() < 0.5 else AccessMode.INOUT
            else:
                mode = AccessMode.IN
            deps.append(DependenceSpec(address, _BLOCK, mode))
        tasks.append(
            TaskDefinition(
                uid=uid,
                name=f"dag_{uid}",
                kind="random",
                work_us=work_us * (0.5 + rng.random()),
                dependences=tuple(deps),
            )
        )
    region = TaskRegion(tasks=tuple(tasks), name="dag.region0")
    return TaskProgram(
        name=name or f"random_dag_{seed}",
        regions=(region,),
        metadata={"seed": seed, "addresses": num_addresses},
    )
