"""Dedup workload (PARSECSs).

Dedup compresses a data stream with pipeline parallelism.  The PARSECSs
version creates one compute-intensive task per chunk (fingerprinting +
compression) followed by a long I/O task that appends the compressed chunk to
the output file; the I/O tasks are serialized through an inout dependence on
the output stream (the paper: "I/O tasks cannot be executed in parallel,
which is enforced by means of control dependencies between them, so
overlapping I/O with compute tasks maximizes parallelism").

The task granularity is fixed by the application structure (one task per
pipeline stage and chunk), so the Figure 6 sweep does not include Dedup.  At
full scale the generator produces 122 compute + 122 I/O = 244 tasks with an
average duration of about 27.7 ms (Table II).
"""

from __future__ import annotations

from typing import Tuple

from ..runtime.task import TaskProgram
from .base import GranularityOption, Workload, in_dep, inout_dep, out_dep

NUM_CHUNKS = 122
COMPUTE_US = 54_200.0
IO_US = 1_200.0
INPUT_BASE_ADDRESS = 0x80_0000_0000
CHUNK_BASE_ADDRESS = 0x88_0000_0000
OUTPUT_STREAM_ADDRESS = 0x8F_0000_0000
CHUNK_BYTES = 2 * 1024 * 1024
COMPRESSED_BYTES = 1024 * 1024
OUTPUT_BYTES = 4096


class DedupWorkload(Workload):
    """Pipeline of compute (compress) tasks and serialized I/O tasks."""

    name = "dedup"
    label = "ded"
    memory_sensitivity = 0.2

    def granularity_options(self) -> Tuple[GranularityOption, ...]:
        # "In Dedup and Ferret the task granularity cannot be changed without
        # modifying the application" (Section IV-B).
        return (GranularityOption(1, "one task per pipeline stage"),)

    def optimal_granularity(self, runtime: str = "software") -> int:
        return 1

    @property
    def num_chunks(self) -> int:
        # The pipeline structure (number of chunks) is what makes scheduler
        # choice matter, so the scale factor shrinks task durations instead of
        # the chunk count.
        return NUM_CHUNKS

    # ------------------------------------------------------------------ program
    def build_program(self) -> TaskProgram:
        self._reset()
        tasks = []
        chunks = self.num_chunks
        for chunk in range(chunks):
            input_address = INPUT_BASE_ADDRESS + chunk * CHUNK_BYTES
            compressed_address = CHUNK_BASE_ADDRESS + chunk * COMPRESSED_BYTES
            tasks.append(
                self._task(
                    f"dedup_compress_{chunk}",
                    "compress",
                    COMPUTE_US * self.scale,
                    [in_dep(input_address, CHUNK_BYTES), out_dep(compressed_address, COMPRESSED_BYTES)],
                )
            )
            tasks.append(
                self._task(
                    f"dedup_write_{chunk}",
                    "io",
                    IO_US * self.scale,
                    [
                        in_dep(compressed_address, COMPRESSED_BYTES),
                        inout_dep(OUTPUT_STREAM_ADDRESS, OUTPUT_BYTES),
                    ],
                )
            )
        return self._single_region(tasks, metadata={"chunks": chunks})
