"""Bounded retry with deterministic exponential backoff.

:class:`RetryPolicy` is the single retry vocabulary of the campaign stack:
:meth:`CampaignEngine.run_many` requeues transiently-failed keys through it
(both the pool and the serial path), and the chaos suite asserts its bounds
(every key simulated at most ``max_attempts`` times).

**Transient vs permanent.**  A simulation is a pure function of its
canonical key, so a *deterministic* exception (a workload bug, a config
validation error) will recur on every attempt — retrying it only burns
time.  Only infrastructure failures are worth retrying: killed or hung pool
workers (surfaced as watchdog verdicts), OS-level errors, and injected
faults from :mod:`repro.reliability.faults`.  Classification is by exception
*type name* because pool workers report failures as serialized markers, not
live exception objects.

**Deterministic jitter.**  Backoff delays are jittered from an explicit
``random.Random`` seeded by ``(policy seed, key, attempt)`` — no global RNG,
no wall clock — so two runs of the same campaign back off identically and a
thundering herd of shard workers still decorrelates per key.  Delays shape
*scheduling only*; results and rendered bytes are unaffected
(``docs/determinism.md``).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import FrozenSet

#: Exception type names classified transient: worker-process casualties
#: (watchdog verdicts), OS/infrastructure errors and injected faults.
TRANSIENT_ERROR_TYPES: FrozenSet[str] = frozenset(
    {
        "WorkerTimeout",
        "WorkerCrash",
        "WorkerStall",
        "BrokenProcessPool",
        "InjectedFault",
        "OSError",
        "IOError",
        "ConnectionError",
        "ConnectionResetError",
        "BrokenPipeError",
        "EOFError",
        "MemoryError",
        "TimeoutError",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with capped exponential backoff and seeded jitter."""

    #: Total attempts per key, including the first (1 = never retry).
    max_attempts: int = 3
    #: Delay before attempt 2; doubles per further attempt.
    base_delay_s: float = 0.05
    #: Upper bound on any single delay.
    max_delay_s: float = 2.0
    #: Fractional jitter: the delay is scaled by ``1 + jitter * u`` with
    #: ``u`` drawn from the per-(key, attempt) seeded RNG.
    jitter: float = 0.25
    #: Mixed into the jitter RNG so distinct campaigns decorrelate.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be >= 0")

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy with ``REPRO_RETRY_MAX`` / ``REPRO_RETRY_DELAY_S`` overrides."""
        kwargs = {}
        raw = os.environ.get("REPRO_RETRY_MAX", "").strip()
        if raw:
            kwargs["max_attempts"] = int(raw)
        raw = os.environ.get("REPRO_RETRY_DELAY_S", "").strip()
        if raw:
            kwargs["base_delay_s"] = float(raw)
        return cls(**kwargs)

    def transient(self, error_type: str) -> bool:
        """Whether an error (by type name) is worth another attempt."""
        return error_type in TRANSIENT_ERROR_TYPES

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` completed attempts used up the budget."""
        return attempts >= self.max_attempts

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retrying ``key`` after its ``attempt``-th failure.

        Deterministic in (seed, key, attempt): exponential in the attempt
        number, capped at :attr:`max_delay_s`, scaled by seeded jitter.
        """
        if attempt < 1:
            return 0.0
        base = min(self.max_delay_s, self.base_delay_s * (2.0 ** (attempt - 1)))
        if not self.jitter or not base:
            return base
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return min(self.max_delay_s, base * (1.0 + self.jitter * rng.random()))
