"""Seeded, deterministic fault injection for chaos testing the campaign.

A *fault plan* is parsed from a comma-separated spec (the ``REPRO_FAULTS``
environment variable or the ``--faults`` CLI flag)::

    crash@sim:key%7,hang@cache-read:2,corrupt@commit:1

Each entry is ``kind@site[:selector][xT]``:

* **kind** — what happens when the fault fires:

  - ``crash``   — the process exits immediately via ``os._exit`` (the moral
    equivalent of a SIGKILL mid-task: no cleanup, no exception);
  - ``hang``    — the call sleeps for the plan's hang duration
    (``REPRO_FAULTS_HANG_S``, default 30 s) and then continues;
  - ``error``   — raises :class:`InjectedFault` (a classified-transient
    exception, exercising the retry path without killing anything);
  - ``corrupt`` — returned to the instrumented call site, which applies a
    site-appropriate corruption (e.g. truncating the cache entry bytes).

* **site** — a named instrumentation point (:data:`FAULT_SITES`):
  ``sim`` (worker simulation body), ``cache-read`` (:meth:`ResultCache.get`),
  ``commit`` (cache entry publication, *between* tmp write and rename —
  a ``crash`` here leaves an orphaned ``*.tmp`` file), ``merge``
  (:func:`merge_shards`), ``claim`` (work-stealing claim acquisition) and
  ``serve`` (daemon request handling).

* **selector** — when the fault fires.  ``:N`` fires on the N-th hit of the
  site in this process (a per-site counter); ``:key%M`` fires for every key
  whose hex digest satisfies ``int(key, 16) % M == 0`` (``key%M=R`` selects
  residue ``R`` instead).  Omitted → fires on every hit.

* **xT** — fire on attempts 1..T of a key (default ``x1``).  Faults are
  attempt-gated so that a retried key succeeds on its second attempt and
  the recovered campaign converges to the fault-free bytes; ``xT`` with a
  large ``T`` makes a *permanent* fault for exhaustion tests.

Determinism: selectors are pure functions of (site counter, key, attempt) —
no wall clock, no RNG — so a fault plan replays identically across runs and
the chaos suite can assert exact recovery behavior.

The no-plan fast path is two attribute loads and a ``None`` compare, so the
instrumented hot paths (cache reads, commits) pay nothing measurable when
``REPRO_FAULTS`` is unset — ``scripts/bench_smoke.py`` records this in
``BENCH_campaign.json``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ExperimentError

#: Exit status a ``crash`` fault dies with (distinguishable from real
#: segfaults and Python tracebacks in pool post-mortems).
CRASH_EXIT_CODE = 86

FAULT_KINDS = ("crash", "hang", "error", "corrupt")

FAULT_SITES = ("sim", "cache-read", "commit", "merge", "claim", "serve")

#: Default sleep of a ``hang`` fault; long enough that any realistic
#: watchdog deadline trips first.
DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(ExperimentError):
    """Raised by an ``error``-kind fault (classified transient by retry)."""


@dataclass
class Fault:
    """One parsed fault: kind, site, firing rule, and a fired counter."""

    kind: str
    site: str
    #: Fire on exactly the N-th hit of the site (per process); None = every.
    nth: Optional[int] = None
    #: Fire when ``int(key, 16) % modulo == residue``; None = key-blind.
    modulo: Optional[int] = None
    residue: int = 0
    #: Fire on attempts 1..times of a key (1 = first attempt only).
    times: int = 1
    fired: int = 0

    def matches(self, count: int, key: Optional[str], attempt: int) -> bool:
        if attempt > self.times:
            return False
        if self.nth is not None and count != self.nth:
            return False
        if self.modulo is not None:
            if key is None:
                return False
            try:
                value = int(key, 16)
            except ValueError:
                return False
            if value % self.modulo != self.residue:
                return False
        return True

    def describe(self) -> str:
        selector = ""
        if self.nth is not None:
            selector = f":{self.nth}"
        elif self.modulo is not None:
            selector = f":key%{self.modulo}"
            if self.residue:
                selector += f"={self.residue}"
        suffix = f"x{self.times}" if self.times != 1 else ""
        return f"{self.kind}@{self.site}{selector}{suffix}"


class FaultPlan:
    """A parsed set of faults plus per-site hit counters."""

    def __init__(self, faults: List[Fault], spec: str,
                 hang_seconds: Optional[float] = None) -> None:
        self.faults = list(faults)
        self.spec = spec
        if hang_seconds is None:
            hang_seconds = float(os.environ.get("REPRO_FAULTS_HANG_S", "")
                                 or DEFAULT_HANG_SECONDS)
        self.hang_seconds = hang_seconds
        self._counts: Dict[str, int] = {}
        self._by_site: Dict[str, List[Fault]] = {}
        for fault in self.faults:
            self._by_site.setdefault(fault.site, []).append(fault)

    def fire(self, site: str, key: Optional[str], attempt: int) -> Optional[Fault]:
        """The first fault matching this hit of ``site``, counting the hit."""
        candidates = self._by_site.get(site)
        if not candidates:
            return None
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        for fault in candidates:
            if fault.matches(count, key, attempt):
                fault.fired += 1
                return fault
        return None

    def describe(self) -> str:
        return ",".join(fault.describe() for fault in self.faults)


def _parse_selector(fault: Fault, selector: str, entry: str) -> None:
    if selector.startswith("key%"):
        spec = selector[len("key%"):]
        modulo, _, residue = spec.partition("=")
        try:
            fault.modulo = int(modulo)
            fault.residue = int(residue) if residue else 0
        except ValueError:
            raise ExperimentError(f"malformed fault selector in {entry!r}") from None
        if fault.modulo < 1 or not (0 <= fault.residue < fault.modulo):
            raise ExperimentError(f"fault selector out of range in {entry!r}")
        return
    try:
        fault.nth = int(selector)
    except ValueError:
        raise ExperimentError(
            f"malformed fault selector in {entry!r} (use :N or :key%M[=R])"
        ) from None
    if fault.nth < 1:
        raise ExperimentError(f"fault occurrence must be >= 1 in {entry!r}")


def parse_faults(spec: str, hang_seconds: Optional[float] = None) -> FaultPlan:
    """Parse a ``kind@site[:selector][xT],...`` spec into a :class:`FaultPlan`."""
    faults: List[Fault] = []
    for entry in (part.strip() for part in spec.split(",")):
        if not entry:
            continue
        head, _, tail = entry.partition("@")
        if not tail:
            raise ExperimentError(
                f"malformed fault {entry!r} (expected kind@site[:selector][xT])"
            )
        kind = head.strip().lower()
        if kind not in FAULT_KINDS:
            raise ExperimentError(
                f"unknown fault kind {kind!r} in {entry!r} "
                f"(one of {', '.join(FAULT_KINDS)})"
            )
        site, _, selector = tail.partition(":")
        times = 1
        # The xT attempt suffix binds to the last component present.
        carrier = selector if selector else site
        base, x, repeat = carrier.rpartition("x")
        if x and repeat.isdigit():
            times = int(repeat)
            if times < 1:
                raise ExperimentError(f"fault attempt count must be >= 1 in {entry!r}")
            carrier = base
            if selector:
                selector = carrier
            else:
                site = carrier
        site = site.strip().lower()
        if site not in FAULT_SITES:
            raise ExperimentError(
                f"unknown fault site {site!r} in {entry!r} "
                f"(one of {', '.join(FAULT_SITES)})"
            )
        fault = Fault(kind=kind, site=site, times=times)
        if selector:
            _parse_selector(fault, selector.strip(), entry)
        faults.append(fault)
    if not faults:
        raise ExperimentError(f"empty fault spec {spec!r}")
    return FaultPlan(faults, spec, hang_seconds=hang_seconds)


# --------------------------------------------------------------------------
# Process-wide active plan.  ``_LOADED`` makes the no-faults fast path two
# module-global reads; the environment is consulted exactly once.
# --------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_LOADED = False


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan (lazily loaded from ``REPRO_FAULTS``)."""
    global _PLAN, _LOADED
    if not _LOADED:
        _LOADED = True
        spec = os.environ.get("REPRO_FAULTS", "").strip()
        if spec:
            _PLAN = parse_faults(spec)
    return _PLAN


def active_spec() -> Optional[str]:
    """The active plan's spec string (forwarded to pool workers), or None."""
    plan = active_plan()
    return plan.spec if plan is not None else None


def install_plan(plan: Optional[FaultPlan | str]) -> Optional[FaultPlan]:
    """Install (or with None, clear) the process-wide fault plan.

    Accepts a parsed plan or a spec string.  The CLI installs ``--faults``
    here; pool workers install the spec forwarded in their payload; tests
    install and clear plans around chaos scenarios.
    """
    global _PLAN, _LOADED
    if isinstance(plan, str):
        plan = parse_faults(plan)
    _PLAN = plan
    _LOADED = True
    return plan


def ensure_plan(spec: str) -> FaultPlan:
    """Install ``spec`` unless an identical plan is already active.

    Worker-side idempotent install: under the fork start method a worker
    inherits the parent's plan (same spec), which must keep its counters
    rather than being re-parsed per task.
    """
    plan = active_plan()
    if plan is not None and plan.spec == spec:
        return plan
    return install_plan(spec)  # type: ignore[return-value]


def maybe_fault(
    site: str, key: Optional[str] = None, attempt: int = 1
) -> Optional[Fault]:
    """Fire any matching fault at ``site`` for ``key``/``attempt``.

    ``crash`` exits the process, ``hang`` sleeps then returns the fault,
    ``error`` raises :class:`InjectedFault`; ``corrupt`` (and a finished
    ``hang``) is returned so the call site applies its own corruption.
    Returns None — at near-zero cost — when no plan is active.
    """
    plan = _PLAN if _LOADED else active_plan()
    if plan is None:
        return None
    fault = plan.fire(site, key, attempt)
    if fault is None:
        return None
    if fault.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if fault.kind == "hang":
        time.sleep(plan.hang_seconds)
        return fault
    if fault.kind == "error":
        raise InjectedFault(
            f"injected fault {fault.describe()} "
            f"(key={key[:12] + '…' if key else None}, attempt={attempt})"
        )
    return fault
