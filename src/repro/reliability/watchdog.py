"""Heartbeat files and cost-model deadlines for hung-worker detection.

``multiprocessing.Pool`` has a blind spot the campaign cannot tolerate: a
worker SIGKILL'd mid-task is silently respawned, but its task is never
completed nor failed — ``pool.map`` waits forever.  A hung simulation stalls
the merge the same way.  The watchdog turns both into the same observable:

* every worker writes a **heartbeat file** (``hb-<pid>.json`` in a per-batch
  directory) naming the key it started and when;
* the parent derives a **per-key deadline** from the campaign cost model's
  predicted wall seconds times a slack factor (floored by a minimum, so
  cheap runs on a loaded machine are not false positives);
* a key whose heartbeat is older than its deadline — whether the worker is
  hung *or* dead — is reported overdue; the engine terminates the pool,
  strikes the overdue keys and requeues the rest without penalty.

Heartbeats are written atomically (tmp + ``os.replace``) so the parent never
parses a torn file.  Deadlines shape scheduling only: a killed-and-retried
key commits the identical result bytes (``docs/determinism.md``).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, Optional, Union

HEARTBEAT_PREFIX = "hb-"


@dataclass(frozen=True)
class WatchdogConfig:
    """Deadline shaping knobs (env-overridable for chaos smokes)."""

    #: Multiplier on the cost model's predicted wall seconds.
    slack: float = 8.0
    #: Floor on any deadline — predictions for smoke-scale runs are tiny
    #: and machine load must not look like a hang.
    min_seconds: float = 30.0
    #: Parent-side completion/heartbeat poll cadence.
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.slack <= 0 or self.min_seconds < 0 or self.poll_interval_s <= 0:
            raise ValueError("watchdog slack/min_seconds/poll_interval_s out of range")

    @classmethod
    def from_env(cls) -> "WatchdogConfig":
        """Config with ``REPRO_WATCHDOG_SLACK`` / ``REPRO_WATCHDOG_MIN_S`` applied."""
        kwargs = {}
        raw = os.environ.get("REPRO_WATCHDOG_SLACK", "").strip()
        if raw:
            kwargs["slack"] = float(raw)
        raw = os.environ.get("REPRO_WATCHDOG_MIN_S", "").strip()
        if raw:
            kwargs["min_seconds"] = float(raw)
        return cls(**kwargs)


def write_heartbeat(directory: Union[str, pathlib.Path], key: str,
                    attempt: int = 1) -> None:
    """Record (atomically) that this process started simulating ``key``.

    Called by pool workers at the top of the simulation body; one file per
    worker pid, overwritten per task.  Failures are swallowed — a heartbeat
    that cannot be written only degrades hang detection for that task, it
    must never fail the simulation itself.
    """
    path = pathlib.Path(directory) / f"{HEARTBEAT_PREFIX}{os.getpid()}.json"
    document = {"pid": os.getpid(), "key": key, "attempt": attempt,
                "started": time.time()}
    try:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(document), encoding="utf-8")
        os.replace(tmp, path)
    except OSError:
        pass


def read_heartbeats(directory: Union[str, pathlib.Path]) -> Dict[str, float]:
    """key -> earliest observed start time, from every heartbeat file.

    Torn or vanished files are skipped (workers overwrite concurrently).
    When two workers ever claimed one key (a requeue raced a slow worker)
    the earliest start wins — the conservative choice for deadlines.
    """
    started: Dict[str, float] = {}
    root = pathlib.Path(directory)
    try:
        files = list(root.glob(f"{HEARTBEAT_PREFIX}*.json"))
    except OSError:
        return started
    for path in files:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            key = document["key"]
            when = float(document["started"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue
        if key not in started or when < started[key]:
            started[key] = when
    return started


class Watchdog:
    """Owns a heartbeat directory and judges overdue keys against deadlines."""

    def __init__(
        self,
        config: Optional[WatchdogConfig] = None,
        cost_model: Optional[object] = None,
        directory: Optional[Union[str, pathlib.Path]] = None,
    ) -> None:
        self.config = config or WatchdogConfig()
        #: A ``CampaignCostModel`` duck (``predict(resolved) -> seconds``);
        #: None degrades every deadline to the configured floor.
        self.cost_model = cost_model
        self._owns_directory = directory is None
        self.directory = pathlib.Path(
            directory if directory is not None else tempfile.mkdtemp(prefix="repro-hb-")
        )
        self.directory.mkdir(parents=True, exist_ok=True)

    def deadline_for(self, resolved: object) -> float:
        """Wall-second budget for one resolved run (prediction × slack, floored)."""
        predicted = 0.0
        if self.cost_model is not None:
            try:
                predicted = float(self.cost_model.predict(resolved))
            except Exception:  # noqa: BLE001 - deadlines must never fail a run
                predicted = 0.0
        return max(self.config.min_seconds, predicted * self.config.slack)

    def reset(self) -> None:
        """Drop all heartbeats (called between retry rounds: stale heartbeats
        from a terminated pool must not condemn the requeued attempt)."""
        for path in self.directory.glob(f"{HEARTBEAT_PREFIX}*"):
            try:
                path.unlink()
            except OSError:
                pass

    def overdue(self, deadlines: Dict[str, float],
                now: Optional[float] = None) -> Dict[str, float]:
        """Keys whose heartbeat-recorded start exceeds their deadline.

        Returns ``key -> seconds running``.  Deadlines count from the
        worker-recorded start, not from submission — a task queued behind
        batchmates has not started and cannot be overdue.
        """
        now = time.time() if now is None else now
        started = read_heartbeats(self.directory)
        verdicts: Dict[str, float] = {}
        for key, deadline in deadlines.items():
            begun = started.get(key)
            if begun is not None and now - begun > deadline:
                verdicts[key] = now - begun
        return verdicts

    def cleanup(self) -> None:
        """Remove the heartbeat directory (when this watchdog created it)."""
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)
