"""Fault injection, retry policies and worker watchdogs for campaigns.

The campaign stack (``repro.experiments``) and the results daemon
(``repro.service``) survive worker crashes, hung simulations and corrupted
cache entries through three cooperating pieces that live here:

* :mod:`repro.reliability.faults` — a seeded, deterministic fault-injection
  plan (``REPRO_FAULTS`` / ``--faults``) with named sites threaded through
  the cache, the campaign engine, the shard merger and the daemon;
* :mod:`repro.reliability.retry` — bounded-attempt retry with exponential
  backoff and transient-vs-permanent error classification;
* :mod:`repro.reliability.watchdog` — heartbeat files plus cost-model
  deadlines, so a hung pool worker is killed and its key requeued.

Every recovery path preserves the determinism contract: recovered campaign
output is byte-identical to a fault-free serial run (``docs/reliability.md``
and ``docs/determinism.md``).
"""

from .faults import (  # noqa: F401
    FAULT_KINDS,
    FAULT_SITES,
    Fault,
    FaultPlan,
    InjectedFault,
    active_plan,
    active_spec,
    install_plan,
    maybe_fault,
    parse_faults,
)
from .retry import RetryPolicy  # noqa: F401
from .watchdog import Watchdog, WatchdogConfig, write_heartbeat  # noqa: F401
