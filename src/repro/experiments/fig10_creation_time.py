"""Figure 10: time spent in task creation, software runtime vs TDM.

The paper measures the share of time the master thread spends creating tasks
and managing their dependences (the DEPS category of Figure 2) with the pure
software runtime and with TDM.  Expected headline numbers: task creation time
drops from 31.0% to 14.5% of the CPU time on average (up to 5.2x reduction in
Blackscholes), and the idle time of the whole execution drops from 32% to 22%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

COLUMNS = (
    "benchmark",
    "sw_creation_fraction",
    "tdm_creation_fraction",
    "reduction_factor",
    "sw_idle_fraction",
    "tdm_idle_fraction",
)

PAPER_AVERAGES = {
    "sw_creation_fraction": 0.310,
    "tdm_creation_fraction": 0.145,
    "sw_idle_fraction": 0.32,
    "tdm_idle_fraction": 0.22,
    "max_reduction": ("blackscholes", 5.2),
}


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    requests = []
    for name in select_benchmarks(benchmarks):
        requests.append(RunRequest(name, "software"))
        requests.append(RunRequest(name, "tdm", "fifo"))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 10 (FIFO scheduler under both runtimes)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="figure_10",
        title="Figure 10: percentage of time spent in task creation (software vs TDM)",
        columns=COLUMNS,
        paper_reference=PAPER_AVERAGES,
    )
    sw_fracs = []
    tdm_fracs = []
    sw_idles = []
    tdm_idles = []
    for name in names:
        sw = runner.software_baseline(name)
        tdm = runner.run(name, "tdm", "fifo")
        sw_frac = sw.master_creation_fraction
        tdm_frac = tdm.master_creation_fraction
        reduction = sw_frac / tdm_frac if tdm_frac > 0 else float("inf")
        result.add_row(
            benchmark=name,
            sw_creation_fraction=sw_frac,
            tdm_creation_fraction=tdm_frac,
            reduction_factor=reduction,
            sw_idle_fraction=sw.idle_fraction,
            tdm_idle_fraction=tdm.idle_fraction,
        )
        sw_fracs.append(sw_frac)
        tdm_fracs.append(tdm_frac)
        sw_idles.append(sw.idle_fraction)
        tdm_idles.append(tdm.idle_fraction)
    if sw_fracs:
        result.add_note(
            f"Average task-creation fraction: software {sum(sw_fracs) / len(sw_fracs):.3f} "
            f"(paper 0.310), TDM {sum(tdm_fracs) / len(tdm_fracs):.3f} (paper 0.145)"
        )
        result.add_note(
            f"Average idle fraction: software {sum(sw_idles) / len(sw_idles):.3f} (paper 0.32), "
            f"TDM {sum(tdm_idles) / len(tdm_idles):.3f} (paper 0.22)"
        )
    return result
