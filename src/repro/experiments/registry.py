"""Experiment registry: run any table/figure/scenario reproduction by name.

Two populations share one namespace: the paper's figures and tables
(registered eagerly below, with ``fig2``/``figure12``-style aliases derived
from their names) and the curated scenario bundles from
:mod:`repro.scenarios.registry` (registered lazily on first lookup, so
importing this module never drags the scenario subsystem in).  Everything
downstream — the CLI, sharding, the results daemon — resolves names through
:func:`canonical_name` and is agnostic to which population a name belongs
to.

When an experiment has a ``plan`` function (every simulating harness does),
:func:`run_experiment` prefetches the planned runs through the runner's
campaign engine before invoking the harness.  With a parallel runner
(``jobs > 1``) the whole sweep fans out over the process pool and the
harness then assembles its rows from cache hits; with a serial runner the
plan is skipped and behavior is unchanged.

:func:`resolve_plan` exposes the same plan as resolved runs (canonical key
plus full configuration, deduplicated and key-sorted) — the authoritative
key set the sharded campaign layer partitions across hosts and verifies
merged caches against.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ExperimentError
from .campaign import ResolvedRun
from . import (
    fig02_breakdown,
    fig06_granularity,
    fig07_tat_dat,
    fig08_list_arrays,
    fig09_latency,
    fig10_creation_time,
    fig11_dat_occupancy,
    fig12_schedulers,
    fig13_comparison,
    table02_characteristics,
    table03_area,
)
from .common import ExperimentResult, SimulationRunner

ExperimentFunction = Callable[..., ExperimentResult]
PlanFunction = Callable[..., List]

_EXPERIMENTS: Dict[str, ExperimentFunction] = {}
_PLANS: Dict[str, Optional[PlanFunction]] = {}
_TITLES: Dict[str, str] = {}
_KINDS: Dict[str, str] = {}

#: Aliases accepted by the CLI (fig2, fig12, table2, scenario names, ...).
_ALIASES: Dict[str, str] = {}


def register_experiment(
    name: str,
    run: ExperimentFunction,
    plan: Optional[PlanFunction] = None,
    title: Optional[str] = None,
    aliases: Sequence[str] = (),
    kind: str = "paper",
    replace: bool = False,
) -> None:
    """Register one experiment under ``name`` (and optional ``aliases``).

    ``plan`` is the sweep enumerator used for prefetching and sharding
    (None for analytic tables); ``title`` is the one-line human description
    shown in catalogs; ``kind`` tags the population (``paper`` or
    ``scenario``) so catalogs can group without parsing names.
    """
    key = name.lower()
    if key in _EXPERIMENTS and not replace:
        raise ExperimentError(f"experiment {name!r} is already registered")
    _EXPERIMENTS[key] = run
    _PLANS[key] = plan
    _KINDS[key] = kind
    if title is None:
        module = sys.modules.get(run.__module__)
        docstring = (getattr(module, "__doc__", None) or "").strip()
        title = docstring.splitlines()[0].rstrip(".") if docstring else key
    _TITLES[key] = title
    for alias in aliases:
        alias_key = alias.lower()
        target = _ALIASES.get(alias_key)
        if target is not None and target != key and not replace:
            raise ExperimentError(
                f"alias {alias!r} already points at experiment {target!r}"
            )
        _ALIASES[alias_key] = key


def _register_paper_experiments() -> None:
    modules = {
        "figure_02": fig02_breakdown,
        "figure_06": fig06_granularity,
        "table_02": table02_characteristics,
        "figure_07": fig07_tat_dat,
        "figure_08": fig08_list_arrays,
        "figure_09": fig09_latency,
        "table_03": table03_area,
        "figure_10": fig10_creation_time,
        "figure_11": fig11_dat_occupancy,
        "figure_12": fig12_schedulers,
        "figure_13": fig13_comparison,
    }
    for name, module in modules.items():
        kind_word, _, number = name.partition("_")
        register_experiment(
            name,
            module.run,
            plan=getattr(module, "plan", None),
            aliases=(
                f"{kind_word[:3]}{int(number)}",
                f"{kind_word}{int(number)}",
                name.replace("_", ""),
            ),
            kind="paper",
        )


_register_paper_experiments()

_scenarios_loaded = False


def _ensure_scenarios() -> None:
    """Lazily register the scenario bundles (idempotent, import-cycle safe)."""
    global _scenarios_loaded
    if _scenarios_loaded:
        return
    _scenarios_loaded = True
    from ..scenarios.registry import register_scenario_experiments

    register_scenario_experiments(register_experiment)


def available_experiments() -> List[str]:
    """Names of every reproducible table/figure/scenario, in registry order."""
    _ensure_scenarios()
    return list(_EXPERIMENTS)


def experiment_catalog() -> List[Dict[str, object]]:
    """Machine-readable description of every experiment, in registry order.

    One entry per experiment: its canonical ``name``, the accepted
    ``aliases``, a one-line ``title``, its ``kind`` (``paper`` figure/table
    or curated ``scenario``) and whether rendering it ``simulates``
    (analytic tables have no simulation plan and render instantly).  This
    is the payload of the results daemon's ``GET /experiments`` endpoint
    and is equally usable by scripts that want to enumerate the
    reproduction surface.
    """
    _ensure_scenarios()
    return [
        {
            "name": name,
            "aliases": sorted(
                alias for alias, target in _ALIASES.items() if target == name
            ),
            "title": _TITLES[name],
            "kind": _KINDS[name],
            "simulates": _PLANS[name] is not None,
        }
        for name in _EXPERIMENTS
    ]


def canonical_name(name: str) -> str:
    """Resolve an experiment name or alias to its canonical registry name."""
    _ensure_scenarios()
    key = name.lower()
    canonical = key if key in _EXPERIMENTS else _ALIASES.get(key)
    if canonical is None:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(available_experiments())}"
        )
    return canonical


def get_experiment(name: str) -> ExperimentFunction:
    """Look up an experiment ``run`` function by name or alias."""
    return _EXPERIMENTS[canonical_name(name)]


def plan_function(name: str) -> Optional[PlanFunction]:
    """The ``plan`` function of an experiment, or None for analytic tables."""
    return _PLANS[canonical_name(name)]


def resolve_plan(
    name: str,
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    **kwargs: object,
) -> List[ResolvedRun]:
    """Every simulation of one experiment's sweep, resolved and key-sorted.

    Duplicate requests collapse by canonical key, so the result is the
    exact key set a full run populates — what shard workers partition and
    what the merge step's completeness check demands.  Raises for
    experiments with no simulation plan (the analytic tables).
    """
    plan = plan_function(name)
    if plan is None:
        raise ExperimentError(
            f"experiment {name!r} has no simulation plan (nothing to shard)"
        )
    resolved: Dict[str, ResolvedRun] = {}
    for request in plan(runner, benchmarks=benchmarks, **kwargs):
        item = runner.engine.resolve(request)
        resolved.setdefault(item.key, item)
    return [resolved[key] for key in sorted(resolved)]


def run_experiment(
    name: str,
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
    **kwargs: object,
) -> ExperimentResult:
    """Run one experiment by name (prefetching its sweep when parallel)."""
    function = get_experiment(name)
    if runner is not None and getattr(runner, "jobs", 1) > 1:
        plan = plan_function(name)
        if plan is not None:
            runner.prefetch(plan(runner, benchmarks=benchmarks, **kwargs))
    return function(scale=scale, benchmarks=benchmarks, runner=runner, **kwargs)


def run_all(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    share_runner: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run the paper campaign (every table and figure), sharing cached runs.

    Scenario bundles are excluded: they have their own workloads and are
    run explicitly (``tdm-repro scenario <name>`` or by experiment name).
    """
    runner = (
        SimulationRunner(scale=scale, jobs=jobs, cache_dir=cache_dir)
        if share_runner
        else None
    )
    results: Dict[str, ExperimentResult] = {}
    for name in available_experiments():
        if _KINDS[name] != "paper":
            continue
        results[name] = run_experiment(name, scale=scale, benchmarks=benchmarks, runner=runner)
    return results
