"""Experiment registry: run any table/figure reproduction by name.

When an experiment module exposes a ``plan(runner, benchmarks, **kwargs)``
function (every simulating harness does), :func:`run_experiment` prefetches
the planned runs through the runner's campaign engine before invoking the
harness.  With a parallel runner (``jobs > 1``) the whole sweep fans out
over the process pool and the harness then assembles its rows from cache
hits; with a serial runner the plan is skipped and behavior is unchanged.

:func:`resolve_plan` exposes the same plan as resolved runs (canonical key
plus full configuration, deduplicated and key-sorted) — the authoritative
key set the sharded campaign layer partitions across hosts and verifies
merged caches against.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ExperimentError
from .campaign import ResolvedRun
from . import (
    fig02_breakdown,
    fig06_granularity,
    fig07_tat_dat,
    fig08_list_arrays,
    fig09_latency,
    fig10_creation_time,
    fig11_dat_occupancy,
    fig12_schedulers,
    fig13_comparison,
    table02_characteristics,
    table03_area,
)
from .common import ExperimentResult, SimulationRunner

ExperimentFunction = Callable[..., ExperimentResult]

_EXPERIMENTS: Dict[str, ExperimentFunction] = {
    "figure_02": fig02_breakdown.run,
    "figure_06": fig06_granularity.run,
    "table_02": table02_characteristics.run,
    "figure_07": fig07_tat_dat.run,
    "figure_08": fig08_list_arrays.run,
    "figure_09": fig09_latency.run,
    "table_03": table03_area.run,
    "figure_10": fig10_creation_time.run,
    "figure_11": fig11_dat_occupancy.run,
    "figure_12": fig12_schedulers.run,
    "figure_13": fig13_comparison.run,
}

#: Aliases accepted by the CLI (fig2, fig12, table2, ...).
_ALIASES: Dict[str, str] = {}
for _name in list(_EXPERIMENTS):
    _kind, _, _number = _name.partition("_")
    _ALIASES[f"{_kind[:3]}{int(_number)}"] = _name
    _ALIASES[f"{_kind}{int(_number)}"] = _name
    _ALIASES[_name.replace("_", "")] = _name


def available_experiments() -> List[str]:
    """Names of every reproducible table/figure, in paper order."""
    return list(_EXPERIMENTS)


def experiment_catalog() -> List[Dict[str, object]]:
    """Machine-readable description of every experiment, in paper order.

    One entry per experiment: its canonical ``name``, the accepted
    ``aliases``, a one-line ``title`` (the harness module's docstring
    summary) and whether rendering it ``simulates`` (analytic tables have
    no simulation plan and render instantly).  This is the payload of the
    results daemon's ``GET /experiments`` endpoint and is equally usable
    by scripts that want to enumerate the reproduction surface.
    """
    catalog: List[Dict[str, object]] = []
    for name, function in _EXPERIMENTS.items():
        module = sys.modules[function.__module__]
        docstring = (module.__doc__ or "").strip()
        title = docstring.splitlines()[0].rstrip(".") if docstring else name
        catalog.append(
            {
                "name": name,
                "aliases": sorted(
                    alias for alias, target in _ALIASES.items() if target == name
                ),
                "title": title,
                "simulates": getattr(module, "plan", None) is not None,
            }
        )
    return catalog


def canonical_name(name: str) -> str:
    """Resolve an experiment name or alias to its canonical registry name."""
    key = name.lower()
    canonical = key if key in _EXPERIMENTS else _ALIASES.get(key)
    if canonical is None:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(available_experiments())}"
        )
    return canonical


def get_experiment(name: str) -> ExperimentFunction:
    """Look up an experiment ``run`` function by name or alias."""
    return _EXPERIMENTS[canonical_name(name)]


def plan_function(name: str) -> Optional[Callable[..., List]]:
    """The ``plan`` function of an experiment, or None for analytic tables."""
    function = get_experiment(name)
    return getattr(sys.modules[function.__module__], "plan", None)


def resolve_plan(
    name: str,
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    **kwargs: object,
) -> List[ResolvedRun]:
    """Every simulation of one experiment's sweep, resolved and key-sorted.

    Duplicate requests collapse by canonical key, so the result is the
    exact key set a full run populates — what shard workers partition and
    what the merge step's completeness check demands.  Raises for
    experiments with no simulation plan (the analytic tables).
    """
    plan = plan_function(name)
    if plan is None:
        raise ExperimentError(
            f"experiment {name!r} has no simulation plan (nothing to shard)"
        )
    resolved: Dict[str, ResolvedRun] = {}
    for request in plan(runner, benchmarks=benchmarks, **kwargs):
        item = runner.engine.resolve(request)
        resolved.setdefault(item.key, item)
    return [resolved[key] for key in sorted(resolved)]


def run_experiment(
    name: str,
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
    **kwargs: object,
) -> ExperimentResult:
    """Run one experiment by name (prefetching its sweep when parallel)."""
    function = get_experiment(name)
    if runner is not None and getattr(runner, "jobs", 1) > 1:
        plan = plan_function(name)
        if plan is not None:
            runner.prefetch(plan(runner, benchmarks=benchmarks, **kwargs))
    return function(scale=scale, benchmarks=benchmarks, runner=runner, **kwargs)


def run_all(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    share_runner: bool = True,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, ExperimentResult]:
    """Run the full campaign (every table and figure), sharing cached runs."""
    runner = (
        SimulationRunner(scale=scale, jobs=jobs, cache_dir=cache_dir)
        if share_runner
        else None
    )
    results: Dict[str, ExperimentResult] = {}
    for name in available_experiments():
        results[name] = run_experiment(name, scale=scale, benchmarks=benchmarks, runner=runner)
    return results
