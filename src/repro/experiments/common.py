"""Shared infrastructure of the experiment harnesses.

:class:`SimulationRunner` runs (workload, runtime, scheduler, configuration)
combinations on top of the :class:`~repro.experiments.campaign.CampaignEngine`,
which memoizes results by a content hash of the full configuration — so
experiments which share runs (for example the software FIFO baseline every
figure normalizes to) do not simulate them twice, across processes or even
across invocations when a cache directory is configured.

:class:`ExperimentResult` is the uniform output format: named rows (one per
plotted bar/point), free-form notes, and renderers for Markdown and CSV used
by EXPERIMENTS.md and the command-line tool.
"""

from __future__ import annotations

import csv
import io
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from ..analysis.metrics import geometric_mean
from ..config import DMUConfig, SimulationConfig
from ..sim.machine import SimulationResult
from ..workloads.registry import PAPER_BENCHMARKS
from .campaign import CampaignEngine, RunRequest
from ..errors import ExperimentError

#: Scheduler names swept by the scheduling-flexibility experiments.
SCHEDULERS = ("fifo", "lifo", "locality", "successor", "age")

#: Default scheduler used when a single software policy is needed.
BASELINE_SCHEDULER = "fifo"


def unique_requests(requests: Iterable[RunRequest]) -> List[RunRequest]:
    """Order-preserving deduplication of a planned sweep.

    Harness plans naturally repeat points (every figure replans its
    software-FIFO baseline next to the same request from its scheduler
    sweep); :class:`RunRequest` is a frozen dataclass, so equal requests
    collapse here and plan sizes, shard manifests and prefetch batches all
    count *simulations*, not enumeration artifacts.
    """
    return list(dict.fromkeys(requests))


@dataclass
class ExperimentResult:
    """Uniform result container for every experiment harness."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Mapping[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_values(self, column: str) -> List[object]:
        return [row.get(column) for row in self.rows]

    def row_for(self, **match: object) -> Mapping[str, object]:
        """First row whose fields match all the given key/value pairs."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.experiment}")

    # ------------------------------------------------------------------ rendering
    def to_markdown(self) -> str:
        """Render the result as a Markdown section with a table."""
        lines = [f"### {self.title}", ""]
        header = "| " + " | ".join(self.columns) + " |"
        separator = "| " + " | ".join("---" for _ in self.columns) + " |"
        lines.extend([header, separator])
        for row in self.rows:
            cells = [self._format(row.get(column)) for column in self.columns]
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        lines.append("")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the rows as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns), extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column) for column in self.columns})
        return buffer.getvalue()

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        if value is None:
            return ""
        return str(value)


class SimulationRunner:
    """Runs and memoizes benchmark simulations for the experiment harnesses.

    A thin façade over :class:`~repro.experiments.campaign.CampaignEngine`
    keeping the historical ``runner.run(...)`` call signature the harnesses
    use.  ``jobs`` and ``cache_dir`` flow straight to the engine: with
    ``jobs > 1`` batched prefetches (:meth:`prefetch`) fan out over a process
    pool, and with ``cache_dir`` every result persists across invocations.
    """

    def __init__(
        self,
        scale: float = 1.0,
        base_config: Optional[SimulationConfig] = None,
        seed: int = 0,
        verbose: bool = False,
        jobs: int = 1,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        cache_max_bytes: Optional[int] = None,
        backend: Optional[str] = None,
        engine: Optional[CampaignEngine] = None,
    ) -> None:
        # An injected engine carries all its own parameters; the results
        # daemon uses this to render through long-lived engines that share
        # one disk cache and program cache across requests.
        self.engine = engine or CampaignEngine(
            scale=scale,
            base_config=base_config,
            seed=seed,
            jobs=jobs,
            cache_dir=cache_dir,
            cache_max_bytes=cache_max_bytes,
            verbose=verbose,
            backend=backend,
        )

    # ------------------------------------------------------------------ engine façade
    @property
    def scale(self) -> float:
        return self.engine.scale

    @property
    def seed(self) -> int:
        return self.engine.seed

    @property
    def jobs(self) -> int:
        return self.engine.jobs

    @property
    def verbose(self) -> bool:
        return self.engine.verbose

    @property
    def base_config(self) -> SimulationConfig:
        return self.engine.base_config

    @property
    def backend(self) -> Optional[str]:
        """The engine-level DMU backend override (None = config default)."""
        return self.engine.backend

    def config_for(
        self,
        runtime: str,
        scheduler: str = BASELINE_SCHEDULER,
        dmu: Optional[DMUConfig] = None,
    ) -> SimulationConfig:
        return self.engine.config_for(runtime, scheduler, dmu)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/simulation counters of the underlying engine."""
        return self.engine.cache_info()

    def reliability_info(self) -> Dict[str, int]:
        """Recovery counters (retries/watchdog/quarantine) of the engine."""
        return self.engine.reliability_info()

    def prune_cache(self) -> int:
        """Enforce the engine's disk-cache size budget; returns evictions."""
        return self.engine.prune_disk_cache()

    @staticmethod
    def _config_token(config: SimulationConfig) -> str:
        """The legacy hand-written cache token.  DO NOT use for caching.

        Kept only to document (and regression-test) the collision it caused:
        it omits ``tat_associativity``, ``dat_associativity``,
        ``elements_per_list_entry``, ``ready_queue_entries``,
        ``instruction_issue_cycles``, ``noc_roundtrip_cycles`` and
        ``unlimited``, so sweeps varying any of those mapped to the same key
        and returned stale results.  Superseded by
        :func:`repro.experiments.cache.canonical_run_key`.
        """
        dmu = config.dmu
        return (
            f"{dmu.tat_entries}/{dmu.dat_entries}/{dmu.successor_list_entries}/"
            f"{dmu.dependence_list_entries}/{dmu.reader_list_entries}/"
            f"{dmu.access_cycles}/{dmu.index_selection}/{dmu.static_index_start_bit}/"
            f"{config.chip.num_cores}"
        )

    # ------------------------------------------------------------------ running
    def run(
        self,
        benchmark: str,
        runtime: str,
        scheduler: str = BASELINE_SCHEDULER,
        granularity: Optional[int] = None,
        dmu: Optional[DMUConfig] = None,
        granularity_runtime: Optional[str] = None,
    ) -> SimulationResult:
        """Run one benchmark under one runtime/scheduler/DMU configuration.

        Unless ``granularity`` is given, the workload is generated at the
        optimal granularity of ``granularity_runtime`` (defaulting to the
        software optimum for the software/Carbon runtimes and the TDM optimum
        for the DMU-based runtimes, exactly as the paper's evaluation does).
        """
        return self.engine.run(
            RunRequest(
                benchmark=benchmark,
                runtime=runtime,
                scheduler=scheduler,
                granularity=granularity,
                dmu=dmu,
                granularity_runtime=granularity_runtime,
            )
        )

    def run_many(self, requests: Sequence[RunRequest]) -> List[SimulationResult]:
        """Run a batch of requests, in parallel when ``jobs > 1``."""
        return self.engine.run_many(requests)

    def prefetch(self, requests: Iterable[RunRequest]) -> int:
        """Warm the caches with ``requests``; later ``run`` calls hit the memo."""
        batch = list(requests)
        if batch:
            self.engine.run_many(batch)
        return len(batch)

    def software_baseline(self, benchmark: str) -> SimulationResult:
        """The software-runtime FIFO baseline every figure normalizes to."""
        return self.run(benchmark, "software", BASELINE_SCHEDULER)

    # ------------------------------------------------------------------ aggregates
    @staticmethod
    def geomean(values: Iterable[float]) -> float:
        return geometric_mean(values)


def select_benchmarks(benchmarks: Optional[Sequence[str]]) -> List[str]:
    """Validate and normalize a benchmark subset (default: all nine)."""
    if benchmarks is None:
        return list(PAPER_BENCHMARKS)
    unknown = [name for name in benchmarks if name not in PAPER_BENCHMARKS]
    if unknown:
        raise ExperimentError(f"unknown benchmarks: {', '.join(unknown)}")
    return list(benchmarks)
