"""Shared infrastructure of the experiment harnesses.

:class:`SimulationRunner` runs (workload, runtime, scheduler, configuration)
combinations and memoizes the results so that experiments which share runs —
for example the software FIFO baseline every figure normalizes to — do not
simulate them twice.

:class:`ExperimentResult` is the uniform output format: named rows (one per
plotted bar/point), free-form notes, and renderers for Markdown and CSV used
by EXPERIMENTS.md and the command-line tool.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..analysis.metrics import geometric_mean
from ..config import DMUConfig, SimulationConfig, default_paper_config
from ..errors import ExperimentError
from ..sim.machine import SimulationResult, run_simulation
from ..workloads.registry import PAPER_BENCHMARKS, create_workload

#: Scheduler names swept by the scheduling-flexibility experiments.
SCHEDULERS = ("fifo", "lifo", "locality", "successor", "age")

#: Default scheduler used when a single software policy is needed.
BASELINE_SCHEDULER = "fifo"


@dataclass(frozen=True)
class RunKey:
    """Cache key identifying one simulation."""

    benchmark: str
    runtime: str
    scheduler: str
    scale: float
    granularity: Optional[int]
    config_token: str


@dataclass
class ExperimentResult:
    """Uniform result container for every experiment harness."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Mapping[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column_values(self, column: str) -> List[object]:
        return [row.get(column) for row in self.rows]

    def row_for(self, **match: object) -> Mapping[str, object]:
        """First row whose fields match all the given key/value pairs."""
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.experiment}")

    # ------------------------------------------------------------------ rendering
    def to_markdown(self) -> str:
        """Render the result as a Markdown section with a table."""
        lines = [f"### {self.title}", ""]
        header = "| " + " | ".join(self.columns) + " |"
        separator = "| " + " | ".join("---" for _ in self.columns) + " |"
        lines.extend([header, separator])
        for row in self.rows:
            cells = [self._format(row.get(column)) for column in self.columns]
            lines.append("| " + " | ".join(cells) + " |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        lines.append("")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render the rows as CSV text."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(self.columns), extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({column: row.get(column) for column in self.columns})
        return buffer.getvalue()

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        if value is None:
            return ""
        return str(value)


class SimulationRunner:
    """Runs and memoizes benchmark simulations for the experiment harnesses."""

    def __init__(
        self,
        scale: float = 1.0,
        base_config: Optional[SimulationConfig] = None,
        seed: int = 0,
        verbose: bool = False,
    ) -> None:
        if not (0.0 < scale <= 1.0):
            raise ExperimentError(f"scale must be in (0, 1], got {scale}")
        self.scale = scale
        self.seed = seed
        self.verbose = verbose
        self.base_config = base_config or default_paper_config()
        self._cache: Dict[RunKey, SimulationResult] = {}

    # ------------------------------------------------------------------ config helpers
    def config_for(
        self,
        runtime: str,
        scheduler: str = BASELINE_SCHEDULER,
        dmu: Optional[DMUConfig] = None,
    ) -> SimulationConfig:
        config = replace(self.base_config, runtime=runtime, scheduler=scheduler)
        if dmu is not None:
            config = replace(config, dmu=dmu)
        return config.validated()

    @staticmethod
    def _config_token(config: SimulationConfig) -> str:
        dmu = config.dmu
        return (
            f"{dmu.tat_entries}/{dmu.dat_entries}/{dmu.successor_list_entries}/"
            f"{dmu.dependence_list_entries}/{dmu.reader_list_entries}/"
            f"{dmu.access_cycles}/{dmu.index_selection}/{dmu.static_index_start_bit}/"
            f"{config.chip.num_cores}"
        )

    # ------------------------------------------------------------------ running
    def run(
        self,
        benchmark: str,
        runtime: str,
        scheduler: str = BASELINE_SCHEDULER,
        granularity: Optional[int] = None,
        dmu: Optional[DMUConfig] = None,
        granularity_runtime: Optional[str] = None,
    ) -> SimulationResult:
        """Run one benchmark under one runtime/scheduler/DMU configuration.

        Unless ``granularity`` is given, the workload is generated at the
        optimal granularity of ``granularity_runtime`` (defaulting to the
        software optimum for the software/Carbon runtimes and the TDM optimum
        for the DMU-based runtimes, exactly as the paper's evaluation does).
        """
        config = self.config_for(runtime, scheduler, dmu)
        if granularity_runtime is None:
            granularity_runtime = "tdm" if runtime in ("tdm", "task_superscalar") else "software"
        key = RunKey(
            benchmark=benchmark,
            runtime=runtime,
            scheduler=config.scheduler if runtime in ("tdm", "software") else runtime,
            scale=self.scale,
            granularity=granularity,
            config_token=self._config_token(config) + f"/{granularity_runtime}",
        )
        if key in self._cache:
            return self._cache[key]
        workload = create_workload(
            benchmark,
            scale=self.scale,
            granularity=granularity,
            runtime=granularity_runtime if granularity is None else None,
            seed=self.seed,
        )
        program = workload.build_program()
        if self.verbose:  # pragma: no cover - console feedback only
            print(f"[run] {benchmark} runtime={runtime} scheduler={scheduler} tasks={program.num_tasks}")
        result = run_simulation(program, config)
        self._cache[key] = result
        return result

    def software_baseline(self, benchmark: str) -> SimulationResult:
        """The software-runtime FIFO baseline every figure normalizes to."""
        return self.run(benchmark, "software", BASELINE_SCHEDULER)

    # ------------------------------------------------------------------ aggregates
    @staticmethod
    def geomean(values: Iterable[float]) -> float:
        return geometric_mean(values)


def select_benchmarks(benchmarks: Optional[Sequence[str]]) -> List[str]:
    """Validate and normalize a benchmark subset (default: all nine)."""
    if benchmarks is None:
        return list(PAPER_BENCHMARKS)
    unknown = [name for name in benchmarks if name not in PAPER_BENCHMARKS]
    if unknown:
        raise ExperimentError(f"unknown benchmarks: {', '.join(unknown)}")
    return list(benchmarks)
