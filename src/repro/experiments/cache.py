"""Content-hashed, on-disk caching of simulation results.

The campaign engine identifies every simulation by a *canonical run key*: a
SHA-256 digest of the full :class:`~repro.config.SimulationConfig` (every
field, via :meth:`~repro.config.SimulationConfig.to_dict`) plus the workload
parameters that shape the generated task program (benchmark, problem scale,
explicit granularity or the runtime whose optimal granularity is used, and
the workload seed).

This replaces the old hand-written ``SimulationRunner._config_token``
string, which silently dropped several DMU fields (``tat_associativity``,
``elements_per_list_entry``, ``ready_queue_entries``, ...) and collapsed the
scheduler to the runtime name for the hardware baselines — both of which
caused sweeps varying those fields to return stale cached results.  Hashing
the complete configuration dictionary makes collisions impossible by
construction: any field that can change simulation output is part of the
digest.

:class:`ResultCache` persists :class:`~repro.sim.machine.SimulationResult`
rows as one JSON document per key under ``<dir>/<key[:2]>/<key>.json``.
Writes go through a temporary file followed by :func:`os.replace`, so
concurrent campaign processes sharing a cache directory can never observe a
half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time
import warnings
from typing import Dict, List, Optional, Union

from ..config import SimulationConfig
from ..reliability.faults import maybe_fault
from ..sim.machine import SimulationResult

#: Bumped whenever the serialized result layout changes incompatibly; stale
#: entries are treated as misses and resimulated rather than misread.
CACHE_FORMAT_VERSION = 1

#: Persistent union of observed per-key wall times (seconds + analytic cost
#: units), living at the top of a cache directory.  Written by shard workers
#: and ``merge_shards``; read by the cost-aware shard planner.  Advisory
#: data: it shapes *planning* only and never results, so concurrent
#: last-writer-wins updates are acceptable.
COST_PROFILE_FILENAME = "cost_profile.json"

#: Subdirectory of a cache directory holding work-stealing claim files
#: (``claims/<key>.claim``, created with ``O_EXCL`` — see
#: ``repro.experiments.shard.ClaimBoard``).
CLAIMS_DIRNAME = "claims"

#: Subdirectory of a cache directory receiving torn/corrupt entry files
#: (moved aside verbatim, with a ``.reason`` sidecar).  Not two hex chars,
#: so the ``??/*.json`` entry enumeration never sees it.
QUARANTINE_DIRNAME = "quarantine"

#: Orphaned ``*.tmp.<pid>`` files younger than this survive the sweep —
#: they may belong to a live writer between tmp-write and rename.
ORPHAN_TMP_MAX_AGE_S = 300.0


def atomic_write(
    path: pathlib.Path,
    data: Union[str, bytes],
    fault_key: Optional[str] = None,
) -> None:
    """Write ``data`` to ``path`` via tmp+fsync+rename, creating parents.

    The single publication primitive for cache entries, merged shard copies
    and shard manifests: a concurrent reader sees either the old file or the
    complete new one, never a torn write (the tmp name embeds the pid so
    concurrent writers of one key cannot collide either).  The tmp file is
    fsynced before the rename so a machine crash cannot publish a name whose
    bytes never reached disk.

    ``fault_key`` arms the ``commit`` fault-injection site *between* the tmp
    write and the rename — a ``crash`` fault there leaves exactly the
    orphaned ``*.tmp`` file a SIGKILL'd writer would
    (:meth:`ResultCache.sweep_orphans` reclaims them).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    blob = data if isinstance(data, bytes) else data.encode("utf-8")
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    if fault_key is not None:
        fault = maybe_fault("commit", fault_key)
        if fault is not None and fault.kind == "corrupt":
            # Publish a torn entry: the first half of the bytes, as if the
            # writer died mid-write on a filesystem without atomic rename.
            with open(tmp, "wb") as handle:
                handle.write(blob[: max(1, len(blob) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
    os.replace(tmp, path)


def canonical_run_key(
    config: SimulationConfig,
    benchmark: str,
    scale: float,
    granularity: Optional[int] = None,
    granularity_runtime: Optional[str] = None,
    seed: int = 0,
) -> str:
    """SHA-256 digest identifying one simulation, collision-free.

    ``granularity_runtime`` only matters when no explicit ``granularity`` is
    given (the workload generator ignores it otherwise), so it is normalized
    to ``None`` in that case — two requests that generate the identical
    workload always map to the same key.

    ``DMUConfig.backend`` is deliberately **excluded**: backends are
    execution strategies, not semantics — every backend is required (and
    tested) to produce byte-identical results, so cache entries and shard
    merges are shared across backends instead of being resimulated per
    backend (see ``docs/determinism.md``).
    """
    config_dict = config.to_dict()
    config_dict["dmu"].pop("backend", None)
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "benchmark": benchmark,
        "scale": repr(float(scale)),
        "granularity": granularity,
        "granularity_runtime": None if granularity is not None else granularity_runtime,
        "workload_seed": seed,
        "config": config_dict,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_checksum(result_dict: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON of a serialized result.

    Embedded in every entry document (the ``sha256`` field) and verified on
    read: a torn, truncated or bit-flipped entry is detected even when it
    still parses as JSON.  Computed over the ``result`` payload only — the
    envelope (version, key) is validated structurally — and over the
    *parsed* canonical form, so the digest survives a JSON round trip.
    Entries written before the field existed verify as legacy (no digest,
    structural checks only); the cache format version is unchanged because
    canonical run keys embed it.
    """
    blob = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _entry_defect(blob: bytes) -> Optional[str]:
    """Why a serialized entry document is corrupt, or None when it is sound.

    The merge-time mirror of the :meth:`ResultCache.get` corruption checks.
    A stale-but-well-formed layout (version mismatch) is *not* a defect —
    readers gate on the version themselves — only torn/invalid JSON,
    structural breakage and checksum mismatches count.
    """
    try:
        document = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        return f"invalid JSON: {error}"
    if not isinstance(document, dict):
        return "malformed entry: not a JSON object"
    if document.get("version") != CACHE_FORMAT_VERSION:
        return None
    result = document.get("result")
    if not isinstance(result, dict):
        return "malformed entry: missing result payload"
    recorded = document.get("sha256")
    if recorded is not None and recorded != result_checksum(result):
        return "checksum mismatch"
    return None


def load_cost_profile(directory: Union[str, pathlib.Path]) -> Dict[str, Dict[str, float]]:
    """The persisted cost profile of a cache directory (empty when absent).

    Unreadable or structurally malformed profiles degrade to empty — cost
    prediction then falls back to its uncalibrated analytic baseline rather
    than aborting planning.
    """
    path = pathlib.Path(directory) / COST_PROFILE_FILENAME
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
        entries = document["timings"]
        if not isinstance(entries, dict):
            return {}
        return {
            key: dict(value) for key, value in entries.items() if isinstance(value, dict)
        }
    except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
        return {}


def store_cost_profile(
    directory: Union[str, pathlib.Path],
    entries: Dict[str, Dict[str, float]],
    merge: bool = True,
) -> pathlib.Path:
    """Persist (by default, union into) a cache directory's cost profile.

    With ``merge`` the existing profile is read first and new entries win on
    key collisions (fresher observations supersede stale ones).  The write
    is atomic, but read-merge-write is not a transaction — acceptable for
    advisory planning data (see :data:`COST_PROFILE_FILENAME`).
    """
    merged = dict(load_cost_profile(directory)) if merge else {}
    merged.update(entries)
    path = pathlib.Path(directory) / COST_PROFILE_FILENAME
    document = {
        "version": CACHE_FORMAT_VERSION,
        "timings": {key: merged[key] for key in sorted(merged)},
    }
    atomic_write(path, json.dumps(document, indent=2, sort_keys=True))
    return path


class ResultCache:
    """On-disk store of serialized simulation results, one JSON file per key.

    Layout and behavioral guarantees (relied on by the sharded campaign
    layer and documented in ``docs/architecture.md``):

    * ``<directory>/<key[:2]>/<key>.json`` — two-level fan-out; entry
      enumeration is pinned to that shape, so auxiliary data (shard
      manifests under ``manifests/``, work-stealing claims under
      ``claims/``, the top-level ``cost_profile.json``) can live inside the
      cache directory without being mistaken for entries.
    * **Atomic writes** — every put is tmp + rename, so a reader (or a
      crashed writer) never observes a torn entry; ``CACHE_FORMAT_VERSION``
      gates stale layouts on read.
    * **LRU pruning** — :meth:`get` refreshes the entry's mtime and
      :meth:`prune` evicts oldest-mtime first (deterministic key order on
      ties), so a result the campaign just used is never the next evicted.
    * **Byte-preserving union** — :meth:`merge_from` copies entry files
      verbatim, which is what keeps shard merges byte-identical to serial
      runs (see ``docs/determinism.md``).

    Serialization is ``SimulationResult.to_dict`` / ``from_dict``; timeline
    intervals and per-task instances are intentionally not persisted (the
    totals and finished-task count are).
    """

    def __init__(self, directory: Union[str, pathlib.Path]) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        #: Entries moved to ``quarantine/`` after failing to parse or to
        #: verify their embedded checksum (each is also counted as a miss).
        self.quarantined = 0
        #: Orphaned ``*.tmp.*`` files removed by :meth:`sweep_orphans`.
        self.orphans_swept = 0
        #: LRU mtime refreshes that failed for a reason other than the entry
        #: vanishing (read-only NFS mount, permission change, ...).  Reads
        #: keep working — eviction order just degrades toward write-order for
        #: the affected entries — and the first failure emits one warning.
        self.mtime_refresh_failures = 0

    def path_for(self, key: str) -> pathlib.Path:
        """Cache file for ``key`` (two-level fan-out keeps directories small)."""
        return self.directory / key[:2] / f"{key}.json"

    def _entries(self):
        """Every cache entry file.  The ``??/*.json`` pattern pins the
        two-hex-char fan-out layout, so every non-entry artifact inside the
        cache directory — ``manifests/`` (shard manifests), ``claims/``
        (work-stealing claim files, which are ``.claim`` not ``.json``
        anyway), and the top-level ``cost_profile.json`` — is never counted,
        pruned, merged or cleared.  ``tests/test_campaign.py`` pins this."""
        return self.directory.glob("??/*.json")

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def quarantine(self, path: pathlib.Path, reason: str) -> None:
        """Move a corrupt entry file into ``quarantine/`` with a reason note.

        Quarantined files keep their original bytes (forensics: was it a
        torn write, a bit flip, a stale layout?) and leave the entry
        namespace — the key becomes a plain miss everywhere, including
        :meth:`merge_from`, and the ``??/*.json`` enumeration never counts
        the quarantine directory.  A name collision (the same key corrupted
        twice) appends a numeric suffix rather than overwriting evidence.
        """
        target_dir = self.directory / QUARANTINE_DIRNAME
        target = target_dir / path.name
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            suffix = 0
            while target.exists():
                suffix += 1
                target = target_dir / f"{path.name}.{suffix}"
            os.replace(path, target)
            target.with_name(target.name + ".reason").write_text(
                reason + "\n", encoding="utf-8"
            )
        except OSError:
            # Read-only cache, or the file vanished under a concurrent
            # quarantine: the entry is still treated as a miss either way.
            return
        self.quarantined += 1

    def get(self, key: str) -> Optional[SimulationResult]:
        """The cached result for ``key``, or None on miss/corruption.

        Corrupt entries — unparseable JSON, a structurally malformed
        document, or a checksum mismatch against the embedded ``sha256``
        field — are quarantined and counted as misses: the campaign
        resimulates the point rather than aborting or serving bad data.
        """
        path = self.path_for(key)
        fault = maybe_fault("cache-read", key)
        if fault is not None and fault.kind == "corrupt" and path.is_file():
            # Chaos hook: tear the on-disk entry in half so this very read
            # exercises the quarantine path.
            try:
                blob = path.read_bytes()
                path.write_bytes(blob[: max(1, len(blob) // 2)])
            except OSError:
                pass
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError as error:
            self.misses += 1
            self.quarantine(path, f"invalid JSON: {error}")
            return None
        try:
            if document.get("version") != CACHE_FORMAT_VERSION:
                self.misses += 1
                return None
            recorded = document.get("sha256")
            if recorded is not None and recorded != result_checksum(document["result"]):
                self.misses += 1
                self.quarantine(path, "checksum mismatch")
                return None
            result = SimulationResult.from_dict(document["result"])
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            # Structurally malformed (parses as JSON but is not an entry).
            self.misses += 1
            self.quarantine(path, f"malformed entry: {type(error).__name__}: {error}")
            return None
        self.hits += 1
        try:
            # Refresh the mtime so :meth:`prune` is least-recently-*used*
            # eviction: a key the current campaign just read back cannot be
            # the next one evicted mid-run.
            os.utime(path)
        except FileNotFoundError:  # vanished under a concurrent prune — still a hit
            pass
        except OSError:
            # Read-only cache directory (an NFS mount a daemon or shard
            # serves from, a permission squash): the result itself was read
            # fine, so keep serving hits — only the LRU refresh is lost.
            # Warn once per cache object; the counter stays visible (the
            # results daemon reports it in /healthz).
            self.mtime_refresh_failures += 1
            if self.mtime_refresh_failures == 1:
                warnings.warn(
                    f"result cache {self.directory} is not writable; serving "
                    "reads without LRU mtime refreshes (prune order degrades "
                    "to write-order for these entries)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return result

    def put(self, key: str, result: SimulationResult) -> pathlib.Path:
        """Persist ``result`` under ``key`` atomically; returns the file path."""
        return self.put_serialized(key, result.to_dict())

    def put_serialized(self, key: str, result_dict: Dict[str, object]) -> pathlib.Path:
        """Persist an already-serialized result (the parallel-merge path).

        The document embeds a ``sha256`` integrity checksum of the result
        payload (verified by :meth:`get` and :meth:`merge_from`); entries
        written before the field existed remain readable.
        """
        path = self.path_for(key)
        document = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "result": result_dict,
            "sha256": result_checksum(result_dict),
        }
        atomic_write(path, json.dumps(document, sort_keys=True), fault_key=key)
        return path

    def sweep_orphans(self, max_age_s: float = ORPHAN_TMP_MAX_AGE_S) -> int:
        """Delete orphaned ``*.tmp.<pid>`` files left by killed writers.

        A writer SIGKILL'd between tmp-write and rename leaks its tmp file
        forever (the pid embedded in the name may even be reused, so the
        name is not self-cleaning).  Files younger than ``max_age_s`` are
        kept — they may belong to a live writer mid-publication.  Invoked
        by :meth:`prune` and by shard merges; returns deletions.
        """
        swept = 0
        cutoff = time.time() - max_age_s
        for tmp in self.directory.glob("??/*.json.tmp.*"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:  # vanished (its writer finished the rename)
                continue
            swept += 1
        self.orphans_swept += swept
        return swept

    def __len__(self) -> int:
        return sum(1 for _ in self._entries())

    def keys(self) -> List[str]:
        """Every cached key, sorted (the canonical enumeration order)."""
        return sorted(entry.stem for entry in self._entries())

    def merge_from(self, source: "ResultCache") -> int:
        """Union another cache directory into this one; returns copies made.

        Keys are content hashes of the full run configuration and results
        are deterministic, so two caches can only ever disagree on a key by
        holding byte-identical documents — entries already present locally
        are therefore skipped, and copies preserve the source bytes exactly
        (atomic tmp+rename, like :meth:`put_serialized`).  This is the merge
        point of multi-host campaigns: union every shard's cache, then
        render from the union.

        Only ``??/*.json`` entries are copied: claim files are per-campaign
        scratch that must never leak into a merge destination, and cost
        profiles are unioned separately (with their own merge semantics) by
        ``merge_shards``.

        Every copied entry is validated first (JSON shape + embedded
        checksum, exactly the :meth:`get` criteria): a torn or corrupt
        source entry is quarantined *in the source* and skipped, so the
        merged cache never inherits corruption — the key simply stays
        missing and the completeness check names it for resimulation.
        """
        copied = 0
        for entry in sorted(source._entries()):
            destination = self.path_for(entry.stem)
            if destination.is_file():
                continue
            try:
                blob = entry.read_bytes()
            except OSError:  # vanished mid-merge (concurrent prune)
                continue
            reason = _entry_defect(blob)
            if reason is not None:
                source.quarantine(entry, reason)
                continue
            atomic_write(destination, blob)
            copied += 1
        return copied

    def total_bytes(self) -> int:
        """Total on-disk size of all cached entries."""
        total = 0
        for entry in self._entries():
            try:
                total += entry.stat().st_size
            except OSError:  # entry vanished (concurrent prune/clear)
                continue
        return total

    def prune(self, max_bytes: int) -> int:
        """Evict oldest entries (by mtime) until the cache fits ``max_bytes``.

        Returns the number of entries deleted.  Eviction order is
        oldest-modification-first — and since :meth:`get` refreshes the mtime
        of every hit, effectively least-recently-used — so long-lived cache
        directories shed the results that have gone longest without being
        read or rewritten.  mtime ties (common on coarse-timestamp
        filesystems and just-merged shard caches) are broken by key, so the
        eviction order is deterministic.  Entries that vanish mid-scan
        (another process pruning the same directory) are skipped.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.sweep_orphans()
        entries = []
        total = 0
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.name, path, stat.st_size))
            total += stat.st_size
        if total <= max_bytes:
            return 0
        evicted = 0
        for _mtime, _name, path, size in sorted(entries):
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        return evicted

    def clear(self) -> None:
        """Delete every cached entry (keeps the directory itself)."""
        for entry in self._entries():
            entry.unlink()
