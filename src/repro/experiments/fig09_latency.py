"""Figure 9: performance sensitivity to the DMU access latency.

The paper varies the access time of every DMU structure from 1 to 16 cycles
and normalizes to structures with zero latency.  Because DMU operations are
rare compared to task durations at the evaluated granularities, the expected
degradation is tiny: 0.2% with 1-cycle accesses and 0.9% with 16-cycle
accesses on average, with only LU and QR showing any visible effect.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

LATENCIES = (1, 4, 16)

COLUMNS = ("benchmark", "access_cycles", "time_us", "speedup_vs_zero_latency")


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = LATENCIES,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    base = runner.base_config.dmu
    requests = []
    for name in select_benchmarks(benchmarks):
        for latency in [0] + list(latencies):
            requests.append(RunRequest(name, "tdm", dmu=replace(base, access_cycles=latency)))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    latencies: Sequence[int] = LATENCIES,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (TDM runtime, FIFO scheduler)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="figure_09",
        title="Figure 9: performance degradation when varying DMU structure access time",
        columns=COLUMNS,
        paper_reference={"avg_degradation": {1: 0.002, 16: 0.009}},
    )
    base = runner.base_config.dmu
    per_latency = {latency: [] for latency in latencies}
    for name in names:
        zero = runner.run(name, "tdm", dmu=replace(base, access_cycles=0))
        for latency in latencies:
            sim = runner.run(name, "tdm", dmu=replace(base, access_cycles=latency))
            speedup = zero.microseconds / sim.microseconds
            per_latency[latency].append(speedup)
            result.add_row(
                benchmark=name,
                access_cycles=latency,
                time_us=sim.microseconds,
                speedup_vs_zero_latency=speedup,
            )
    for latency in latencies:
        if per_latency[latency]:
            average = runner.geomean(per_latency[latency])
            result.add_row(
                benchmark="AVG",
                access_cycles=latency,
                time_us=None,
                speedup_vs_zero_latency=average,
            )
            result.add_note(
                f"Average degradation at {latency}-cycle accesses: {(1 - average) * 100:.2f}%"
            )
    return result
