"""Shared ``REPRO_BENCH_*`` environment handling.

One definition of the benchmark-campaign environment knobs, used by the
pytest-benchmark conftest and every ``scripts/run_campaign*.py`` driver.
Before this module the :func:`bench_env` deprecation shim lived only in
``scripts/run_campaign_rest.py``, so the drivers drifted:
``run_campaign.py`` never honored ``REPRO_BENCH_BACKEND`` and the
``REPRO_JOBS`` / ``REPRO_CACHE_DIR`` deprecation warning fired in exactly
one script.

Knobs (all optional; empty values count as unset):

``REPRO_BENCH_SCALE``
    Problem scale in (0, 1] (default 0.25 for the benchmark suite).
``REPRO_BENCH_BENCHMARKS``
    Comma-separated benchmark subset.
``REPRO_BENCH_JOBS``
    Worker processes for the campaign engine (default 1 = serial).
``REPRO_BENCH_CACHE_DIR``
    Directory for the persistent result cache.
``REPRO_BENCH_BACKEND``
    DMU storage backend override (``pure``/``accel``).  Unset falls back to
    the config-level default (itself overridable via ``REPRO_BACKEND``).
``REPRO_BENCH_SHARDS``
    ``i/N`` turns a benchmark session into a distributed cache warmer.

The pre-PR6 spellings ``REPRO_JOBS`` and ``REPRO_CACHE_DIR`` are still
honored with a :class:`DeprecationWarning`; the ``REPRO_BENCH_*`` name wins
when both are set.
"""

from __future__ import annotations

import os
import warnings
from typing import List, Optional, Sequence

#: Pre-PR6 spellings, applied automatically by :func:`bench_env` when the
#: caller does not name one explicitly.
DEPRECATED_SPELLINGS = {
    "JOBS": "REPRO_JOBS",
    "CACHE_DIR": "REPRO_CACHE_DIR",
}

DEFAULT_SCALE = 0.25


def bench_env(name: str, deprecated: Optional[str] = None) -> Optional[str]:
    """``REPRO_BENCH_<name>`` from the environment, or None when unset.

    ``deprecated`` names the pre-PR6 spelling (e.g. ``REPRO_JOBS``); when
    omitted it defaults from :data:`DEPRECATED_SPELLINGS`.  A deprecated
    spelling is accepted with a DeprecationWarning, but the new name wins
    when both are set.  Empty values count as unset either way.
    """
    value = os.environ.get(f"REPRO_BENCH_{name}")
    if value:
        return value
    if deprecated is None:
        deprecated = DEPRECATED_SPELLINGS.get(name)
    if deprecated:
        value = os.environ.get(deprecated)
        if value:
            warnings.warn(
                f"{deprecated} is deprecated; use REPRO_BENCH_{name} instead",
                DeprecationWarning,
                stacklevel=2,
            )
            return value
    return None


def bench_scale(default: float = DEFAULT_SCALE) -> float:
    return float(bench_env("SCALE") or default)


def bench_benchmarks(
    default: Optional[Sequence[str]] = None,
) -> Optional[List[str]]:
    raw = bench_env("BENCHMARKS")
    if not raw:
        return list(default) if default is not None else None
    return [name.strip() for name in raw.split(",") if name.strip()]


def bench_jobs() -> int:
    return int(bench_env("JOBS") or "1")


def bench_cache_dir() -> Optional[str]:
    return bench_env("CACHE_DIR")


def bench_backend() -> Optional[str]:
    """The campaign-level DMU backend override, or None (= config default)."""
    return bench_env("BACKEND")


def bench_shard():
    """The ``REPRO_BENCH_SHARDS`` spec as a ShardSpec, or None when unset."""
    raw = bench_env("SHARDS")
    if not raw:
        return None
    from .shard import ShardSpec  # local import: shard pulls in the campaign stack

    return ShardSpec.parse(raw)
