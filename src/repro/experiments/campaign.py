"""Parallel campaign engine with content-hashed result caching.

The paper's evaluation is a large cartesian sweep — 9 benchmarks x 4
runtimes x 5 schedulers x DMU sizing sweeps — in which every point is an
independent simulation.  :class:`CampaignEngine` turns that into an
embarrassingly parallel, incrementally resumable campaign:

* every run is identified by a canonical content hash of its full
  configuration (:func:`~repro.experiments.cache.canonical_run_key`), so two
  requests collide only when they would produce the identical simulation;
* results are memoized in-process *and* optionally persisted to an on-disk
  :class:`~repro.experiments.cache.ResultCache`, so re-invoking an experiment
  (or the benchmark suite) skips every already-simulated point;
* :meth:`CampaignEngine.run_many` fans the uncached runs out over a
  ``multiprocessing`` pool.  Workers return serialized results and the parent
  merges them in key-sorted order, so the campaign output is bit-identical
  to a serial run regardless of completion order or worker count.

:class:`~repro.experiments.common.SimulationRunner` is a thin façade over
this engine; the experiment harnesses declare their sweeps as lists of
:class:`RunRequest` (their ``plan`` functions) and the registry prefetches
them through :meth:`run_many` when ``--jobs`` is greater than one.
"""

from __future__ import annotations

import multiprocessing
import pathlib
import time
import traceback
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import DMUConfig, SimulationConfig, default_paper_config
from ..errors import ExperimentError
from ..reliability.faults import active_spec, ensure_plan, maybe_fault
from ..reliability.retry import RetryPolicy
from ..reliability.watchdog import Watchdog, WatchdogConfig, write_heartbeat
from ..runtime.cost_model import CampaignCostModel
from ..sim.machine import SimulationResult, run_simulation
from ..workloads.registry import create_workload
from .cache import ResultCache, canonical_run_key, load_cost_profile

#: Runtimes whose optimal-granularity default follows the TDM optimum.
_TDM_GRANULARITY_RUNTIMES = ("tdm", "task_superscalar")

#: Sentinel field marking a worker return value as a captured failure rather
#: than a serialized result (no SimulationResult dict ever contains it).
_ERROR_MARKER = "__campaign_error__"


class CampaignRunError(ExperimentError):
    """A simulation inside a campaign batch failed.

    Raw ``multiprocessing`` pool tracebacks identify neither the run nor the
    workload; this wrapper carries the canonical run key and the workload
    parameters so a failed point is diagnosable from logs and shard
    manifests alike.
    """

    def __init__(self, key: str, params: Dict[str, object], error_type: str,
                 error_message: str, worker_traceback: str = "",
                 attempts: Optional[List[Dict[str, object]]] = None) -> None:
        self.key = key
        self.params = dict(params)
        self.error_type = error_type
        self.error_message = error_message
        self.worker_traceback = worker_traceback
        #: Per-attempt failure records (``{"attempt", "error_type",
        #: "error_message"}``) when the retry policy exhausted its budget on
        #: this key; the last entry matches the headline error.
        self.attempts = list(attempts or [])
        described = ", ".join(f"{name}={value!r}" for name, value in self.params.items())
        suffix = f" after {len(self.attempts)} attempts" if len(self.attempts) > 1 else ""
        super().__init__(
            f"simulation {key[:12]}… failed{suffix} ({described}): "
            f"{error_type}: {error_message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form, stored in shard-manifest ``failures`` entries."""
        return {
            "key": self.key,
            "params": dict(self.params),
            "error_type": self.error_type,
            "error_message": self.error_message,
            "traceback": self.worker_traceback,
            "attempts": [dict(entry) for entry in self.attempts],
        }


def _run_params(payload: Dict[str, object]) -> Dict[str, object]:
    """The human-facing workload parameters of one worker payload."""
    config = payload["config"]
    return {
        "benchmark": payload["benchmark"],
        "runtime": config["runtime"],
        "scheduler": config["scheduler"],
        "scale": payload["scale"],
        "granularity": payload["granularity"],
        "granularity_runtime": payload["workload_runtime"],
        "seed": payload["seed"],
    }


@dataclass(frozen=True)
class RunRequest:
    """One simulation the caller wants: the arguments of ``runner.run``."""

    benchmark: str
    runtime: str
    scheduler: str = "fifo"
    granularity: Optional[int] = None
    dmu: Optional[DMUConfig] = None
    granularity_runtime: Optional[str] = None


@dataclass(frozen=True)
class ResolvedRun:
    """A request resolved against the engine: canonical key + full config."""

    request: RunRequest
    key: str
    config: SimulationConfig
    #: Runtime whose Table-II optimal granularity shapes the workload when
    #: the request gives no explicit granularity; None otherwise.
    workload_runtime: Optional[str]


def _simulate_entry(payload: Dict[str, object]) -> Tuple[str, Dict[str, object], float]:
    """Worker-side body: rebuild the run from plain dicts and simulate it.

    Lives at module scope so it pickles under both fork and spawn start
    methods.  Returns the canonical key with the serialized result and the
    worker-side wall seconds the point took (workload build + simulation —
    the quantity cost-aware shard planning predicts); the parent performs
    the deterministic merge.  Exceptions are captured into an error marker
    (rather than poisoning ``pool.map`` with a raw remote traceback) so the
    parent can attach the offending key and workload parameters — and so
    one bad point does not discard its batchmates.
    """
    started = time.perf_counter()
    try:
        attempt = int(payload.get("attempt", 1))
        spec = payload.get("faults")
        if spec:
            # Forwarded fault plan (spawn workers have no parent env/state;
            # fork workers keep the inherited plan's counters).
            ensure_plan(spec)
        heartbeat_dir = payload.get("heartbeat_dir")
        if heartbeat_dir:
            write_heartbeat(heartbeat_dir, payload["key"], attempt)
        maybe_fault("sim", payload["key"], attempt)
        config = SimulationConfig.from_dict(payload["config"])
        workload = create_workload(
            payload["benchmark"],
            scale=payload["scale"],
            granularity=payload["granularity"],
            runtime=payload["workload_runtime"],
            seed=payload["seed"],
        )
        result = run_simulation(workload.build_program(), config)
    except Exception as error:  # noqa: BLE001 - reported with full context
        return payload["key"], {
            _ERROR_MARKER: {
                "params": _run_params(payload),
                "error_type": type(error).__name__,
                "error_message": str(error),
                "traceback": traceback.format_exc(),
            }
        }, time.perf_counter() - started
    return payload["key"], result.to_dict(), time.perf_counter() - started


class CampaignEngine:
    """Runs, parallelizes, memoizes and persists benchmark simulations.

    The engine is the single entry point between the experiment harnesses
    and the simulator (``docs/architecture.md`` shows the layering):

    * **Identity** — every :class:`RunRequest` resolves to a canonical
      SHA-256 run key over the full configuration and workload parameters
      (:func:`repro.experiments.cache.canonical_run_key`); the key is the
      memo key, the disk-cache filename and the shard-ownership input.
    * **Memoization** — results are cached in-process and, with
      ``cache_dir``, in a :class:`~repro.experiments.cache.ResultCache`
      (optionally budgeted via ``cache_max_bytes``); reruns simulate only
      what is missing.
    * **Parallelism** — :meth:`run_many` fans uncached runs over a
      ``multiprocessing.Pool`` (``jobs > 1``) and commits worker results in
      key-sorted order, so parallel output is byte-identical to serial
      (``docs/determinism.md``).  Worker failures surface as
      :class:`CampaignRunError` markers carrying the key and workload
      parameters, never raw pool tracebacks.
    * **Program reuse** — identical workload points share one immutable
      built :class:`~repro.runtime.task.TaskProgram` (scheduler and
      runtime sweeps re-simulate the same program object).
    """

    def __init__(
        self,
        scale: float = 1.0,
        base_config: Optional[SimulationConfig] = None,
        seed: int = 0,
        jobs: int = 1,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        cache_max_bytes: Optional[int] = None,
        verbose: bool = False,
        backend: Optional[str] = None,
        disk_cache: Optional[ResultCache] = None,
        program_cache: Optional[Dict[tuple, object]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        watchdog_config: Optional[WatchdogConfig] = None,
    ) -> None:
        if not (0.0 < scale <= 1.0):
            raise ExperimentError(f"scale must be in (0, 1], got {scale}")
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if cache_max_bytes is not None and cache_max_bytes < 0:
            raise ExperimentError(f"cache_max_bytes must be >= 0, got {cache_max_bytes}")
        if disk_cache is not None and cache_dir is not None:
            raise ExperimentError("pass cache_dir or disk_cache, not both")
        self.scale = scale
        self.seed = seed
        self.jobs = jobs
        self.verbose = verbose
        self.base_config = base_config or default_paper_config()
        #: DMU storage backend applied to every resolved configuration (even
        #: to request-provided DMU sizings, so a sweep stays uniform).  None
        #: keeps whatever the base/request config says.  Backends never
        #: change results — canonical run keys exclude them, so cache entries
        #: are shared across backends.
        self.backend = backend
        if backend is not None:
            self.base_config = self.base_config.with_dmu_backend(backend).validated()
        if disk_cache is not None:
            # Injected shared cache: several engines (the results daemon keeps
            # one per requested scale/seed) serve from one ResultCache.
            self.disk_cache = disk_cache
        else:
            self.disk_cache = ResultCache(cache_dir) if cache_dir is not None else None
        #: Size budget for the on-disk cache; enforced (oldest-mtime entries
        #: evicted first) after every parallel batch and via
        #: :meth:`prune_disk_cache`.
        self.cache_max_bytes = cache_max_bytes
        self._memo: Dict[str, SimulationResult] = {}
        #: Built task programs keyed by their workload parameters.  Sweeps
        #: that vary only the runtime/scheduler/DMU (every scheduler figure,
        #: the runtime-comparison figures) re-simulate the *same* immutable
        #: program, so rebuilding it per run was pure overhead.  Bounded FIFO
        #: (workload sweeps such as the granularity figures produce many
        #: distinct programs; keys are tiny but programs are not).  The cache
        #: key embeds scale and seed, so an injected dict is safe to share
        #: across engines with different parameters.
        self._program_cache: Dict[tuple, object] = (
            program_cache if program_cache is not None else {}
        )
        #: Retry policy for transiently failed runs (crashed/hung workers,
        #: injected faults); permanent simulation errors never retry.
        self.retry_policy = retry_policy or RetryPolicy.from_env()
        #: Deadline shaping for the pool watchdog (hung-worker detection).
        self.watchdog_config = watchdog_config or WatchdogConfig.from_env()
        self.simulations_run = 0
        self.memory_hits = 0
        self.disk_hits = 0
        self.cache_evictions = 0
        #: Keys resubmitted after a transient failure (retry attempts beyond
        #: the first; bounded by ``retry_policy.max_attempts`` per key).
        self.retries = 0
        #: Keys the watchdog struck for exceeding their deadline (hung or
        #: crashed workers — both present as an overdue heartbeat).
        self.watchdog_kills = 0
        #: Observed wall seconds of every simulation this engine (or its
        #: pool workers) actually ran, by canonical key.  Cache hits record
        #: nothing — the map is the raw material of the campaign cost model
        #: (shard manifests persist it as ``key_timings``).
        self.key_timings: Dict[str, float] = {}

    _PROGRAM_CACHE_LIMIT = 16

    def _build_program(
        self,
        benchmark: str,
        granularity: Optional[int],
        workload_runtime: Optional[str],
    ):
        """Build (or reuse) the task program for one workload point.

        Safe to share across simulations: :class:`TaskProgram` and everything
        it references (regions, definitions, dependence specs) are immutable;
        all per-run state lives in the :class:`TaskInstance` objects the
        runtime materializes from the definitions.  Workload generation is
        deterministic in the key parameters, so a cached program is
        indistinguishable from a rebuilt one.
        """
        key = (benchmark, self.scale, granularity, workload_runtime, self.seed)
        program = self._program_cache.get(key)
        if program is None:
            workload = create_workload(
                benchmark,
                scale=self.scale,
                granularity=granularity,
                runtime=workload_runtime,
                seed=self.seed,
            )
            program = workload.build_program()
            cache = self._program_cache
            if len(cache) >= self._PROGRAM_CACHE_LIMIT:
                cache.pop(next(iter(cache)))
            cache[key] = program
        return program

    # ------------------------------------------------------------------ resolution
    def config_for(
        self,
        runtime: str,
        scheduler: str = "fifo",
        dmu: Optional[DMUConfig] = None,
    ) -> SimulationConfig:
        """The full simulation configuration for one runtime/scheduler/DMU."""
        config = replace(
            self.base_config, runtime=runtime, scheduler=scheduler, seed=self.seed
        )
        if dmu is not None:
            config = replace(config, dmu=dmu)
            if self.backend is not None and dmu.backend != self.backend:
                # Sweeps hand in bare DMU sizings; the engine-level backend
                # choice still applies to them.
                config = config.with_dmu_backend(self.backend)
        return config.validated()

    def resolve(self, request: RunRequest) -> ResolvedRun:
        """Attach the canonical key and effective configuration to a request."""
        config = self.config_for(request.runtime, request.scheduler, request.dmu)
        workload_runtime: Optional[str]
        if request.granularity is not None:
            workload_runtime = None
        elif request.granularity_runtime is not None:
            workload_runtime = request.granularity_runtime
        elif request.runtime in _TDM_GRANULARITY_RUNTIMES:
            workload_runtime = "tdm"
        else:
            workload_runtime = "software"
        key = canonical_run_key(
            config,
            benchmark=request.benchmark,
            scale=self.scale,
            granularity=request.granularity,
            granularity_runtime=workload_runtime,
            seed=self.seed,
        )
        return ResolvedRun(request, key, config, workload_runtime)

    # ------------------------------------------------------------------ lookup
    def _lookup(self, resolved: ResolvedRun) -> Optional[SimulationResult]:
        cached = self._memo.get(resolved.key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        if self.disk_cache is not None:
            restored = self.disk_cache.get(resolved.key)
            if restored is not None:
                self.disk_hits += 1
                self._memo[resolved.key] = restored
                return restored
        return None

    def _store(self, resolved: ResolvedRun, result: SimulationResult) -> None:
        self._memo[resolved.key] = result
        if self.disk_cache is not None:
            self.disk_cache.put(resolved.key, result)

    def cached(self, resolved: ResolvedRun) -> Optional[SimulationResult]:
        """The memoized/persisted result for a resolved run, if any.

        Public face of the lookup the run methods perform first — callers
        that orchestrate their own execution (the results daemon offloads
        simulation to an executor) probe with this and commit via
        :meth:`commit_serialized`.
        """
        return self._lookup(resolved)

    def commit_serialized(
        self, key: str, result_dict: Dict[str, object], seconds: float = 0.0
    ) -> SimulationResult:
        """Commit one worker-serialized simulation result under its key.

        This is the single write path for results produced *outside* the
        engine's process: the ``run_many`` pool loop and the results
        daemon's executor both land here, so counters, timings, memo and
        disk persistence stay consistent regardless of who simulated.
        """
        self.simulations_run += 1
        if seconds:
            self.key_timings[key] = seconds
        result = SimulationResult.from_dict(result_dict)
        self._memo[key] = result
        if self.disk_cache is not None:
            # The worker already serialized; don't re-serialize.
            self.disk_cache.put_serialized(key, result_dict)
        return result

    def payload_for(self, resolved: ResolvedRun) -> Dict[str, object]:
        """The picklable worker payload of one resolved run.

        Pairs with the module-level :func:`_simulate_entry` worker: external
        executors submit ``_simulate_entry(payload_for(resolved))`` and feed
        the outcome back through :meth:`commit_serialized`.
        """
        return self._payload(resolved)

    def _payload(self, resolved: ResolvedRun) -> Dict[str, object]:
        return {
            "key": resolved.key,
            "benchmark": resolved.request.benchmark,
            "scale": self.scale,
            "granularity": resolved.request.granularity,
            "workload_runtime": resolved.workload_runtime,
            "seed": self.seed,
            "config": resolved.config.to_dict(),
        }

    # ------------------------------------------------------------------ running
    def run(self, request: RunRequest) -> SimulationResult:
        """Run one simulation, consulting the memo and disk cache first."""
        resolved = self.resolve(request)
        cached = self._lookup(resolved)
        if cached is not None:
            return cached
        result = self._simulate_retrying(resolved, [])
        self._store(resolved, result)
        return result

    def run_many(
        self,
        requests: Sequence[RunRequest],
        failures: Optional[Dict[str, CampaignRunError]] = None,
    ) -> List[Optional[SimulationResult]]:
        """Run a batch, fanning uncached points out over a process pool.

        The return list is aligned with ``requests``.  Workers return
        serialized results; the parent deserializes and commits them in
        key-sorted order, so the memo/disk state after a parallel batch is
        identical to the state after the equivalent serial loop.

        A failing simulation raises :class:`CampaignRunError` (carrying the
        canonical key and workload parameters, not a bare pool traceback).
        When ``failures`` is a dict the engine records errors there instead
        — keyed by canonical run key — and returns ``None`` in the failed
        requests' slots; successful batchmates still commit.  Shard workers
        use that mode to turn crashes into manifest entries.

        **Resilience.**  Transient failures — crashed pool workers, hung
        simulations struck by the watchdog, injected faults — are requeued
        with exponential backoff up to ``retry_policy.max_attempts`` per
        key; deterministic simulation errors fail immediately.  Because
        results are pure functions of their canonical key and are committed
        in key-sorted order, a recovered batch leaves memo and disk state
        byte-identical to an undisturbed serial run.
        """
        resolved = [self.resolve(request) for request in requests]
        pending: Dict[str, ResolvedRun] = {}
        for item in resolved:
            if item.key not in pending and self._lookup(item) is None:
                pending[item.key] = item
        ordered = sorted(pending.values(), key=lambda item: item.key)
        errors: Dict[str, CampaignRunError] = {}
        if len(ordered) > 1 and self.jobs > 1:
            self._run_pool(ordered, errors)
        else:
            for item in ordered:
                history: List[Dict[str, object]] = []
                try:
                    result = self._simulate_retrying(item, history)
                except Exception as error:  # noqa: BLE001 - wrapped with context
                    errors[item.key] = CampaignRunError(
                        item.key,
                        _run_params(self._payload(item)),
                        type(error).__name__,
                        str(error),
                        traceback.format_exc(),
                        attempts=history,
                    )
                    continue
                self._store(item, result)
        if ordered:
            self.prune_disk_cache()
        if errors:
            if failures is None:
                raise errors[min(errors)]  # deterministic: lowest key first
            failures.update(errors)
        return [self._memo.get(item.key) for item in resolved]

    def _simulate_retrying(self, item: ResolvedRun,
                           history: List[Dict[str, object]]) -> SimulationResult:
        """Serial-path simulation with transient-error retries.

        Appends one record per failed attempt to ``history`` and re-raises
        the last error once the attempt budget is spent (or immediately for
        permanent errors) — the caller wraps it with run context.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            attempt += 1
            try:
                return self._simulate(item, attempt=attempt)
            except Exception as error:  # noqa: BLE001 - classified below
                history.append({
                    "attempt": attempt,
                    "error_type": type(error).__name__,
                    "error_message": str(error),
                })
                if not policy.transient(type(error).__name__) or policy.exhausted(attempt):
                    raise
                self.retries += 1
                time.sleep(policy.delay(attempt, item.key))

    def _run_pool(self, ordered: Sequence[ResolvedRun],
                  errors: Dict[str, CampaignRunError]) -> None:
        """Fan a batch over a worker pool with watchdog + retry recovery.

        Round-based: every pending key is submitted to a pool, completions
        are collected as they land, and a round ends when either everything
        finished or the watchdog finds overdue keys — the pool (and any hung
        or orphaned task in it) is then terminated and surviving keys are
        resubmitted.  Keys struck by the watchdog or failed transiently
        accrue attempts; the rest requeue without penalty.  All commits
        happen in key-sorted order after the loop, so completion order (and
        recovery) cannot affect the merged state.
        """
        policy = self.retry_policy
        spec = active_spec()
        cost_model = CampaignCostModel(
            load_cost_profile(self.disk_cache.directory) if self.disk_cache else {},
            scale=self.scale,
        )
        watchdog = Watchdog(self.watchdog_config, cost_model)
        pending: Dict[str, ResolvedRun] = {item.key: item for item in ordered}
        attempts: Dict[str, int] = {}
        history: Dict[str, List[Dict[str, object]]] = {}
        outcomes: Dict[str, Tuple[Dict[str, object], float]] = {}
        if self.verbose:  # pragma: no cover - console feedback only
            print(f"[campaign] {len(pending)} runs on {self.jobs} workers")

        def strike(key: str, error_type: str, message: str) -> None:
            attempts[key] = attempts.get(key, 0) + 1
            history.setdefault(key, []).append({
                "attempt": attempts[key],
                "error_type": error_type,
                "error_message": message,
            })
            if policy.exhausted(attempts[key]):
                item = pending.pop(key)
                errors[key] = CampaignRunError(
                    key,
                    _run_params(self._payload(item)),
                    error_type,
                    message,
                    attempts=history[key],
                )
            else:
                self.retries += 1

        try:
            while pending:
                batch = [pending[key] for key in sorted(pending)]
                backoff = max(
                    (policy.delay(attempts[item.key], item.key)
                     for item in batch if attempts.get(item.key)),
                    default=0.0,
                )
                if backoff:
                    time.sleep(backoff)
                watchdog.reset()
                deadlines = {item.key: watchdog.deadline_for(item) for item in batch}
                with multiprocessing.Pool(processes=min(self.jobs, len(batch))) as pool:
                    handles = {}
                    for item in batch:
                        payload = self._payload(item)
                        payload["attempt"] = attempts.get(item.key, 0) + 1
                        payload["heartbeat_dir"] = str(watchdog.directory)
                        if spec:
                            payload["faults"] = spec
                        handles[item.key] = pool.apply_async(_simulate_entry, (payload,))
                    self._collect(
                        handles, deadlines, watchdog, pending, outcomes, errors, strike
                    )
                    # Exiting the with-block terminates the pool, killing any
                    # hung worker and discarding tasks orphaned by a crash.
        finally:
            watchdog.cleanup()
        for key in sorted(outcomes):
            result_dict, seconds = outcomes[key]
            self.commit_serialized(key, result_dict, seconds)

    def _collect(self, handles, deadlines, watchdog, pending, outcomes,
                 errors, strike) -> None:
        """One round's completion loop: drain results until done or overdue.

        Successful keys leave ``pending`` and land in ``outcomes``;
        transient worker errors strike (requeue or exhaust); permanent ones
        fail directly — a deterministic simulation error recurs on every
        attempt, so its first failure is definitive.  Returning with
        ``handles`` non-empty means the watchdog condemned this round — the
        caller terminates the pool and requeues un-struck survivors.
        """
        poll = watchdog.config.poll_interval_s
        stall_budget = watchdog.config.min_seconds + max(deadlines.values(), default=0.0)
        last_progress = time.monotonic()
        while handles:
            progressed = False
            for key in sorted(handles):
                handle = handles[key]
                if not handle.ready():
                    continue
                progressed = True
                del handles[key]
                try:
                    _, result_dict, seconds = handle.get()
                except Exception as error:  # noqa: BLE001 - pool plumbing failure
                    strike(key, type(error).__name__, str(error))
                    continue
                marker = result_dict.get(_ERROR_MARKER)
                if marker is not None:
                    if self.retry_policy.transient(marker["error_type"]):
                        strike(key, marker["error_type"], marker["error_message"])
                    else:
                        # Permanent: one deterministic failure is definitive.
                        pending.pop(key, None)
                        errors[key] = CampaignRunError(
                            key,
                            marker["params"],
                            marker["error_type"],
                            marker["error_message"],
                            marker["traceback"],
                        )
                    continue
                pending.pop(key, None)
                outcomes[key] = (result_dict, seconds)
            if progressed:
                last_progress = time.monotonic()
            if not handles:
                return
            overdue = watchdog.overdue(
                {key: deadlines[key] for key in handles}
            )
            if overdue:
                self.watchdog_kills += len(overdue)
                for key in sorted(overdue):
                    del handles[key]
                    strike(
                        key,
                        "WorkerTimeout",
                        f"no result after {overdue[key]:.1f}s "
                        f"(deadline {deadlines[key]:.1f}s); pool terminated",
                    )
                return  # terminate the pool; un-struck keys requeue freely
            if time.monotonic() - last_progress > stall_budget:
                # No completion and no overdue heartbeat for a whole budget:
                # workers died before heartbeating (or the pool wedged).
                self.watchdog_kills += len(handles)
                for key in sorted(handles):
                    del handles[key]
                    strike(key, "WorkerStall",
                           f"no worker progress for {stall_budget:.1f}s; pool terminated")
                return
            time.sleep(poll)

    def prune_disk_cache(self) -> int:
        """Enforce ``cache_max_bytes`` on the disk cache; returns evictions."""
        if self.disk_cache is None or self.cache_max_bytes is None:
            return 0
        evicted = self.disk_cache.prune(self.cache_max_bytes)
        self.cache_evictions += evicted
        return evicted

    def _simulate(self, resolved: ResolvedRun, attempt: int = 1) -> SimulationResult:
        """Run one simulation in-process.

        The ``sim`` fault site fires here too, so serial campaigns exercise
        ``error``/``hang`` faults (a ``crash`` fault in serial mode exits
        the campaign process itself — use ``jobs > 1`` for crash chaos).
        """
        maybe_fault("sim", resolved.key, attempt)
        request = resolved.request
        program = self._build_program(
            request.benchmark, request.granularity, resolved.workload_runtime
        )
        if self.verbose:  # pragma: no cover - console feedback only
            print(
                f"[run] {request.benchmark} runtime={request.runtime} "
                f"scheduler={request.scheduler} tasks={program.num_tasks}"
            )
        # Count *completed* simulations only (matching the pool path, where
        # failed workers never reach the parent's counter): shard manifests
        # report failures separately from `simulated`.
        started = time.perf_counter()
        result = run_simulation(program, resolved.config)
        self.key_timings[resolved.key] = time.perf_counter() - started
        self.simulations_run += 1
        return result

    # ------------------------------------------------------------------ stats
    def cache_info(self) -> Dict[str, int]:
        """Counters for tests and reports."""
        return {
            "simulations_run": self.simulations_run,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "memoized": len(self._memo),
            "cache_evictions": self.cache_evictions,
        }

    def reliability_info(self) -> Dict[str, int]:
        """Recovery counters: retries, watchdog strikes, cache quarantines.

        All zero on a fault-free run; the CLI prints them (and the CI chaos
        smoke greps them) whenever any is nonzero.
        """
        cache = self.disk_cache
        return {
            "retries": self.retries,
            "watchdog_kills": self.watchdog_kills,
            "quarantined": cache.quarantined if cache is not None else 0,
            "orphans_swept": cache.orphans_swept if cache is not None else 0,
        }
