"""Experiment harnesses: one module per table / figure of the paper.

Every module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows mirror the
series the paper plots, plus the paper's own numbers where the text states
them, so that EXPERIMENTS.md can record paper-vs-measured side by side.

The mapping from paper artifact to module:

===========  ======================================================
Artifact     Module
===========  ======================================================
Figure 2     :mod:`repro.experiments.fig02_breakdown`
Figure 6     :mod:`repro.experiments.fig06_granularity`
Table II     :mod:`repro.experiments.table02_characteristics`
Figure 7     :mod:`repro.experiments.fig07_tat_dat`
Figure 8     :mod:`repro.experiments.fig08_list_arrays`
Figure 9     :mod:`repro.experiments.fig09_latency`
Table III    :mod:`repro.experiments.table03_area`
Figure 10    :mod:`repro.experiments.fig10_creation_time`
Figure 11    :mod:`repro.experiments.fig11_dat_occupancy`
Figure 12    :mod:`repro.experiments.fig12_schedulers`
Figure 13    :mod:`repro.experiments.fig13_comparison`
===========  ======================================================

Use :func:`repro.experiments.registry.run_experiment` (or the ``tdm-repro``
command-line tool) to run them by name.
"""

from .cache import ResultCache, canonical_run_key
from .campaign import CampaignEngine, RunRequest
from .common import ExperimentResult, SimulationRunner
from .registry import available_experiments, get_experiment, run_experiment

__all__ = [
    "CampaignEngine",
    "ExperimentResult",
    "ResultCache",
    "RunRequest",
    "SimulationRunner",
    "available_experiments",
    "canonical_run_key",
    "get_experiment",
    "run_experiment",
]
