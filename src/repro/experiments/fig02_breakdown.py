"""Figure 2: execution-time breakdown of the software runtime.

The paper characterizes the pure-software runtime on 32 cores by breaking
the time of the master thread and of the worker threads into DEPS (task
creation + dependence management), SCHED, EXEC and IDLE.  The headline
observations this experiment should reproduce:

* the master thread of Cholesky, QR and Streamcluster spends a large share of
  its time in DEPS (84%, 92% and 40% in the paper),
* worker threads spend on average about 65% of their time executing tasks and
  about 32% idle,
* scheduling time is small everywhere (below 11%).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.timeline import Phase
from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

PAPER_MASTER_DEPS = {"cholesky": 0.84, "qr": 0.92, "streamcluster": 0.40}
PAPER_WORKER_AVERAGES = {"EXEC": 0.65, "IDLE": 0.32}

COLUMNS = (
    "benchmark",
    "master_DEPS",
    "master_SCHED",
    "master_EXEC",
    "master_IDLE",
    "worker_DEPS",
    "worker_SCHED",
    "worker_EXEC",
    "worker_IDLE",
)


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    return unique_requests(RunRequest(name, "software") for name in select_benchmarks(benchmarks))


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 2 (software runtime, FIFO scheduler, 32 cores)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="figure_02",
        title="Figure 2: execution time breakdown of master and worker threads (software runtime)",
        columns=COLUMNS,
        paper_reference={
            "master_deps": PAPER_MASTER_DEPS,
            "worker_averages": PAPER_WORKER_AVERAGES,
        },
    )
    worker_exec = []
    worker_idle = []
    for name in names:
        sim = runner.software_baseline(name)
        master = sim.master_breakdown()
        worker = sim.worker_breakdown()
        result.add_row(
            benchmark=name,
            master_DEPS=master[Phase.DEPS],
            master_SCHED=master[Phase.SCHED],
            master_EXEC=master[Phase.EXEC],
            master_IDLE=master[Phase.IDLE],
            worker_DEPS=worker[Phase.DEPS],
            worker_SCHED=worker[Phase.SCHED],
            worker_EXEC=worker[Phase.EXEC],
            worker_IDLE=worker[Phase.IDLE],
        )
        worker_exec.append(worker[Phase.EXEC])
        worker_idle.append(worker[Phase.IDLE])
    if worker_exec:
        result.add_note(
            f"Average worker EXEC fraction: {sum(worker_exec) / len(worker_exec):.2f} "
            f"(paper: {PAPER_WORKER_AVERAGES['EXEC']:.2f})"
        )
        result.add_note(
            f"Average worker IDLE fraction: {sum(worker_idle) / len(worker_idle):.2f} "
            f"(paper: {PAPER_WORKER_AVERAGES['IDLE']:.2f})"
        )
    for name, paper_value in PAPER_MASTER_DEPS.items():
        if name in names:
            measured = result.row_for(benchmark=name)["master_DEPS"]
            result.add_note(
                f"{name} master DEPS: measured {measured:.2f}, paper {paper_value:.2f}"
            )
    return result
