"""Command-line entry point: ``tdm-repro``.

Examples::

    # Reproduce Figure 12 at 30% problem scale and print the Markdown table
    tdm-repro figure_12 --scale 0.3

    # Reproduce Table III (no simulation needed)
    tdm-repro table_03

    # Run the full campaign and write one Markdown file per experiment
    tdm-repro all --scale 0.2 --output results/

    # Fan the sweeps out over 8 worker processes with a persistent result
    # cache: a second invocation simulates nothing
    tdm-repro all --scale 0.2 --jobs 8 --cache-dir .campaign-cache --output results/

    # Distribute one figure across three hosts: each host simulates its
    # deterministic third of the sweep into its own cache ...
    tdm-repro figure_12 --scale 0.2 --shard 1/3 --cache-dir shards/1   # host A
    tdm-repro figure_12 --scale 0.2 --shard 2/3 --cache-dir shards/2   # host B
    tdm-repro figure_12 --scale 0.2 --shard 3/3 --cache-dir shards/3   # host C

    # ... then any host unions the shard caches, verifies completeness and
    # renders — byte-identical to a serial run
    tdm-repro figure_12 --scale 0.2 --merge-shards shards/1 shards/2 shards/3 \\
        --cache-dir merged --output results/ --csv

    # Audit the partition first: keys, predicted costs and shard assignment
    # under a strategy, without simulating anything
    tdm-repro figure_07 --scale 0.2 --shard 1/3 --shard-strategy cost --dry-run

    # Straggler-free variant on a shared filesystem: bins balanced by
    # predicted cost (calibrated from cache/cost_profile.json when present),
    # and idle shards steal unfinished keys through atomic claim files —
    # a dead host's work is absorbed, merged bytes unchanged
    tdm-repro figure_12 --scale 0.2 --shard 1/3 --shard-strategy cost --steal --cache-dir cache
    tdm-repro figure_12 --scale 0.2 --shard 2/3 --shard-strategy cost --steal --cache-dir cache
    tdm-repro figure_12 --scale 0.2 --shard 3/3 --shard-strategy cost --steal --cache-dir cache

    # Long-running results daemon: one ResultCache and program cache serve
    # every request; repeated sweeps cost zero simulations
    tdm-repro serve --cache-dir cache --port 8765 --service-workers 4

    # ... then render over HTTP: identical bytes to the CLI render, with an
    # ETag over the resolved canonical key set (If-None-Match gives 304)
    curl -s -X POST localhost:8765/figures/figure_02 \\
        -d '{"scale": 0.2, "format": "csv"}'
    curl -s localhost:8765/experiments
    curl -s localhost:8765/healthz

    # Curated scenario bundles (trace replay + generative DAG stress
    # workloads, see docs/scenarios.md); each is a first-class experiment,
    # so every flag above (--jobs, --shard, --merge-shards, serve) applies
    tdm-repro scenario                       # list the bundles
    tdm-repro scenario reader_storm --scale 0.2 --jobs 4 --cache-dir cache
    tdm-repro scenario all --scale 0.1 --output results/ --csv

    # Validate an exported task-graph trace (JSON or CSV), print its
    # structural digest, optionally convert between the two flavors
    tdm-repro trace examples/traces/diamond.json
    tdm-repro trace mytrace.json --export-trace mytrace.csv
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from ..config import DMU_BACKENDS
from ..errors import ExperimentError, TraceFormatError
from .common import SimulationRunner
from .registry import (
    available_experiments,
    experiment_catalog,
    resolve_plan,
    run_experiment,
)
from .shard import (
    PLAN_STRATEGIES,
    ShardPlan,
    ShardSpec,
    cost_model_for,
    merge_shards,
    run_shard_worker,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdm-repro",
        description="Reproduce the tables and figures of the TDM paper (HPCA 2018).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (e.g. figure_12, table_03, scenario_reader_storm), "
        "'all', or a verb: 'scenario' (curated bundles), 'trace' (validate a "
        "task-graph trace file), 'serve' (results daemon)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="argument of the 'scenario'/'trace' verbs: a bundle name or 'all' "
        "for scenario, a .json/.csv trace file for trace",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="problem scale in (0, 1]; 1.0 reproduces the paper's task counts",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=None,
        help="subset of benchmarks to run (default: the experiment's own set)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="directory to write Markdown/CSV results into (default: print to stdout)",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="also write CSV files when --output is used",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the campaign engine (default: 1 = serial)",
    )
    parser.add_argument(
        "--backend",
        choices=DMU_BACKENDS,
        default=None,
        help="DMU storage backend: 'pure' (plain Python, the default) or "
        "'accel' (numpy-accelerated; falls back to pure with a warning when "
        "numpy is missing). Results are byte-identical either way, and cache "
        "entries are shared across backends",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="persist simulation results here; rerunning skips cached points",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        help="size budget for --cache-dir; oldest entries are evicted "
        "(by mtime) whenever the cache exceeds it",
    )
    parser.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="shard-worker mode: simulate only this experiment's deterministic "
        "shard I of N into --cache-dir and write a shard manifest (no rendering)",
    )
    parser.add_argument(
        "--shard-strategy",
        choices=PLAN_STRATEGIES,
        default="modulo",
        help="shard partition strategy: 'modulo' (int(key,16) %% N, the default "
        "and the cross-host contract) or 'cost' (LPT bin packing by predicted "
        "wall time, calibrated from <cache-dir>/cost_profile.json when present). "
        "Planning only — results and canonical keys are unaffected",
    )
    parser.add_argument(
        "--steal",
        action="store_true",
        help="with --shard: after draining this shard's own bin, claim and "
        "simulate unfinished keys of the whole plan through atomic claim files "
        "(<cache-dir>/claims/); all stealing workers must share one --cache-dir",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved plan (keys, predicted costs, shard assignment "
        "under --shard-strategy) without simulating anything; use --shard I/N "
        "to choose the shard count being audited",
    )
    parser.add_argument(
        "--merge-shards",
        metavar="DIR",
        nargs="+",
        type=pathlib.Path,
        default=None,
        help="merge mode: union these shard cache directories into --cache-dir, "
        "verify the experiment's full key set is present, then render",
    )
    parser.add_argument(
        "--manifest",
        type=pathlib.Path,
        default=None,
        help="shard-worker manifest path (default: <cache-dir>/manifests/...)",
    )
    parser.add_argument(
        "--allow-incomplete",
        action="store_true",
        help="with --merge-shards: render even if planned keys are missing "
        "(the missing points are simulated locally)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve mode: interface to bind the results daemon to",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="serve mode: TCP port for the results daemon (0 = ephemeral)",
    )
    parser.add_argument(
        "--service-workers",
        type=int,
        default=2,
        help="serve mode: size of the daemon's simulation process pool",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve mode: per-render deadline; a render that cannot finish in "
        "time answers 503 + Retry-After while its simulations keep running "
        "and land in the cache (default: unbounded)",
    )
    parser.add_argument(
        "--queue-budget",
        type=int,
        default=32,
        help="serve mode: maximum simulations queued beyond the worker pool "
        "before new renders are refused with 503 (default: 32)",
    )
    parser.add_argument(
        "--failure-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="serve mode: how long a key's deterministic simulation failure "
        "is answered from the negative cache before a fresh attempt "
        "(default: 30)",
    )
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject deterministic faults for resilience testing: comma-"
        "separated kind@site[:selector][xT] terms, e.g. "
        "'crash@sim:key%%7,hang@cache-read:2,corrupt@commit:1' "
        "(kinds crash/hang/error/corrupt; also via REPRO_FAULTS; "
        "see docs/reliability.md)",
    )
    parser.add_argument(
        "--export-trace",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="trace verb: also write the validated trace back out at PATH "
        "(.json or .csv suffix selects the flavor; converts between the two)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list available experiments and exit",
    )
    parser.add_argument("--verbose", action="store_true", help="print each simulation as it runs")
    return parser


def _trace_command(args: argparse.Namespace) -> int:
    """The ``trace`` verb: validate a trace file, summarize, convert."""
    from ..scenarios.trace import dump_trace, load_trace, program_digest

    try:
        program = load_trace(args.target)
    except TraceFormatError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"trace {args.target}: OK")
    print(f"  name: {program.name}")
    print(f"  regions: {len(program.regions)}")
    print(f"  tasks: {program.num_tasks}")
    print(f"  total work: {program.total_work_us:.1f} us")
    print(f"  digest: {program_digest(program)}")
    if args.export_trace is not None:
        try:
            dump_trace(program, args.export_trace)
        except TraceFormatError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"  wrote {args.export_trace}")
    return 0


def _report_reliability(runner: SimulationRunner) -> None:
    """One-line recovery summary (retries/watchdog/quarantine), only when
    something actually went wrong and was absorbed — the common, healthy run
    prints nothing."""
    info = runner.reliability_info()
    if any(info.values()):
        print("[reliability] " + " ".join(
            f"{key}={value}" for key, value in sorted(info.items())
        ))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    if args.faults is not None:
        from ..reliability import faults as fault_injection

        try:
            fault_injection.install_plan(args.faults)
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.experiment is None:
        parser.error("an experiment name (or 'all') is required unless --list is given")
    command = args.experiment.lower()

    if command == "trace":
        if args.target is None:
            parser.error("trace requires a .json/.csv trace file path")
        return _trace_command(args)

    if command == "serve":
        # Daemon mode: a long-running results server owning one ResultCache
        # and program cache (see docs/architecture.md, "Results daemon").
        if args.shard is not None or args.merge_shards is not None or args.dry_run:
            parser.error("serve does not combine with --shard/--merge-shards/--dry-run")
        if args.output is not None:
            parser.error("serve has no --output; responses go to HTTP clients")
        from ..service.server import serve as run_service

        service_kwargs = {}
        if args.failure_ttl is not None:
            service_kwargs["failure_ttl_s"] = args.failure_ttl
        return run_service(
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            workers=args.service_workers,
            verbose=args.verbose,
            request_timeout_s=args.request_timeout,
            queue_budget=args.queue_budget,
            **service_kwargs,
        )

    if command == "scenario":
        # Scenario verb: resolve bundle names to their scenario_<name>
        # experiments, then fall through to the generic experiment path —
        # every flag (--jobs, --shard, --merge-shards, --output) applies.
        from ..scenarios.registry import available_scenarios, get_scenario, scenario_catalog

        if args.target is None:
            for entry in scenario_catalog():
                print(f"{entry['name']}: {entry['title']} "
                      f"[{', '.join(entry['workloads'])}]")
            return 0
        try:
            if args.target.lower() == "all":
                names = [get_scenario(name).experiment for name in available_scenarios()]
            else:
                names = [get_scenario(args.target).experiment]
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif command == "all":
        # 'all' remains the *paper* campaign (every table and figure);
        # scenario bundles run via the scenario verb or by experiment name.
        names = [entry["name"] for entry in experiment_catalog() if entry["kind"] == "paper"]
    else:
        if args.target is not None:
            parser.error(
                f"unexpected argument {args.target!r} "
                "(only the 'scenario' and 'trace' verbs take a target)"
            )
        names = [args.experiment]
    if args.cache_max_bytes is not None and args.cache_dir is None:
        parser.error("--cache-max-bytes requires --cache-dir")
    if args.shard is not None and args.merge_shards is not None:
        parser.error("--shard and --merge-shards are mutually exclusive")
    if (
        (args.shard is not None or args.merge_shards is not None)
        and args.cache_dir is None
        and not args.dry_run
    ):
        parser.error("--shard/--merge-shards require --cache-dir")
    if (args.shard is not None or args.merge_shards is not None or args.dry_run) and len(names) != 1:
        parser.error("--shard/--merge-shards/--dry-run take a single experiment, not 'all'")
    if args.steal and args.shard is None and not args.dry_run:
        parser.error("--steal requires --shard (it is a shard-worker mode)")
    runner = SimulationRunner(
        scale=args.scale,
        verbose=args.verbose,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        backend=args.backend,
    )

    if args.dry_run:
        # Audit mode: resolve and partition the plan, print it, simulate
        # nothing.  A cache dir (when given) only contributes its cost
        # profile, so predictions reflect what a worker would plan with.
        try:
            count = ShardSpec.parse(args.shard).count if args.shard is not None else 1
            plan = ShardPlan(
                resolve_plan(names[0], runner, benchmarks=args.benchmarks),
                count,
                strategy=args.shard_strategy,
                cost_model=cost_model_for(args.cache_dir, args.scale),
            )
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(plan.describe(names[0]))
        return 0

    if args.shard is not None:
        try:
            manifest = run_shard_worker(
                names[0],
                ShardSpec.parse(args.shard),
                runner,
                benchmarks=args.benchmarks,
                manifest=args.manifest,
                strategy=args.shard_strategy,
                steal=args.steal,
            )
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        exit_code = manifest.report()
        runner.prune_cache()
        _report_reliability(runner)
        return exit_code

    if args.merge_shards is not None:
        try:
            report = merge_shards(
                names[0], args.merge_shards, runner, benchmarks=args.benchmarks
            )
            print(report.summary())
            if not args.allow_incomplete:
                report.verify()
        except ExperimentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        # Fall through: render below from the (now complete) merged cache.

    exit_code = 0
    for name in names:
        result = run_experiment(name, scale=args.scale, benchmarks=args.benchmarks, runner=runner)
        if args.output is None:
            print(result.to_markdown())
            continue
        args.output.mkdir(parents=True, exist_ok=True)
        markdown_path = args.output / f"{result.experiment}.md"
        markdown_path.write_text(result.to_markdown(), encoding="utf-8")
        if args.csv:
            csv_path = args.output / f"{result.experiment}.csv"
            csv_path.write_text(result.to_csv(), encoding="utf-8")
        print(f"wrote {markdown_path}")
    evicted = runner.prune_cache()
    if evicted:
        print(f"cache budget: evicted {evicted} oldest entries")
    _report_reliability(runner)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module execution hook
    sys.exit(main())
