"""Table II: benchmark characteristics.

Number of tasks and average task duration of every benchmark at the optimal
granularity of the software runtime and of TDM, compared against the values
the paper reports.  This experiment does not simulate anything — it checks
that the workload generators reproduce the published workload shapes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.registry import PAPER_TABLE2, create_workload
from .common import ExperimentResult, select_benchmarks

COLUMNS = (
    "benchmark",
    "sw_tasks",
    "paper_sw_tasks",
    "sw_duration_us",
    "paper_sw_duration_us",
    "tdm_tasks",
    "paper_tdm_tasks",
    "tdm_duration_us",
    "paper_tdm_duration_us",
)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: object = None,
) -> ExperimentResult:
    """Reproduce Table II (task counts and average durations)."""
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="table_02",
        title="Table II: number of tasks and average task duration per benchmark",
        columns=COLUMNS,
        paper_reference={name: vars(row) for name, row in PAPER_TABLE2.items()},
    )
    if scale != 1.0:
        result.add_note(
            f"Generated at scale={scale}; paper numbers correspond to scale=1.0."
        )
    sw_counts = []
    sw_durations = []
    for name in names:
        paper = PAPER_TABLE2[name]
        sw = create_workload(name, scale=scale, runtime="software").describe()
        tdm = create_workload(name, scale=scale, runtime="tdm").describe()
        result.add_row(
            benchmark=name,
            sw_tasks=sw["num_tasks"],
            paper_sw_tasks=paper.sw_tasks,
            sw_duration_us=sw["average_task_us"],
            paper_sw_duration_us=paper.sw_duration_us,
            tdm_tasks=tdm["num_tasks"],
            paper_tdm_tasks=paper.tdm_tasks,
            tdm_duration_us=tdm["average_task_us"],
            paper_tdm_duration_us=paper.tdm_duration_us,
        )
        sw_counts.append(sw["num_tasks"])
        sw_durations.append(sw["average_task_us"])
    if sw_counts and scale == 1.0:
        result.add_note(
            f"Average generated task count {sum(sw_counts) / len(sw_counts):.0f} "
            f"(paper average 6584), average duration "
            f"{sum(sw_durations) / len(sw_durations):.0f} us (paper average 4976 us)."
        )
    return result
