"""Figure 12: flexible scheduling with TDM — speedup and EDP.

For every benchmark the paper reports, normalized to the software runtime
with a FIFO scheduler:

* OptSW — the best of the five software schedulers on the software runtime,
* FIFO / LIFO / Locality / Successor / Age combined with TDM,
* OptTDM — the best scheduler per benchmark combined with TDM,

both as speedup (top chart) and as normalized EDP (bottom chart).  Headline
numbers: OptSW improves performance by 4.5% on average and reduces EDP by up
to 8.9%; OptTDM improves performance by 12.2–12.3% and reduces EDP by about
20.3–20.4%; the best TDM scheduler differs across benchmarks.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .campaign import RunRequest
from .common import (
    ExperimentResult,
    SCHEDULERS,
    SimulationRunner,
    select_benchmarks,
    unique_requests,
)

COLUMNS = ("benchmark", "configuration", "speedup", "normalized_edp")

PAPER_AVERAGES = {
    "OptSW_speedup": 1.045,
    "Age+TDM_speedup": 1.091,
    "OptTDM_speedup": 1.122,
    "OptTDM_edp_reduction": 0.203,
    "blackscholes_lifo_degradation": 0.293,
    "dedup_best_improvement": 0.232,
    "cholesky_locality_vs_fifo": 0.042,
}


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    requests = []
    for name in select_benchmarks(benchmarks):
        requests.append(RunRequest(name, "software"))
        for scheduler in schedulers:
            requests.append(RunRequest(name, "software", scheduler))
            requests.append(RunRequest(name, "tdm", scheduler))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 12 (speedup and EDP of software schedulers with TDM)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="figure_12",
        title="Figure 12: speedup and EDP of software schedulers on the software runtime and TDM",
        columns=COLUMNS,
        paper_reference=PAPER_AVERAGES,
    )

    speedups_by_config: Dict[str, list] = {}
    edp_by_config: Dict[str, list] = {}

    def record(benchmark: str, configuration: str, speedup: float, edp: float) -> None:
        result.add_row(
            benchmark=benchmark,
            configuration=configuration,
            speedup=speedup,
            normalized_edp=edp,
        )
        speedups_by_config.setdefault(configuration, []).append(speedup)
        edp_by_config.setdefault(configuration, []).append(edp)

    for name in names:
        baseline = runner.software_baseline(name)

        # OptSW: the best software scheduler for this benchmark.
        sw_runs = {
            scheduler: runner.run(name, "software", scheduler) for scheduler in schedulers
        }
        best_sw_scheduler = min(sw_runs, key=lambda s: sw_runs[s].total_cycles)
        opt_sw = sw_runs[best_sw_scheduler]
        record(name, "OptSW", opt_sw.speedup_over(baseline), opt_sw.normalized_edp(baseline))

        # Each scheduler combined with TDM.
        tdm_runs = {
            scheduler: runner.run(name, "tdm", scheduler) for scheduler in schedulers
        }
        for scheduler in schedulers:
            sim = tdm_runs[scheduler]
            record(
                name,
                f"{scheduler}+TDM",
                sim.speedup_over(baseline),
                sim.normalized_edp(baseline),
            )

        # OptTDM: the best scheduler per benchmark combined with TDM.
        best_tdm_scheduler = min(tdm_runs, key=lambda s: tdm_runs[s].total_cycles)
        opt_tdm = tdm_runs[best_tdm_scheduler]
        record(name, "OptTDM", opt_tdm.speedup_over(baseline), opt_tdm.normalized_edp(baseline))
        result.add_note(
            f"{name}: best software scheduler {best_sw_scheduler}, best TDM scheduler {best_tdm_scheduler}"
        )

    for configuration in list(speedups_by_config):
        record_values = speedups_by_config[configuration]
        if record_values:
            result.add_row(
                benchmark="AVG",
                configuration=configuration,
                speedup=runner.geomean(record_values),
                normalized_edp=runner.geomean(edp_by_config[configuration]),
            )
    if "OptTDM" in speedups_by_config:
        avg_speedup = runner.geomean(speedups_by_config["OptTDM"])
        avg_edp = runner.geomean(edp_by_config["OptTDM"])
        result.add_note(
            f"OptTDM average speedup {avg_speedup:.3f} (paper 1.122), "
            f"average EDP {avg_edp:.3f} (paper ~0.797)"
        )
    if "OptSW" in speedups_by_config:
        result.add_note(
            f"OptSW average speedup {runner.geomean(speedups_by_config['OptSW']):.3f} (paper 1.045)"
        )
    return result
