"""Figure 8: performance sensitivity to the list-array sizes.

The paper sweeps the successor, dependence and reader list arrays between 128
and 2048 entries and normalizes to an ideal DMU with unlimited entries.  The
expected observations: 128 entries in any list array is clearly insufficient,
1024 entries saturate performance (about 1.1% average degradation), and
doubling to 2048 buys only ~0.1%.

Two sweep modes are provided: ``diagonal`` (default) sizes the three list
arrays identically, which is the axis the conclusion is drawn along;
``grid`` reproduces the full 4x4x4 sweep of the figure.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Optional, Sequence

from ..config import DMUConfig
from ..errors import ExperimentError
from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

SIZES = (128, 512, 1024, 2048)

COLUMNS = (
    "benchmark",
    "successor_entries",
    "dependence_entries",
    "reader_entries",
    "time_us",
    "performance_vs_ideal",
)


def _sweep_dmu(base: DMUConfig, sla: int, dla: int, rla: int) -> DMUConfig:
    return replace(
        base,
        successor_list_entries=sla,
        dependence_list_entries=dla,
        reader_list_entries=rla,
    )


def _combos(sizes: Sequence[int], mode: str) -> list:
    if mode == "diagonal":
        return [(size, size, size) for size in sizes]
    return list(itertools.product(sizes, repeat=3))


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = SIZES,
    mode: str = "diagonal",
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    if mode not in ("diagonal", "grid"):
        return []  # run() raises the proper error
    base = runner.base_config.dmu
    requests = []
    for name in select_benchmarks(benchmarks):
        requests.append(RunRequest(name, "tdm", dmu=DMUConfig.ideal()))
        for sla, dla, rla in _combos(sizes, mode):
            requests.append(RunRequest(name, "tdm", dmu=_sweep_dmu(base, sla, dla, rla)))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = SIZES,
    mode: str = "diagonal",
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (TDM runtime, FIFO scheduler, ideal-normalized)."""
    if mode not in ("diagonal", "grid"):
        raise ExperimentError(f"unknown sweep mode {mode!r}; use 'diagonal' or 'grid'")
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="figure_08",
        title="Figure 8: performance with different list-array sizes (normalized to an ideal DMU)",
        columns=COLUMNS,
        paper_reference={
            "avg_degradation_at_1024": 0.011,
            "observation": "128 entries in any list array is suboptimal; 1024 saturates",
        },
    )
    base = runner.base_config.dmu
    combos = _combos(sizes, mode)

    per_combo_perf = {combo: [] for combo in combos}
    for name in names:
        ideal = runner.run(name, "tdm", dmu=DMUConfig.ideal())
        for sla, dla, rla in combos:
            sim = runner.run(name, "tdm", dmu=_sweep_dmu(base, sla, dla, rla))
            performance = ideal.microseconds / sim.microseconds
            per_combo_perf[(sla, dla, rla)].append(performance)
            result.add_row(
                benchmark=name,
                successor_entries=sla,
                dependence_entries=dla,
                reader_entries=rla,
                time_us=sim.microseconds,
                performance_vs_ideal=performance,
            )
    for combo, values in per_combo_perf.items():
        if values:
            result.add_row(
                benchmark="AVG",
                successor_entries=combo[0],
                dependence_entries=combo[1],
                reader_entries=combo[2],
                time_us=None,
                performance_vs_ideal=runner.geomean(values),
            )
    thousand = (1024, 1024, 1024)
    if thousand in per_combo_perf and per_combo_perf[thousand]:
        degradation = 1.0 - runner.geomean(per_combo_perf[thousand])
        result.add_note(
            f"Average degradation with 1024-entry list arrays: {degradation * 100:.2f}% (paper: 1.1%)"
        )
    return result
