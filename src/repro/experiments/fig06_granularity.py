"""Figure 6: execution time for different task granularities.

For every benchmark whose granularity can be changed (all but Dedup and
Ferret), the paper sweeps the task granularity under the software runtime and
normalizes the execution time to the best value.  The expected shape is a
U-curve: very fine granularity inflates runtime-system overheads, very coarse
granularity hurts load balancing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..workloads.registry import create_workload
from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

#: Benchmarks swept in Figure 6 (Dedup and Ferret have a fixed granularity).
SWEEPABLE = (
    "blackscholes",
    "cholesky",
    "fluidanimate",
    "histogram",
    "lu",
    "qr",
    "streamcluster",
)

COLUMNS = ("benchmark", "granularity", "granularity_label", "time_us", "normalized_time")


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    names = [name for name in select_benchmarks(benchmarks) if name in SWEEPABLE]
    requests = []
    for name in names:
        workload = create_workload(name, scale=runner.scale)
        for option in workload.granularity_options():
            requests.append(RunRequest(name, "software", granularity=option.value))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 6 (software runtime, FIFO scheduler)."""
    runner = runner or SimulationRunner(scale=scale)
    names = [name for name in select_benchmarks(benchmarks) if name in SWEEPABLE]
    result = ExperimentResult(
        experiment="figure_06",
        title="Figure 6: execution time vs task granularity (normalized to the best granularity)",
        columns=COLUMNS,
        paper_reference={
            "optimal_granularity": {
                name: create_workload(name).optimal_granularity("software") for name in SWEEPABLE
            }
        },
    )
    for name in names:
        workload = create_workload(name, scale=runner.scale)
        sweeps = []
        for option in workload.granularity_options():
            sim = runner.run(name, "software", granularity=option.value)
            sweeps.append((option, sim.microseconds))
        best = min(time_us for _, time_us in sweeps)
        for option, time_us in sweeps:
            result.add_row(
                benchmark=name,
                granularity=option.value,
                granularity_label=option.label,
                time_us=time_us,
                normalized_time=time_us / best,
            )
        best_option = min(sweeps, key=lambda pair: pair[1])[0]
        result.add_note(
            f"{name}: best granularity {best_option.label} "
            f"(paper optimum: {workload.optimal_granularity('software')})"
        )
    return result
