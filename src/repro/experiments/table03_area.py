"""Table III: DMU storage and area, plus the hardware-complexity comparison.

Table III of the paper reports the storage (KB) and area (mm², CACTI 6.0 at
22 nm) of every DMU structure for the selected configuration: 105.25 KB and
0.17 mm² in total.  Section VI-C additionally compares against Task
Superscalar (769 KB for the same number of in-flight tasks/dependences, i.e.
7.3x the DMU's storage).  This experiment evaluates the analytical models —
no simulation is involved.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import DMUConfig
from ..core.storage import (
    CarbonStorageModel,
    DMUStorageModel,
    TaskSuperscalarStorageModel,
)
from .common import ExperimentResult

#: Table III of the paper (storage in KB, area in mm^2).
PAPER_TABLE3 = {
    "Task Table": (23.00, 0.026),
    "Dep Table": (5.25, 0.013),
    "TAT": (18.75, 0.031),
    "DAT": (18.75, 0.031),
    "SLA": (12.25, 0.019),
    "DLA": (12.25, 0.019),
    "RLA": (12.25, 0.019),
    "ReadyQ": (2.75, 0.012),
}
PAPER_TOTAL_KB = 105.25
PAPER_TOTAL_MM2 = 0.17
PAPER_TSS_KB = 769.0
PAPER_COMPLEXITY_RATIO = 7.3

COLUMNS = ("structure", "storage_kb", "paper_storage_kb", "area_mm2", "paper_area_mm2")


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    dmu: Optional[DMUConfig] = None,
    runner: object = None,
) -> ExperimentResult:
    """Reproduce Table III and the Section VI-C storage comparison."""
    model = DMUStorageModel(dmu or DMUConfig())
    result = ExperimentResult(
        experiment="table_03",
        title="Table III: DMU storage (KB) and area (mm^2) requirements",
        columns=COLUMNS,
        paper_reference={
            "per_structure": PAPER_TABLE3,
            "total_kb": PAPER_TOTAL_KB,
            "total_mm2": PAPER_TOTAL_MM2,
            "task_superscalar_kb": PAPER_TSS_KB,
            "complexity_ratio": PAPER_COMPLEXITY_RATIO,
        },
    )
    for structure in model.structures():
        paper_kb, paper_mm2 = PAPER_TABLE3.get(structure.name, (None, None))
        result.add_row(
            structure=structure.name,
            storage_kb=structure.kilobytes,
            paper_storage_kb=paper_kb,
            area_mm2=structure.area_mm2,
            paper_area_mm2=paper_mm2,
        )
    result.add_row(
        structure="Total",
        storage_kb=model.total_kilobytes,
        paper_storage_kb=PAPER_TOTAL_KB,
        area_mm2=model.total_area_mm2,
        paper_area_mm2=PAPER_TOTAL_MM2,
    )

    tss = TaskSuperscalarStorageModel(in_flight_entries=model.config.tat_entries)
    carbon = CarbonStorageModel()
    ratio = tss.total_kilobytes / model.total_kilobytes
    result.add_note(
        f"Task Superscalar storage for the same in-flight window: {tss.total_kilobytes:.2f} KB "
        f"(paper: {PAPER_TSS_KB:.0f} KB)"
    )
    result.add_note(
        f"Hardware-complexity ratio Task Superscalar / DMU: {ratio:.1f}x (paper: {PAPER_COMPLEXITY_RATIO}x)"
    )
    result.add_note(
        f"Carbon hardware queues (estimate): {carbon.total_kilobytes:.2f} KB"
    )
    return result
