"""Figure 7: performance sensitivity to the TAT and DAT sizes.

The paper sweeps the number of TAT and DAT entries between 512 and 4096
(keeping the Task Table / Dependence Table sized accordingly and the list
arrays unlimited) and normalizes performance to an *ideal* DMU with unlimited
entries and the same latency.  The expected observations:

* LU and QR are sensitive to the DAT size,
* Cholesky, Ferret and Histogram are sensitive to the TAT size (Histogram is
  the most demanding: it needs 2048 TAT entries),
* with 2048 entries in both tables the average degradation is below ~1%.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from ..config import DMUConfig
from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

#: Benchmarks shown individually in Figure 7 (the rest saturate at 512 entries).
SENSITIVE_BENCHMARKS = ("cholesky", "ferret", "histogram", "lu", "qr")
SIZES = (512, 1024, 2048, 4096)

COLUMNS = ("benchmark", "tat_entries", "dat_entries", "time_us", "performance_vs_ideal")


def _sweep_dmu(base: DMUConfig, tat: int, dat: int) -> DMUConfig:
    """A DMU with the swept alias-table sizes and unlimited list arrays."""
    huge = 1 << 20
    return replace(
        base,
        tat_entries=tat,
        dat_entries=dat,
        ready_queue_entries=max(tat, base.ready_queue_entries),
        successor_list_entries=huge,
        dependence_list_entries=huge,
        reader_list_entries=huge,
    )


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = SIZES,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    names = select_benchmarks(benchmarks) if benchmarks is not None else list(SENSITIVE_BENCHMARKS)
    base = runner.base_config.dmu
    requests = []
    for name in names:
        requests.append(RunRequest(name, "tdm", dmu=DMUConfig.ideal()))
        for tat in sizes:
            for dat in sizes:
                requests.append(RunRequest(name, "tdm", dmu=_sweep_dmu(base, tat, dat)))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    sizes: Sequence[int] = SIZES,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 7 (TDM runtime, FIFO scheduler, ideal-normalized)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks) if benchmarks is not None else list(SENSITIVE_BENCHMARKS)
    result = ExperimentResult(
        experiment="figure_07",
        title="Figure 7: performance with different TAT and DAT sizes (normalized to an ideal DMU)",
        columns=COLUMNS,
        paper_reference={
            "avg_degradation_at_2048": 0.0091,
            "tat_sensitive": ["cholesky", "ferret", "histogram"],
            "dat_sensitive": ["lu", "qr"],
        },
    )
    base = runner.base_config.dmu
    for name in names:
        ideal = runner.run(name, "tdm", dmu=DMUConfig.ideal())
        for tat in sizes:
            for dat in sizes:
                sim = runner.run(name, "tdm", dmu=_sweep_dmu(base, tat, dat))
                result.add_row(
                    benchmark=name,
                    tat_entries=tat,
                    dat_entries=dat,
                    time_us=sim.microseconds,
                    performance_vs_ideal=ideal.microseconds / sim.microseconds,
                )
    # Average degradation at the selected (2048, 2048) design point.
    selected = [
        row["performance_vs_ideal"]
        for row in result.rows
        if row["tat_entries"] == 2048 and row["dat_entries"] == 2048
    ]
    if selected:
        degradation = 1.0 - runner.geomean(selected)
        result.add_note(
            f"Average degradation with 2048-entry TAT and DAT: {degradation * 100:.2f}% "
            f"(paper: 0.91%)"
        )
    return result
