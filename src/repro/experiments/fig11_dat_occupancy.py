"""Figure 11: DAT set occupancy with static vs dynamic index-bit selection.

When the bits used to index the DAT are fixed statically, benchmarks whose
dependences are blocks of the same data structure map every dependence to a
handful of sets (their low bits are identical), so the DAT suffers conflicts
and its occupancy collapses; worse, the best static choice differs per
benchmark because each uses a different block size.  Selecting the index bits
dynamically from the dependence size (start bit = log2(size)) spreads the
dependences over the sets for every benchmark.

The experiment reports the average number of occupied DAT sets (out of 256
sets for the default 2048-entry, 8-way DAT) for static start bits 0, 4, 8,
12 and 16 and for the dynamic policy, on the five benchmarks shown in the
paper's figure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence, Union

from .campaign import RunRequest
from .common import ExperimentResult, SimulationRunner, select_benchmarks, unique_requests

#: Benchmarks plotted in Figure 11.
FIGURE_BENCHMARKS = ("blackscholes", "cholesky", "fluidanimate", "histogram", "qr")
STATIC_BITS = (0, 4, 8, 12, 16)

COLUMNS = ("benchmark", "index_policy", "average_occupied_sets", "total_sets", "time_us")


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    static_bits: Sequence[int] = STATIC_BITS,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    names = select_benchmarks(benchmarks) if benchmarks is not None else list(FIGURE_BENCHMARKS)
    base = runner.base_config.dmu
    requests = []
    for name in names:
        for bits in static_bits:
            dmu = replace(base, index_selection="static", static_index_start_bit=int(bits))
            requests.append(RunRequest(name, "tdm", dmu=dmu))
        requests.append(RunRequest(name, "tdm", dmu=replace(base, index_selection="dynamic")))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    static_bits: Sequence[int] = STATIC_BITS,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 11 (TDM runtime, FIFO scheduler)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks) if benchmarks is not None else list(FIGURE_BENCHMARKS)
    result = ExperimentResult(
        experiment="figure_11",
        title="Figure 11: DAT set occupancy with static and dynamic index-bit selection",
        columns=COLUMNS,
        paper_reference={
            "observation": "static occupancy ranges from 1% to 88% and the best bits differ "
            "per benchmark; dynamic selection maximizes occupancy everywhere",
        },
    )
    base = runner.base_config.dmu
    total_sets = base.dat_entries // base.dat_associativity
    policies: list[Union[int, str]] = list(static_bits) + ["dynamic"]
    for name in names:
        for policy in policies:
            if policy == "dynamic":
                dmu = replace(base, index_selection="dynamic")
                label = "DYN"
            else:
                dmu = replace(base, index_selection="static", static_index_start_bit=int(policy))
                label = str(policy)
            sim = runner.run(name, "tdm", dmu=dmu)
            result.add_row(
                benchmark=name,
                index_policy=label,
                average_occupied_sets=sim.dat_average_occupied_sets,
                total_sets=total_sets,
                time_us=sim.microseconds,
            )
    for name in names:
        dynamic = result.row_for(benchmark=name, index_policy="DYN")["average_occupied_sets"]
        statics = [
            row["average_occupied_sets"]
            for row in result.rows
            if row["benchmark"] == name and row["index_policy"] != "DYN"
        ]
        if statics:
            result.add_note(
                f"{name}: dynamic occupancy {dynamic:.0f}/{total_sets} sets vs static "
                f"min {min(statics):.0f} / max {max(statics):.0f}"
            )
    return result
