"""Sharded (multi-host) campaign execution on top of the campaign engine.

The campaign engine already made every simulation content-addressed: a run
is its canonical key, results are one JSON document per key, and a cache
directory is a pure function of the key set it holds.  That makes
distribution almost free — the only things a multi-host campaign needs are

* a **deterministic partition** of a figure's key space into N shards.
  :class:`ShardPlan` assigns every canonical key to shard
  ``int(key, 16) % N``: a pure function of the key *value*, so the split is
  identical on every host regardless of plan enumeration order, Python
  hash randomization, or how many duplicate requests a harness plans.
  The modulo partition is blind to run *cost*, so ``strategy="cost"``
  instead bin-packs the keys by predicted wall time (LPT greedy over a
  :class:`~repro.runtime.cost_model.CampaignCostModel`, deterministic
  tie-breaks by key) — same disjoint-cover law, straggler-free bins;
* an opt-in **work-stealing mode** for the residual prediction error and
  for dead hosts: a shard that drains its own bin claims unfinished keys
  of the whole plan through atomic ``O_EXCL`` claim files in the shared
  cache directory (:class:`ClaimBoard`), so idle peers absorb a slow or
  killed shard's work and every key still simulates exactly once;
* a **shard worker** (:func:`run_shard_worker`, reachable as
  ``tdm-repro <experiment> --shard i/N`` and ``scripts/run_shard.py``)
  that simulates only its slice into a shared or per-shard cache directory
  and records a :class:`ShardManifest` — keys attempted, cache hits,
  simulations, failures (with the offending key and workload parameters),
  and wall time.  Rerunning a shard whose cache survived is a pure cache
  warm-up: zero simulations, so a killed host is repaired by rerunning it;
* a **merge step** (:func:`merge_shards`) that unions the shard caches into
  one directory, unions the manifests, and verifies *completeness* — every
  key of the full plan must be present — before any figure is rendered.
  Rendering from the merged union is then simulation-free, and because the
  harness assembles its rows from per-key results, the final CSV bytes are
  identical whether the sweep ran serial, ``--jobs N`` on one host, or as
  N shards on N hosts.  ``tests/test_shard_determinism.py`` pins exactly
  that contract.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple, Union

from ..errors import ExperimentError
from ..reliability.faults import maybe_fault
from ..runtime.cost_model import CampaignCostModel
from .cache import (
    CACHE_FORMAT_VERSION,
    CLAIMS_DIRNAME,
    ResultCache,
    atomic_write,
    load_cost_profile,
    store_cost_profile,
)
from .campaign import CampaignRunError, ResolvedRun
from .common import SimulationRunner

#: Subdirectory of a cache directory where shard manifests are written.
#: Cache entry enumeration pins the ``??/`` fan-out layout, so manifests can
#: live inside the cache directory without being pruned/merged as results.
MANIFEST_DIRNAME = "manifests"

#: Shard-manifest schema version.  v2 added ``key_timings`` (per-key wall
#: seconds of the runs this worker simulated), ``stolen_keys`` and
#: ``strategy``; the reader accepts v1 manifests (the new fields default)
#: and ignores fields it does not know, so mixed-version fleets merge.
MANIFEST_VERSION = 2

#: Partition strategies a :class:`ShardPlan` supports.
PLAN_STRATEGIES = ("modulo", "cost")


def shard_of(key: str, count: int) -> int:
    """The 0-based shard owning ``key`` among ``count`` shards.

    A pure function of the key's hash value (the key *is* a SHA-256 digest,
    so the low bits are uniformly distributed): stable across hosts, Python
    processes, and any reordering of the plan that produced the key.
    """
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    return int(key, 16) % count


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: shard ``index`` of ``count`` (1-based, CLI style)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {self.count}")
        if not (1 <= self.index <= self.count):
            raise ExperimentError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``i/N`` (e.g. ``2/3`` = second of three)."""
        head, sep, tail = text.partition("/")
        try:
            if not sep:
                raise ValueError(text)
            return cls(int(head), int(tail))
        except ValueError:
            raise ExperimentError(
                f"invalid shard spec {text!r}; expected i/N with 1 <= i <= N"
            ) from None

    def owns(self, key: str) -> bool:
        return shard_of(key, self.count) == self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def lpt_assignment(costs: Dict[str, float], count: int) -> Dict[str, int]:
    """Longest-processing-time greedy bin packing of keys into ``count`` bins.

    Keys are placed in decreasing predicted-cost order (ties broken by key,
    so the result is a pure function of the cost map), each onto the
    currently least-loaded bin (load ties broken by lowest bin index).
    Returns key -> 0-based bin.  Classic LPT guarantees a max-bin load
    within 4/3 of optimal; for this planner the property that matters is
    determinism — two hosts computing the same costs compute the same bins.

    Degenerate all-equal-costs input reduces to round-robin over the
    key-sorted order, which tests pin as the contract.
    """
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    bins: List[Tuple[float, int]] = [(0.0, index) for index in range(count)]
    heapq.heapify(bins)
    assignment: Dict[str, int] = {}
    for key in sorted(costs, key=lambda key: (-costs[key], key)):
        load, index = heapq.heappop(bins)
        assignment[key] = index
        heapq.heappush(bins, (load + costs[key], index))
    return assignment


class ShardPlan:
    """A deterministic partition of a plan's canonical key space.

    Built from resolved runs (anything carrying a ``.key`` attribute);
    duplicates collapse by key (first occurrence wins — all occurrences of
    one key describe the identical simulation by construction) and the
    retained runs are key-sorted, so two hosts enumerating the same
    experiment always agree on both membership and order.

    Two partition strategies:

    * ``"modulo"`` (the default and the on-disk contract): shard
      ``int(key, 16) % N`` — a pure function of the key value, requiring no
      cost information at all.
    * ``"cost"``: LPT bin packing over predicted wall times from a
      :class:`~repro.runtime.cost_model.CampaignCostModel` (uncalibrated
      analytic model when none is given).  Still deterministic — the model
      is a pure function of workload parameters and the shared cost
      profile — but hosts planning ``cost`` shards **must** share the same
      profile state (or none); the modulo partition needs no such care.

    Either way the partition never affects results: canonical keys ignore
    it, and merged output is byte-identical regardless of who ran what.
    """

    def __init__(
        self,
        resolved: Iterable[ResolvedRun],
        count: int,
        strategy: str = "modulo",
        cost_model: Optional[CampaignCostModel] = None,
    ) -> None:
        if count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {count}")
        if strategy not in PLAN_STRATEGIES:
            raise ExperimentError(
                f"unknown shard strategy {strategy!r}; available: {', '.join(PLAN_STRATEGIES)}"
            )
        self.count = count
        self.strategy = strategy
        unique: Dict[str, ResolvedRun] = {}
        for item in resolved:
            unique.setdefault(item.key, item)
        self._runs: List[ResolvedRun] = [unique[key] for key in sorted(unique)]
        model = cost_model
        if model is None and strategy == "cost":
            model = CampaignCostModel()
        #: Predicted cost per key: model predictions when a model is
        #: available (for dry-run audits and balance metrics under either
        #: strategy), else a flat 1.0 (loads then count keys).
        self._costs: Dict[str, float] = {
            item.key: (float(model.predict(item)) if model is not None else 1.0)
            for item in self._runs
        }
        if strategy == "cost":
            self._owner = lpt_assignment(self._costs, count)
        else:
            self._owner = {item.key: shard_of(item.key, count) for item in self._runs}

    def __len__(self) -> int:
        return len(self._runs)

    @property
    def runs(self) -> List[ResolvedRun]:
        return list(self._runs)

    def keys(self) -> List[str]:
        """Every canonical key of the plan, sorted."""
        return [item.key for item in self._runs]

    def shard(self, spec: Union[ShardSpec, int]) -> List[ResolvedRun]:
        """The key-sorted runs owned by one shard."""
        if isinstance(spec, int):
            spec = ShardSpec(spec, self.count)
        if spec.count != self.count:
            raise ExperimentError(
                f"shard spec {spec} does not match plan sharded {self.count} ways"
            )
        return [item for item in self._runs if self._owner[item.key] == spec.index - 1]

    def assignment(self) -> Dict[str, int]:
        """Canonical key -> owning shard index (1-based), for every key."""
        return {key: owner + 1 for key, owner in self._owner.items()}

    def predicted_cost(self, key: str) -> float:
        """Predicted wall seconds of one key (1.0 flat without a model)."""
        return self._costs[key]

    def shard_loads(self) -> List[float]:
        """Total predicted cost per shard, indexed 0-based."""
        loads = [0.0] * self.count
        for key, owner in self._owner.items():
            loads[owner] += self._costs[key]
        return loads

    def describe(self, experiment: str = "") -> str:
        """Human-readable plan audit: the ``--dry-run`` output.

        Key-sorted rows (key prefix, owning shard, predicted cost, workload
        parameters) under per-shard load summaries — what an operator reads
        to judge whether the balance is worth a cost-strategy campaign.
        """
        loads = self.shard_loads()
        mean = sum(loads) / len(loads) if loads else 0.0
        peak = max(loads) if loads else 0.0
        lines = [
            f"[plan] {experiment or 'plan'} strategy={self.strategy} "
            f"shards={self.count}: {len(self)} keys, predicted total "
            f"{sum(loads):.3f}s, max shard {peak:.3f}s, mean shard {mean:.3f}s"
        ]
        counts = [0] * self.count
        for owner in self._owner.values():
            counts[owner] += 1
        for index in range(self.count):
            lines.append(
                f"  shard {index + 1}/{self.count}: {counts[index]} keys, "
                f"predicted {loads[index]:.3f}s"
            )
        lines.append("  key          shard  cost_s    run")
        for item in self._runs:
            request = item.request
            described = f"{request.benchmark} {request.runtime}/{request.scheduler}"
            if request.granularity is not None:
                described += f" granularity={request.granularity}"
            lines.append(
                f"  {item.key[:12]}  {self._owner[item.key] + 1:>5}  "
                f"{self._costs[item.key]:<8.3f}  {described}"
            )
        return "\n".join(lines)


class ClaimBoard:
    """Atomic work-stealing claims through a shared cache directory.

    One file per claimed key, ``<cache>/claims/<key>.claim``, created with
    ``O_CREAT | O_EXCL`` — the filesystem's only atomic test-and-set — so
    when two workers race for a key exactly one wins, with no coordinator
    and no locks.  Claim files carry only advisory text (who claimed, when)
    for operators; correctness never reads their contents.

    Claims are in-flight markers, not results: workers release them once the
    key's cache entry exists (the entry itself is the durable dedup), and
    ``merge_shards`` sweeps any *satisfied* leftovers (claim present, key
    cached — a worker crashed between simulating and releasing).  A claim
    whose key is already in the cache is likewise ignored — and replaced —
    by :meth:`claim`, so stale scratch can never force a resimulated key.

    The remaining orphan class — claimed but never simulated, the scratch a
    killed ``--steal`` worker leaves behind — used to block its keys from
    ever being re-stolen (every later worker lost the ``O_EXCL`` race to a
    corpse).  :meth:`reclaim` repairs that: a claim older than this board's
    construction cannot belong to a peer of *this* campaign (peers claim
    after the campaign starts), so the caller takes it over through an
    atomic ``os.replace`` to a per-pid tombstone — exactly one reclaimer
    wins even when several race — and claims the key normally.  The
    ``claims/`` directory lives inside the cache dir but is invisible to
    :class:`ResultCache` entry enumeration (the ``??/*.json`` pin) and is
    never copied by ``merge_from``.
    """

    def __init__(
        self,
        cache_dir: Union[str, pathlib.Path],
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.directory = pathlib.Path(cache_dir) / CLAIMS_DIRNAME
        self.directory.mkdir(parents=True, exist_ok=True)
        #: The cache whose entries satisfy claims (None = satisfied-claim
        #: handling disabled; raw boards behave exactly as before).
        self.cache = cache
        #: Claims whose mtime predates this moment are from an earlier
        #: campaign — eligible for :meth:`reclaim` takeover.
        self._born = time.time()

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.claim"

    def _satisfied(self, key: str) -> bool:
        return self.cache is not None and key in self.cache

    def claim(self, key: str, owner: str = "") -> bool:
        """Atomically claim ``key``; True iff this caller won it.

        An existing claim whose key is already present in the cache is
        stale scratch (the work it guarded is durably done): it is ignored
        — released and re-claimed — rather than treated as a loss.
        """
        maybe_fault("claim", key)
        try:
            descriptor = os.open(
                self.path_for(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            if not self._satisfied(key):
                return False
            # Satisfied leftover: sweep it and retry the O_EXCL create once
            # (a racing claimant may still win — that is fine, the key needs
            # no simulation anyway).
            self.release(key)
            try:
                descriptor = os.open(
                    self.path_for(key), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                return False
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            handle.write(f"{owner} {time.time():.3f}\n")
        return True

    def reclaim(self, key: str, owner: str = "") -> bool:
        """Take over a stale (pre-campaign) claim and claim ``key``; True iff won.

        Stale means: the claim file's mtime predates this board's
        construction — it cannot have been written by a peer of the current
        campaign, only left behind by a dead one.  The takeover renames the
        stale file to a per-pid tombstone (``os.replace`` is atomic, so
        exactly one of several racing reclaimers wins) before claiming
        normally.  A fresh claim — some live peer's in-flight work — is
        respected and the call returns False.
        """
        path = self.path_for(key)
        try:
            stat = path.stat()
        except OSError:
            # Claim vanished (released or already reclaimed): race for it
            # through the ordinary O_EXCL path.
            return self.claim(key, owner)
        if stat.st_mtime >= self._born:
            return False
        tombstone = path.with_name(f"{path.name}.stale.{os.getpid()}")
        try:
            os.replace(path, tombstone)
        except OSError:
            return False  # another reclaimer won the takeover
        try:
            tombstone.unlink()
        except OSError:
            pass
        return self.claim(key, owner)

    def claimed(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def release(self, key: str) -> None:
        """Drop one claim (missing is fine — e.g. a concurrent reset)."""
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def claimed_keys(self) -> List[str]:
        """Every currently claimed key, sorted."""
        return sorted(path.stem for path in self.directory.glob("*.claim"))

    def release_satisfied(self, cache: Optional[ResultCache] = None) -> int:
        """Release every claim whose key is present in ``cache`` (or the
        board's own cache); returns how many were swept.  Run by
        ``merge_shards`` so a campaign's scratch never outlives it."""
        cache = cache if cache is not None else self.cache
        if cache is None:
            return 0
        swept = 0
        for key in self.claimed_keys():
            if key in cache:
                self.release(key)
                swept += 1
        return swept

    def reset(self) -> int:
        """Delete every claim (before rerunning a crashed steal campaign)."""
        dropped = 0
        for key in self.claimed_keys():
            self.release(key)
            dropped += 1
        return dropped


@dataclass
class ShardManifest:
    """What one shard worker attempted and how it went (JSON round-trip)."""

    experiment: str
    shard_index: int
    shard_count: int
    scale: float
    seed: int
    benchmarks: Optional[List[str]]
    keys: List[str]
    cached_hits: int = 0
    simulated: int = 0
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    wall_time_s: float = 0.0
    cache_format_version: int = CACHE_FORMAT_VERSION
    #: Wall seconds of each run this worker *simulated* (cache hits record
    #: nothing), by canonical key — the raw observations behind the
    #: campaign cost model.  New in manifest v2; empty for v1 manifests.
    key_timings: Dict[str, float] = field(default_factory=dict)
    #: Keys this worker claimed from other shards' bins (subset of
    #: ``keys``).  New in manifest v2.
    stolen_keys: List[str] = field(default_factory=list)
    #: Partition strategy the worker planned with.  New in manifest v2.
    strategy: str = "modulo"
    manifest_version: int = MANIFEST_VERSION

    @property
    def attempted(self) -> int:
        return len(self.keys)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "scale": self.scale,
            "seed": self.seed,
            "benchmarks": list(self.benchmarks) if self.benchmarks is not None else None,
            "keys": list(self.keys),
            "cached_hits": self.cached_hits,
            "simulated": self.simulated,
            "failures": {key: dict(value) for key, value in sorted(self.failures.items())},
            "wall_time_s": self.wall_time_s,
            "cache_format_version": self.cache_format_version,
            "key_timings": {key: self.key_timings[key] for key in sorted(self.key_timings)},
            "stolen_keys": list(self.stolen_keys),
            "strategy": self.strategy,
            "manifest_version": self.manifest_version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardManifest":
        """Version-tolerant reader.

        v1 manifests predate ``key_timings``/``stolen_keys``/``strategy``
        (their defaults apply, and the version is recorded as 1); fields a
        *newer* writer might add are dropped rather than crashing, so
        mixed-version fleets keep merging.
        """
        known = {f.name for f in dataclasses.fields(cls)}
        payload = {name: value for name, value in data.items() if name in known}
        payload.setdefault("manifest_version", 1)
        return cls(**payload)

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Persist the manifest atomically (tmp+rename, like cache entries)."""
        path = pathlib.Path(path)
        atomic_write(path, json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def read(cls, path: Union[str, pathlib.Path]) -> "ShardManifest":
        with pathlib.Path(path).open("r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def summary(self) -> str:
        stolen = f", {len(self.stolen_keys)} stolen" if self.stolen_keys else ""
        return (
            f"[shard {self.shard_index}/{self.shard_count}] {self.experiment}: "
            f"{self.attempted} keys, {self.cached_hits} cached, "
            f"{self.simulated} simulated{stolen}, {len(self.failures)} failures "
            f"in {self.wall_time_s:.1f}s"
        )

    def report(self, out: TextIO = sys.stdout, err: TextIO = sys.stderr) -> int:
        """Print the worker-facing summary + failures; returns the exit code.

        Shared by both CLI entry points (``tdm-repro --shard`` and
        ``scripts/run_shard.py worker``) so the output contract — which the
        CI resumability smoke greps (`` 0 simulated``) — has one definition.
        """
        print(self.summary(), file=out)
        for key, failure in sorted(self.failures.items()):
            print(
                f"  FAILED {key[:12]}… {failure['params']}: "
                f"{failure['error_type']}: {failure['error_message']}",
                file=err,
            )
        return 1 if self.failures else 0


def manifest_path(
    cache_dir: Union[str, pathlib.Path], experiment: str, spec: ShardSpec
) -> pathlib.Path:
    """Default manifest location inside a (shared or per-shard) cache dir."""
    name = f"{experiment}.shard-{spec.index}-of-{spec.count}.json"
    return pathlib.Path(cache_dir) / MANIFEST_DIRNAME / name


def find_manifests(
    cache_dir: Union[str, pathlib.Path], experiment: Optional[str] = None
) -> List[pathlib.Path]:
    """Manifest files inside one cache directory, sorted (optionally filtered)."""
    root = pathlib.Path(cache_dir) / MANIFEST_DIRNAME
    pattern = f"{experiment}.shard-*.json" if experiment else "*.shard-*.json"
    return sorted(root.glob(pattern)) if root.is_dir() else []


def cost_model_for(
    cache_dir: Optional[Union[str, pathlib.Path]], scale: float
) -> CampaignCostModel:
    """A campaign cost model calibrated from a cache dir's profile (if any)."""
    profile = load_cost_profile(cache_dir) if cache_dir is not None else {}
    return CampaignCostModel(profile, scale=scale)


def run_shard_worker(
    experiment: str,
    shard: ShardSpec,
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    manifest: Optional[Union[str, pathlib.Path]] = None,
    strategy: str = "modulo",
    steal: bool = False,
    **plan_kwargs: object,
) -> ShardManifest:
    """Execute one shard of an experiment's plan and write its manifest.

    The runner must persist to a cache directory — the cache *is* the
    shard's output (the manifest is metadata about it).  Individual
    simulation failures are collected into the manifest rather than
    aborting the shard, so a bad point costs one manifest entry, not the
    whole slice.  Rerunning a shard against a surviving cache is a pure
    warm-up: every key hits, ``simulated`` stays 0, and the manifest is
    rewritten to reflect the healthy state.

    ``strategy="cost"`` plans the bins by predicted wall time (calibrated
    from the cache directory's cost profile when one exists).  ``steal``
    turns on work stealing: the worker claims each cold key through the
    cache directory's :class:`ClaimBoard` before simulating it, and after
    draining its own bin absorbs unfinished keys of the whole plan — so
    all stealing workers must share one ``--cache-dir``.  A key some peer
    already claimed is skipped (exactly-once by ``O_EXCL``); merged output
    stays byte-identical to serial regardless of who ran what.
    """
    from .registry import resolve_plan  # local import: registry imports experiments

    engine = runner.engine
    if engine.disk_cache is None:
        raise ExperimentError("shard workers require --cache-dir (the cache is the shard output)")
    cache_dir = engine.disk_cache.directory
    model = cost_model_for(cache_dir, runner.scale) if strategy == "cost" else None
    plan = ShardPlan(
        resolve_plan(experiment, runner, benchmarks=benchmarks, **plan_kwargs),
        shard.count,
        strategy=strategy,
        cost_model=model,
    )
    mine = plan.shard(shard)
    claims = ClaimBoard(cache_dir, cache=engine.disk_cache) if steal else None
    failures: Dict[str, CampaignRunError] = {}
    hits_before = engine.memory_hits + engine.disk_hits
    simulated_before = engine.simulations_run
    started = time.perf_counter()

    def _settle(claimed: Iterable[ResolvedRun]) -> None:
        # A claim's job ends when the key's cache entry exists (the entry is
        # the durable dedup); failed keys keep their claim so peers do not
        # re-attempt a deterministic failure — staleness handling lets a
        # *later* campaign retry them.
        for item in claimed:
            if item.key in engine.disk_cache:
                claims.release(item.key)

    if claims is not None:
        # Warm keys need no claim (already simulated); cold keys are claimed
        # before running so a stealing peer can never duplicate them.  A
        # cold key whose claim predates this campaign belongs to a dead
        # worker — the bin owner reclaims it, so a killed ``--steal`` run
        # never permanently blocks its keys (the bug this fixed).
        mine = [
            item
            for item in mine
            if item.key in engine.disk_cache
            or claims.claim(item.key, owner=f"shard {shard} own")
            or claims.reclaim(item.key, owner=f"shard {shard} reclaimed")
        ]
    engine.run_many([item.request for item in mine], failures=failures)
    if claims is not None:
        _settle(mine)
    stolen: List[ResolvedRun] = []
    if claims is not None:
        owner = plan.assignment()
        # Steal most-expensive-first (predicted), key tie-break: the same
        # LPT intuition — absorb the biggest outstanding chunks first.
        foreign = sorted(
            (item for item in plan.runs if owner[item.key] != shard.index),
            key=lambda item: (-plan.predicted_cost(item.key), item.key),
        )
        for item in foreign:
            if item.key in engine.disk_cache:
                continue
            if not (
                claims.claim(item.key, owner=f"shard {shard} stolen")
                or claims.reclaim(item.key, owner=f"shard {shard} restolen")
            ):
                continue
            stolen.append(item)
            engine.run_many([item.request], failures=failures)
            _settle([item])
    wall = time.perf_counter() - started
    attempted = mine + stolen
    timings = {
        item.key: round(engine.key_timings[item.key], 6)
        for item in attempted
        if item.key in engine.key_timings
    }
    record = ShardManifest(
        experiment=experiment,
        shard_index=shard.index,
        shard_count=shard.count,
        scale=runner.scale,
        seed=runner.seed,
        benchmarks=list(benchmarks) if benchmarks is not None else None,
        keys=[item.key for item in attempted],
        cached_hits=engine.memory_hits + engine.disk_hits - hits_before,
        simulated=engine.simulations_run - simulated_before,
        failures={key: error.to_dict() for key, error in failures.items()},
        wall_time_s=wall,
        key_timings=timings,
        stolen_keys=[item.key for item in stolen],
        strategy=strategy,
    )
    destination = manifest or manifest_path(cache_dir, experiment, shard)
    record.write(destination)
    if timings:
        # Feed the observations back so the *next* cost-planned campaign
        # over this cache directory is calibrated (merge_shards unions the
        # same data across shard directories).
        observer = model or cost_model_for(None, runner.scale)
        resolved_by_key = {item.key: item for item in plan.runs}
        store_cost_profile(cache_dir, observer.observations_for(timings, resolved_by_key))
    return record


@dataclass
class MergeReport:
    """Outcome of merging shard caches for one experiment."""

    experiment: str
    entries_copied: int
    planned_keys: int
    missing_keys: List[str]
    manifests: List[ShardManifest]
    failures: Dict[str, Dict[str, object]]
    missing_shards: List[int]
    #: Corrupt source entries moved to their shard's ``quarantine/`` during
    #: the merge (each leaves its key missing — and thus reported — unless a
    #: healthy copy existed in another shard).
    quarantined: int = 0

    @property
    def complete(self) -> bool:
        return not self.missing_keys

    def verify(self) -> "MergeReport":
        """Raise unless every planned key made it into the merged cache."""
        if not self.missing_keys:
            return self
        preview = ", ".join(key[:12] + "…" for key in self.missing_keys[:5])
        counts = {manifest.shard_count for manifest in self.manifests}
        strategies = {manifest.strategy for manifest in self.manifests}
        if len(counts) == 1 and strategies <= {"modulo"}:
            # The owning shard of every missing key is computable — name the
            # shards to rerun rather than making the operator guess.  Only
            # the modulo partition is reconstructible from keys alone; a
            # cost-planned campaign's bins depend on the profile state at
            # planning time.
            count = counts.pop()
            owners = sorted({shard_of(key, count) + 1 for key in self.missing_keys})
            hint = f"rerun shards {owners} of {count} and re-merge"
        else:
            hint = "rerun the shards that produced no manifest and re-merge"
        failed = [key for key in self.missing_keys if key in self.failures]
        if failed:
            hint += (
                f"; {len(failed)} of the missing keys *failed* to simulate "
                "(rerunning alone will not converge — see the manifest "
                "failures for the offending workload parameters)"
            )
        raise ExperimentError(
            f"{self.experiment}: merged shard caches are incomplete — "
            f"{len(self.missing_keys)}/{self.planned_keys} planned keys missing "
            f"({preview}); {hint}"
        )

    def summary(self) -> str:
        failed = len(self.failures)
        line = (
            f"[merge] {self.experiment}: {self.entries_copied} entries copied, "
            f"{self.planned_keys - len(self.missing_keys)}/{self.planned_keys} planned keys "
            f"present, {len(self.manifests)} manifests, {failed} recorded failures"
        )
        if self.quarantined:
            line += f", quarantined={self.quarantined} corrupt entries"
        return line


def merge_shards(
    experiment: str,
    sources: Sequence[Union[str, pathlib.Path]],
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    shard_count: Optional[int] = None,
    **plan_kwargs: object,
) -> MergeReport:
    """Union shard cache directories into the runner's cache and verify them.

    ``runner`` must point at the destination cache directory (it may be one
    of the sources — merging a shared-filesystem campaign is then just the
    completeness check).  The full plan is re-resolved locally, so
    completeness is judged against the authoritative key set, not against
    whatever the manifests claim; manifests contribute shard-coverage
    diagnostics and the union of recorded failures.
    """
    from .registry import resolve_plan  # local import: registry imports experiments

    engine = runner.engine
    if engine.disk_cache is None:
        raise ExperimentError("merging shards requires --cache-dir (the merge destination)")
    maybe_fault("merge", key=experiment)
    destination = engine.disk_cache
    dest_root = destination.directory.resolve()
    destination.sweep_orphans()
    copied = 0
    quarantined = 0
    manifests: List[ShardManifest] = []
    for source in sources:
        source_path = pathlib.Path(source)
        if source_path.resolve() != dest_root:
            source_cache = ResultCache(source_path)
            copied += destination.merge_from(source_cache)
            quarantined += source_cache.quarantined
        for manifest_file in find_manifests(source_path, experiment):
            try:
                manifests.append(ShardManifest.read(manifest_file))
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                continue  # advisory metadata only; completeness is key-based
    planned = ShardPlan(
        resolve_plan(experiment, runner, benchmarks=benchmarks, **plan_kwargs), count=1
    )
    missing = [key for key in planned.keys() if key not in destination]
    if (dest_root / CLAIMS_DIRNAME).is_dir():
        # Sweep satisfied work-stealing claims (claim present, key cached —
        # a worker crashed between simulating and releasing): the merge is
        # the campaign's natural end, and stale scratch left behind would
        # otherwise shadow the next campaign's claim board.
        ClaimBoard(dest_root).release_satisfied(destination)
    failures: Dict[str, Dict[str, object]] = {}
    seen_shards: Dict[int, int] = {}
    timings: Dict[str, float] = {}
    for manifest in manifests:
        failures.update(manifest.failures)
        seen_shards[manifest.shard_index] = manifest.shard_count
        timings.update(manifest.key_timings)
    if timings:
        # Union every shard's per-key observations into the destination's
        # persistent cost profile — the calibration corpus of the next
        # cost-planned campaign over this cache.
        observer = cost_model_for(None, runner.scale)
        resolved_by_key = {item.key: item for item in planned.runs}
        store_cost_profile(
            dest_root, observer.observations_for(timings, resolved_by_key)
        )
    count = shard_count or (max(seen_shards.values()) if seen_shards else 0)
    missing_shards = [
        index for index in range(1, count + 1) if index not in seen_shards
    ] if count else []
    return MergeReport(
        experiment=experiment,
        entries_copied=copied,
        planned_keys=len(planned),
        missing_keys=missing,
        manifests=manifests,
        failures=failures,
        missing_shards=missing_shards,
        quarantined=quarantined,
    )
