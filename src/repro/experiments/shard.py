"""Sharded (multi-host) campaign execution on top of the campaign engine.

The campaign engine already made every simulation content-addressed: a run
is its canonical key, results are one JSON document per key, and a cache
directory is a pure function of the key set it holds.  That makes
distribution almost free — the only things a multi-host campaign needs are

* a **deterministic partition** of a figure's key space into N shards.
  :class:`ShardPlan` assigns every canonical key to shard
  ``int(key, 16) % N``: a pure function of the key *value*, so the split is
  identical on every host regardless of plan enumeration order, Python
  hash randomization, or how many duplicate requests a harness plans;
* a **shard worker** (:func:`run_shard_worker`, reachable as
  ``tdm-repro <experiment> --shard i/N`` and ``scripts/run_shard.py``)
  that simulates only its slice into a shared or per-shard cache directory
  and records a :class:`ShardManifest` — keys attempted, cache hits,
  simulations, failures (with the offending key and workload parameters),
  and wall time.  Rerunning a shard whose cache survived is a pure cache
  warm-up: zero simulations, so a killed host is repaired by rerunning it;
* a **merge step** (:func:`merge_shards`) that unions the shard caches into
  one directory, unions the manifests, and verifies *completeness* — every
  key of the full plan must be present — before any figure is rendered.
  Rendering from the merged union is then simulation-free, and because the
  harness assembles its rows from per-key results, the final CSV bytes are
  identical whether the sweep ran serial, ``--jobs N`` on one host, or as
  N shards on N hosts.  ``tests/test_shard_determinism.py`` pins exactly
  that contract.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Union

from ..errors import ExperimentError
from .cache import CACHE_FORMAT_VERSION, ResultCache, atomic_write
from .campaign import CampaignRunError, ResolvedRun
from .common import SimulationRunner

#: Subdirectory of a cache directory where shard manifests are written.
#: Cache entry enumeration pins the ``??/`` fan-out layout, so manifests can
#: live inside the cache directory without being pruned/merged as results.
MANIFEST_DIRNAME = "manifests"


def shard_of(key: str, count: int) -> int:
    """The 0-based shard owning ``key`` among ``count`` shards.

    A pure function of the key's hash value (the key *is* a SHA-256 digest,
    so the low bits are uniformly distributed): stable across hosts, Python
    processes, and any reordering of the plan that produced the key.
    """
    if count < 1:
        raise ExperimentError(f"shard count must be >= 1, got {count}")
    return int(key, 16) % count


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity: shard ``index`` of ``count`` (1-based, CLI style)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {self.count}")
        if not (1 <= self.index <= self.count):
            raise ExperimentError(
                f"shard index must be in 1..{self.count}, got {self.index}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``i/N`` (e.g. ``2/3`` = second of three)."""
        head, sep, tail = text.partition("/")
        try:
            if not sep:
                raise ValueError(text)
            return cls(int(head), int(tail))
        except ValueError:
            raise ExperimentError(
                f"invalid shard spec {text!r}; expected i/N with 1 <= i <= N"
            ) from None

    def owns(self, key: str) -> bool:
        return shard_of(key, self.count) == self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


class ShardPlan:
    """A deterministic partition of a plan's canonical key space.

    Built from resolved runs (anything carrying a ``.key`` attribute);
    duplicates collapse by key (first occurrence wins — all occurrences of
    one key describe the identical simulation by construction) and the
    retained runs are key-sorted, so two hosts enumerating the same
    experiment always agree on both membership and order.
    """

    def __init__(self, resolved: Iterable[ResolvedRun], count: int) -> None:
        if count < 1:
            raise ExperimentError(f"shard count must be >= 1, got {count}")
        self.count = count
        unique: Dict[str, ResolvedRun] = {}
        for item in resolved:
            unique.setdefault(item.key, item)
        self._runs: List[ResolvedRun] = [unique[key] for key in sorted(unique)]

    def __len__(self) -> int:
        return len(self._runs)

    @property
    def runs(self) -> List[ResolvedRun]:
        return list(self._runs)

    def keys(self) -> List[str]:
        """Every canonical key of the plan, sorted."""
        return [item.key for item in self._runs]

    def shard(self, spec: Union[ShardSpec, int]) -> List[ResolvedRun]:
        """The key-sorted runs owned by one shard."""
        if isinstance(spec, int):
            spec = ShardSpec(spec, self.count)
        if spec.count != self.count:
            raise ExperimentError(
                f"shard spec {spec} does not match plan sharded {self.count} ways"
            )
        return [item for item in self._runs if spec.owns(item.key)]

    def assignment(self) -> Dict[str, int]:
        """Canonical key -> owning shard index (1-based), for every key."""
        return {item.key: shard_of(item.key, self.count) + 1 for item in self._runs}


@dataclass
class ShardManifest:
    """What one shard worker attempted and how it went (JSON round-trip)."""

    experiment: str
    shard_index: int
    shard_count: int
    scale: float
    seed: int
    benchmarks: Optional[List[str]]
    keys: List[str]
    cached_hits: int = 0
    simulated: int = 0
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    wall_time_s: float = 0.0
    cache_format_version: int = CACHE_FORMAT_VERSION

    @property
    def attempted(self) -> int:
        return len(self.keys)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "scale": self.scale,
            "seed": self.seed,
            "benchmarks": list(self.benchmarks) if self.benchmarks is not None else None,
            "keys": list(self.keys),
            "cached_hits": self.cached_hits,
            "simulated": self.simulated,
            "failures": {key: dict(value) for key, value in sorted(self.failures.items())},
            "wall_time_s": self.wall_time_s,
            "cache_format_version": self.cache_format_version,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShardManifest":
        return cls(**data)

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Persist the manifest atomically (tmp+rename, like cache entries)."""
        path = pathlib.Path(path)
        atomic_write(path, json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return path

    @classmethod
    def read(cls, path: Union[str, pathlib.Path]) -> "ShardManifest":
        with pathlib.Path(path).open("r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def summary(self) -> str:
        return (
            f"[shard {self.shard_index}/{self.shard_count}] {self.experiment}: "
            f"{self.attempted} keys, {self.cached_hits} cached, "
            f"{self.simulated} simulated, {len(self.failures)} failures "
            f"in {self.wall_time_s:.1f}s"
        )

    def report(self, out: TextIO = sys.stdout, err: TextIO = sys.stderr) -> int:
        """Print the worker-facing summary + failures; returns the exit code.

        Shared by both CLI entry points (``tdm-repro --shard`` and
        ``scripts/run_shard.py worker``) so the output contract — which the
        CI resumability smoke greps (`` 0 simulated``) — has one definition.
        """
        print(self.summary(), file=out)
        for key, failure in sorted(self.failures.items()):
            print(
                f"  FAILED {key[:12]}… {failure['params']}: "
                f"{failure['error_type']}: {failure['error_message']}",
                file=err,
            )
        return 1 if self.failures else 0


def manifest_path(
    cache_dir: Union[str, pathlib.Path], experiment: str, spec: ShardSpec
) -> pathlib.Path:
    """Default manifest location inside a (shared or per-shard) cache dir."""
    name = f"{experiment}.shard-{spec.index}-of-{spec.count}.json"
    return pathlib.Path(cache_dir) / MANIFEST_DIRNAME / name


def find_manifests(
    cache_dir: Union[str, pathlib.Path], experiment: Optional[str] = None
) -> List[pathlib.Path]:
    """Manifest files inside one cache directory, sorted (optionally filtered)."""
    root = pathlib.Path(cache_dir) / MANIFEST_DIRNAME
    pattern = f"{experiment}.shard-*.json" if experiment else "*.shard-*.json"
    return sorted(root.glob(pattern)) if root.is_dir() else []


def run_shard_worker(
    experiment: str,
    shard: ShardSpec,
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    manifest: Optional[Union[str, pathlib.Path]] = None,
    **plan_kwargs: object,
) -> ShardManifest:
    """Execute one shard of an experiment's plan and write its manifest.

    The runner must persist to a cache directory — the cache *is* the
    shard's output (the manifest is metadata about it).  Individual
    simulation failures are collected into the manifest rather than
    aborting the shard, so a bad point costs one manifest entry, not the
    whole slice.  Rerunning a shard against a surviving cache is a pure
    warm-up: every key hits, ``simulated`` stays 0, and the manifest is
    rewritten to reflect the healthy state.
    """
    from .registry import resolve_plan  # local import: registry imports experiments

    engine = runner.engine
    if engine.disk_cache is None:
        raise ExperimentError("shard workers require --cache-dir (the cache is the shard output)")
    plan = ShardPlan(resolve_plan(experiment, runner, benchmarks=benchmarks, **plan_kwargs),
                     shard.count)
    mine = plan.shard(shard)
    failures: Dict[str, CampaignRunError] = {}
    hits_before = engine.memory_hits + engine.disk_hits
    simulated_before = engine.simulations_run
    started = time.perf_counter()
    engine.run_many([item.request for item in mine], failures=failures)
    wall = time.perf_counter() - started
    record = ShardManifest(
        experiment=experiment,
        shard_index=shard.index,
        shard_count=shard.count,
        scale=runner.scale,
        seed=runner.seed,
        benchmarks=list(benchmarks) if benchmarks is not None else None,
        keys=[item.key for item in mine],
        cached_hits=engine.memory_hits + engine.disk_hits - hits_before,
        simulated=engine.simulations_run - simulated_before,
        failures={key: error.to_dict() for key, error in failures.items()},
        wall_time_s=wall,
    )
    destination = manifest or manifest_path(engine.disk_cache.directory, experiment, shard)
    record.write(destination)
    return record


@dataclass
class MergeReport:
    """Outcome of merging shard caches for one experiment."""

    experiment: str
    entries_copied: int
    planned_keys: int
    missing_keys: List[str]
    manifests: List[ShardManifest]
    failures: Dict[str, Dict[str, object]]
    missing_shards: List[int]

    @property
    def complete(self) -> bool:
        return not self.missing_keys

    def verify(self) -> "MergeReport":
        """Raise unless every planned key made it into the merged cache."""
        if not self.missing_keys:
            return self
        preview = ", ".join(key[:12] + "…" for key in self.missing_keys[:5])
        counts = {manifest.shard_count for manifest in self.manifests}
        if len(counts) == 1:
            # The owning shard of every missing key is computable — name the
            # shards to rerun rather than making the operator guess.
            count = counts.pop()
            owners = sorted({shard_of(key, count) + 1 for key in self.missing_keys})
            hint = f"rerun shards {owners} of {count} and re-merge"
        else:
            hint = "rerun the shards that produced no manifest and re-merge"
        failed = [key for key in self.missing_keys if key in self.failures]
        if failed:
            hint += (
                f"; {len(failed)} of the missing keys *failed* to simulate "
                "(rerunning alone will not converge — see the manifest "
                "failures for the offending workload parameters)"
            )
        raise ExperimentError(
            f"{self.experiment}: merged shard caches are incomplete — "
            f"{len(self.missing_keys)}/{self.planned_keys} planned keys missing "
            f"({preview}); {hint}"
        )

    def summary(self) -> str:
        failed = len(self.failures)
        return (
            f"[merge] {self.experiment}: {self.entries_copied} entries copied, "
            f"{self.planned_keys - len(self.missing_keys)}/{self.planned_keys} planned keys "
            f"present, {len(self.manifests)} manifests, {failed} recorded failures"
        )


def merge_shards(
    experiment: str,
    sources: Sequence[Union[str, pathlib.Path]],
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    shard_count: Optional[int] = None,
    **plan_kwargs: object,
) -> MergeReport:
    """Union shard cache directories into the runner's cache and verify them.

    ``runner`` must point at the destination cache directory (it may be one
    of the sources — merging a shared-filesystem campaign is then just the
    completeness check).  The full plan is re-resolved locally, so
    completeness is judged against the authoritative key set, not against
    whatever the manifests claim; manifests contribute shard-coverage
    diagnostics and the union of recorded failures.
    """
    from .registry import resolve_plan  # local import: registry imports experiments

    engine = runner.engine
    if engine.disk_cache is None:
        raise ExperimentError("merging shards requires --cache-dir (the merge destination)")
    destination = engine.disk_cache
    dest_root = destination.directory.resolve()
    copied = 0
    manifests: List[ShardManifest] = []
    for source in sources:
        source_path = pathlib.Path(source)
        if source_path.resolve() != dest_root:
            copied += destination.merge_from(ResultCache(source_path))
        for manifest_file in find_manifests(source_path, experiment):
            try:
                manifests.append(ShardManifest.read(manifest_file))
            except (OSError, json.JSONDecodeError, TypeError, ValueError):
                continue  # advisory metadata only; completeness is key-based
    planned = ShardPlan(
        resolve_plan(experiment, runner, benchmarks=benchmarks, **plan_kwargs), count=1
    )
    missing = [key for key in planned.keys() if key not in destination]
    failures: Dict[str, Dict[str, object]] = {}
    seen_shards: Dict[int, int] = {}
    for manifest in manifests:
        failures.update(manifest.failures)
        seen_shards[manifest.shard_index] = manifest.shard_count
    count = shard_count or (max(seen_shards.values()) if seen_shards else 0)
    missing_shards = [
        index for index in range(1, count + 1) if index not in seen_shards
    ] if count else []
    return MergeReport(
        experiment=experiment,
        entries_copied=copied,
        planned_keys=len(planned),
        missing_keys=missing,
        manifests=manifests,
        failures=failures,
        missing_shards=missing_shards,
    )
