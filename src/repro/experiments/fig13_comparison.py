"""Figure 13: comparison against Carbon and Task Superscalar.

Speedup (top) and normalized EDP (bottom) of Carbon (hardware scheduling,
software dependence management), Task Superscalar (everything in hardware,
fixed FIFO scheduling) and TDM with the best software scheduler per
benchmark, all normalized to the software runtime with a FIFO scheduler.

Headline numbers from the paper: Carbon achieves a modest 1.9% average
speedup (5.1% EDP reduction), Task Superscalar 8.1% (14.1% EDP reduction) and
TDM 12.3% (20.4% EDP reduction); in Dedup, where the scheduling policy is
decisive, TDM gains 23.1% while Carbon and Task Superscalar stay below 7.5%.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .campaign import RunRequest
from .common import (
    ExperimentResult,
    SCHEDULERS,
    SimulationRunner,
    select_benchmarks,
    unique_requests,
)

COLUMNS = ("benchmark", "configuration", "speedup", "normalized_edp")

PAPER_AVERAGES = {
    "carbon_speedup": 1.019,
    "task_superscalar_speedup": 1.081,
    "opt_tdm_speedup": 1.123,
    "carbon_edp_reduction": 0.051,
    "task_superscalar_edp_reduction": 0.141,
    "opt_tdm_edp_reduction": 0.204,
}


def plan(
    runner: SimulationRunner,
    benchmarks: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    **_: object,
) -> list:
    """Every simulation ``run`` will request (for parallel prefetching)."""
    requests = []
    for name in select_benchmarks(benchmarks):
        requests.append(RunRequest(name, "software"))
        requests.append(RunRequest(name, "carbon"))
        requests.append(RunRequest(name, "task_superscalar"))
        for scheduler in schedulers:
            requests.append(RunRequest(name, "tdm", scheduler))
    return unique_requests(requests)


def run(
    scale: float = 1.0,
    benchmarks: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    runner: Optional[SimulationRunner] = None,
) -> ExperimentResult:
    """Reproduce Figure 13 (Carbon vs Task Superscalar vs OptTDM)."""
    runner = runner or SimulationRunner(scale=scale)
    names = select_benchmarks(benchmarks)
    result = ExperimentResult(
        experiment="figure_13",
        title="Figure 13: speedup and EDP of Carbon, Task Superscalar and TDM over the software runtime",
        columns=COLUMNS,
        paper_reference=PAPER_AVERAGES,
    )
    speedups: Dict[str, list] = {}
    edps: Dict[str, list] = {}

    def record(benchmark: str, configuration: str, speedup: float, edp: float) -> None:
        result.add_row(
            benchmark=benchmark, configuration=configuration, speedup=speedup, normalized_edp=edp
        )
        speedups.setdefault(configuration, []).append(speedup)
        edps.setdefault(configuration, []).append(edp)

    for name in names:
        baseline = runner.software_baseline(name)
        carbon = runner.run(name, "carbon")
        record(name, "Carbon", carbon.speedup_over(baseline), carbon.normalized_edp(baseline))
        tss = runner.run(name, "task_superscalar")
        record(
            name,
            "TaskSuperscalar",
            tss.speedup_over(baseline),
            tss.normalized_edp(baseline),
        )
        tdm_runs = {scheduler: runner.run(name, "tdm", scheduler) for scheduler in schedulers}
        best = min(tdm_runs, key=lambda s: tdm_runs[s].total_cycles)
        opt_tdm = tdm_runs[best]
        record(name, "OptTDM", opt_tdm.speedup_over(baseline), opt_tdm.normalized_edp(baseline))
        result.add_note(f"{name}: OptTDM scheduler = {best}")

    for configuration in list(speedups):
        result.add_row(
            benchmark="AVG",
            configuration=configuration,
            speedup=runner.geomean(speedups[configuration]),
            normalized_edp=runner.geomean(edps[configuration]),
        )
    for configuration, paper_key in (
        ("Carbon", "carbon_speedup"),
        ("TaskSuperscalar", "task_superscalar_speedup"),
        ("OptTDM", "opt_tdm_speedup"),
    ):
        if configuration in speedups:
            result.add_note(
                f"{configuration} average speedup {runner.geomean(speedups[configuration]):.3f} "
                f"(paper {PAPER_AVERAGES[paper_key]:.3f})"
            )
    return result
