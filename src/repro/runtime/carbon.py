"""Carbon baseline: hardware task queues, software dependence management.

Carbon [10] is conceptually the opposite of TDM (Section VI-C of the paper):
it accelerates the *scheduling* phase with distributed hardware ready queues
(fixed FIFO policy with work stealing) but leaves dependence tracking to the
software runtime.  The model therefore reuses the software dependence tracker
and its calibrated costs, while pool operations cost only a hardware queue
access and need no lock (the hardware serializes them internally).

The distributed per-core queues with work stealing are modeled as a single
FIFO: with stealing enabled the set of queues is work-conserving and behaves
like a global FIFO at the task granularities used in the paper.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..schedulers.base import ReadyEntry
from ..schedulers.fifo import FifoScheduler
from ..sim.events import Acquire
from .base import RuntimeGenerator, RuntimeSystem
from .ready_pool import ReadyPool
from .task import TaskDefinition, TaskInstance
from .tracker import DependenceTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.thread import SimThread


class CarbonRuntime(RuntimeSystem):
    """Software dependence tracking + hardware FIFO task queues."""

    name = "carbon"
    uses_dmu = False
    honors_scheduler = False

    def __init__(self, config, scheduler, engine, noc) -> None:
        super().__init__(config, scheduler, engine, noc)
        # Carbon's scheduling policy is fixed in hardware: ignore the
        # configured software scheduler and use a FIFO pool.  The replacement
        # pool owns the wake channel, exactly like the one it replaces.
        self.pool = ReadyPool(FifoScheduler(), engine, name="carbon-queue")
        self.tracker = DependenceTracker()
        # Fixed per-operation costs hoisted out of the per-yield hot path.
        self._alloc_cycles = self.costs.sw_task_alloc_cycles()
        self._lock_cycles = self.costs.lock_acquire_cycles()
        self._hw_queue_cycles = self.costs.hw_queue_cycles()

    # ------------------------------------------------------------------ creation
    def create_task(
        self, thread: "SimThread", definition: TaskDefinition, region_index: int
    ) -> RuntimeGenerator:
        instance = self.new_instance(definition, region_index)
        yield self._alloc_cycles
        yield self.costs.sw_dependence_lookup_cycles(definition.num_dependences)
        yield self.acquire_runtime_lock
        yield self._lock_cycles
        match = self.tracker.register_task(instance)
        yield self.costs.sw_dependence_commit_cycles(match)
        self.runtime_lock.release(thread.process)
        if match.initially_ready:
            yield self._hw_queue_cycles
            self.push_ready(
                instance,
                producer_core=thread.core_id,
                successor_count=instance.num_successors,
            )
        return instance

    # ------------------------------------------------------------------ scheduling
    def try_get_task(self, thread: "SimThread") -> RuntimeGenerator:
        if not self.pool.peek_available():
            return None
        yield self._hw_queue_cycles
        entry: Optional[ReadyEntry] = self.pool.pop(thread.core_id)
        return entry

    # ------------------------------------------------------------------ finalization
    def finish_task(self, thread: "SimThread", instance: TaskInstance) -> RuntimeGenerator:
        yield self.acquire_runtime_lock
        yield self._lock_cycles
        newly_ready = self.tracker.finish_task(instance)
        yield self.costs.sw_finish_cycles(len(instance.successors))
        # The task's data is available as soon as its finalization is logged;
        # successors may start while the hardware queue insertions below are
        # still in flight, so the finish timestamp is recorded first.
        instance.mark_finished(self.engine.now)
        self.tasks_finished += 1
        self.runtime_lock.release(thread.process)
        # Loop locals hoisted: one hardware-queue insertion per newly ready
        # successor is the hot finalization path of this runtime.
        hw_queue_cycles = self._hw_queue_cycles
        push_ready = self.push_ready
        core_id = thread.core_id
        for successor in newly_ready:
            yield hw_queue_cycles
            push_ready(
                successor,
                producer_core=core_id,
                successor_count=successor.num_successors,
            )
        return None

    def stats(self):
        data = super().stats()
        data["live_dependences_peak"] = self.tracker.max_live_dependences
        return data
