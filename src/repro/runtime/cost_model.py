"""Calibrated cycle costs of runtime-system phases.

This is the bridge between the functional models (dependence tracker, DMU)
and the discrete-event simulation: every runtime-system action is converted
into a number of cycles the acting thread is busy.

Software costs model a Nanos++-style runtime: allocating and initializing a
task descriptor, and, per dependence, hashing the address, comparing against
the dependence's current readers and last writer, and linking the task into
the TDG.  The reader/successor-proportional terms are what make benchmarks
with wide reader sets (QR, Cholesky, Histogram) creation-bound, which is the
behaviour Figure 2 of the paper reports.

TDM costs model only the software work that remains once the DMU tracks
dependences: allocating the descriptor and issuing the ISA instructions (the
DMU processing cycles are computed separately by the DMU model itself, and
the NoC round trip by :class:`~repro.sim.noc.NocModel`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CostModelConfig
from .tracker import MatchResult


@dataclass(frozen=True)
class RuntimeCostModel:
    """Turns runtime-system actions into busy cycles."""

    config: CostModelConfig

    # ------------------------------------------------------------- software
    def sw_task_alloc_cycles(self) -> int:
        """Allocate and initialize a task descriptor in software."""
        return self.config.sw_task_alloc_cycles

    def sw_dependence_cycles(self, match: MatchResult) -> int:
        """Software dependence matching for one task (all its dependences)."""
        return self.sw_dependence_lookup_cycles(match.num_dependences) + self.sw_dependence_commit_cycles(match)

    def sw_dependence_lookup_cycles(self, num_dependences: int) -> int:
        """Address hashing / region lookup work, performed outside the lock.

        Nanos++-style runtimes resolve each dependence region before taking
        the dependence-domain lock; only linking the task into the TDG needs
        mutual exclusion.  Splitting the cost keeps lock contention realistic
        (the paper measures thread-synchronization overheads below 1% of the
        dependence-management time).
        """
        return num_dependences * self.config.sw_dep_base_cycles

    def sw_dependence_commit_cycles(self, match: MatchResult) -> int:
        """TDG linking work (reader traversals, successor inserts), under the lock."""
        cfg = self.config
        return (
            match.readers_traversed * cfg.sw_dep_per_reader_cycles
            + match.successor_links * cfg.sw_dep_per_successor_cycles
        )

    def sw_creation_cycles(self, match: MatchResult) -> int:
        """Total software task-creation cost (descriptor + dependence matching)."""
        return self.sw_task_alloc_cycles() + self.sw_dependence_cycles(match)

    def sw_finish_cycles(self, num_successors: int) -> int:
        """Software task-finalization cost (wake up successors, update the TDG)."""
        cfg = self.config
        return cfg.sw_finish_base_cycles + num_successors * cfg.sw_finish_per_successor_cycles

    def sw_pop_cycles(self) -> int:
        return self.config.sw_schedule_pop_cycles

    def sw_push_cycles(self) -> int:
        return self.config.sw_schedule_push_cycles

    # ------------------------------------------------------------- TDM
    def tdm_task_alloc_cycles(self) -> int:
        """Descriptor allocation still performed in software under TDM."""
        return self.config.tdm_task_alloc_cycles

    def tdm_finish_cycles(self) -> int:
        """Software-side bookkeeping when a task finishes under TDM."""
        return self.config.tdm_finish_base_cycles

    def tdm_pop_cycles(self) -> int:
        return self.config.tdm_schedule_pop_cycles

    def tdm_push_cycles(self) -> int:
        return self.config.tdm_schedule_push_cycles

    def tdm_drain_cycles(self) -> int:
        """Software cost of handling one drained ready task (pool insertion aside)."""
        return self.config.tdm_drain_per_task_cycles

    # ------------------------------------------------------------- hardware queues
    def hw_queue_cycles(self) -> int:
        """Access to a hardware task queue (Carbon / Task Superscalar)."""
        return self.config.hw_queue_access_cycles

    # ------------------------------------------------------------- misc
    def lock_acquire_cycles(self) -> int:
        return self.config.lock_acquire_cycles

    def idle_poll_cycles(self) -> int:
        return self.config.sw_idle_poll_cycles
