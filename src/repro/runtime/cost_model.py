"""Calibrated cycle costs of runtime-system phases.

This is the bridge between the functional models (dependence tracker, DMU)
and the discrete-event simulation: every runtime-system action is converted
into a number of cycles the acting thread is busy.

Software costs model a Nanos++-style runtime: allocating and initializing a
task descriptor, and, per dependence, hashing the address, comparing against
the dependence's current readers and last writer, and linking the task into
the TDG.  The reader/successor-proportional terms are what make benchmarks
with wide reader sets (QR, Cholesky, Histogram) creation-bound, which is the
behaviour Figure 2 of the paper reports.

TDM costs model only the software work that remains once the DMU tracks
dependences: allocating the descriptor and issuing the ISA instructions (the
DMU processing cycles are computed separately by the DMU model itself, and
the NoC round trip by :class:`~repro.sim.noc.NocModel`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..config import CostModelConfig
from .tracker import MatchResult


@dataclass(frozen=True)
class RuntimeCostModel:
    """Turns runtime-system actions into busy cycles."""

    config: CostModelConfig

    # ------------------------------------------------------------- software
    def sw_task_alloc_cycles(self) -> int:
        """Allocate and initialize a task descriptor in software."""
        return self.config.sw_task_alloc_cycles

    def sw_dependence_cycles(self, match: MatchResult) -> int:
        """Software dependence matching for one task (all its dependences)."""
        return self.sw_dependence_lookup_cycles(match.num_dependences) + self.sw_dependence_commit_cycles(match)

    def sw_dependence_lookup_cycles(self, num_dependences: int) -> int:
        """Address hashing / region lookup work, performed outside the lock.

        Nanos++-style runtimes resolve each dependence region before taking
        the dependence-domain lock; only linking the task into the TDG needs
        mutual exclusion.  Splitting the cost keeps lock contention realistic
        (the paper measures thread-synchronization overheads below 1% of the
        dependence-management time).
        """
        return num_dependences * self.config.sw_dep_base_cycles

    def sw_dependence_commit_cycles(self, match: MatchResult) -> int:
        """TDG linking work (reader traversals, successor inserts), under the lock."""
        cfg = self.config
        return (
            match.readers_traversed * cfg.sw_dep_per_reader_cycles
            + match.successor_links * cfg.sw_dep_per_successor_cycles
        )

    def sw_creation_cycles(self, match: MatchResult) -> int:
        """Total software task-creation cost (descriptor + dependence matching)."""
        return self.sw_task_alloc_cycles() + self.sw_dependence_cycles(match)

    def sw_finish_cycles(self, num_successors: int) -> int:
        """Software task-finalization cost (wake up successors, update the TDG)."""
        cfg = self.config
        return cfg.sw_finish_base_cycles + num_successors * cfg.sw_finish_per_successor_cycles

    def sw_pop_cycles(self) -> int:
        return self.config.sw_schedule_pop_cycles

    def sw_push_cycles(self) -> int:
        return self.config.sw_schedule_push_cycles

    # ------------------------------------------------------------- TDM
    def tdm_task_alloc_cycles(self) -> int:
        """Descriptor allocation still performed in software under TDM."""
        return self.config.tdm_task_alloc_cycles

    def tdm_finish_cycles(self) -> int:
        """Software-side bookkeeping when a task finishes under TDM."""
        return self.config.tdm_finish_base_cycles

    def tdm_pop_cycles(self) -> int:
        return self.config.tdm_schedule_pop_cycles

    def tdm_push_cycles(self) -> int:
        return self.config.tdm_schedule_push_cycles

    def tdm_drain_cycles(self) -> int:
        """Software cost of handling one drained ready task (pool insertion aside)."""
        return self.config.tdm_drain_per_task_cycles

    # ------------------------------------------------------------- hardware queues
    def hw_queue_cycles(self) -> int:
        """Access to a hardware task queue (Carbon / Task Superscalar)."""
        return self.config.hw_queue_access_cycles

    # ------------------------------------------------------------- misc
    def lock_acquire_cycles(self) -> int:
        return self.config.lock_acquire_cycles

    def idle_poll_cycles(self) -> int:
        return self.config.sw_idle_poll_cycles


# ---------------------------------------------------------------------------
# Campaign-level cost prediction (wall time of whole simulations)
# ---------------------------------------------------------------------------

#: Relative simulation cost per task by runtime model.  The software runtime
#: simulates per-dependence reader/successor traversals under the runtime
#: lock (more events per task); the hardware-queue runtimes replace pool
#: mechanics with single queue accesses.  Magnitudes are irrelevant — only
#: the ratios shape the partition — and the calibrated fit absorbs the
#: absolute scale.
RUNTIME_COST_WEIGHTS: Dict[str, float] = {
    "software": 1.3,
    "carbon": 1.1,
    "tdm": 1.0,
    "task_superscalar": 0.9,
}

#: Relative cost per task by scheduling policy (the policy runs inside the
#: simulated pop, so richer policies add simulated — and simulation — work).
SCHEDULER_COST_WEIGHTS: Dict[str, float] = {
    "fifo": 1.0,
    "lifo": 1.0,
    "age": 1.05,
    "locality": 1.1,
    "successor": 1.1,
}


class CampaignCostModel:
    """Predicts a campaign run's wall time from its workload parameters.

    Two-layer predictor used by cost-binned shard planning
    (:class:`repro.experiments.shard.ShardPlan` with ``strategy="cost"``):

    * **Analytic baseline** — ``task_count x per-task weight``: the task
      count comes from Table II of the paper scaled by the problem scale
      (the same numbers the workload generators target), the weight from
      the runtime/scheduler of the run and a mild pressure term for
      finite DMU geometries (full tables block and retry, which simulates
      more events).  Granularity sweeps reuse the runtime-optimal task
      count; their residual folds into the calibration error.
    * **Calibration** — a least-squares fit (through the origin) of
      observed seconds against analytic units over every per-key timing
      recorded in shard manifests and unioned into
      ``<cache>/cost_profile.json``.  A key that was itself observed is
      predicted by its own measurement; everything else gets
      ``fitted seconds-per-unit x units``.

    Predictions feed *planning only*: they never enter canonical run keys
    and cannot change rendered bytes (``docs/determinism.md``).
    """

    #: Seconds per analytic unit before any observation exists (roughly the
    #: per-task simulation cost of the smoke workloads on a laptop-class
    #: core; only the cross-run ratios matter for planning).
    DEFAULT_SECONDS_PER_UNIT = 25e-6

    def __init__(
        self,
        profile: Optional[Mapping[str, Mapping[str, float]]] = None,
        scale: float = 1.0,
    ) -> None:
        self.scale = scale
        #: key -> {"seconds": observed wall time, "units": analytic units}.
        self.profile: Dict[str, Dict[str, float]] = {
            key: dict(entry) for key, entry in (profile or {}).items()
        }
        self.seconds_per_unit = self._fit()

    def _fit(self) -> float:
        """Least-squares slope of seconds vs units through the origin."""
        numerator = 0.0
        denominator = 0.0
        for entry in self.profile.values():
            try:
                units = float(entry["units"])
                seconds = float(entry["seconds"])
            except (KeyError, TypeError, ValueError):
                continue  # tolerate hand-edited / older profile entries
            if units <= 0.0 or seconds <= 0.0:
                continue
            numerator += units * seconds
            denominator += units * units
        if denominator <= 0.0:
            return self.DEFAULT_SECONDS_PER_UNIT
        return numerator / denominator

    @property
    def calibrated(self) -> bool:
        """True once at least one usable observation shaped the fit."""
        return self.seconds_per_unit != self.DEFAULT_SECONDS_PER_UNIT or any(
            entry.get("units", 0) and entry.get("seconds", 0)
            for entry in self.profile.values()
        )

    # -------------------------------------------------------------- analytic
    def analytic_units(
        self,
        benchmark: str,
        runtime: str,
        scheduler: str = "fifo",
        workload_runtime: Optional[str] = None,
        dmu: Optional[object] = None,
    ) -> float:
        """Dimensionless predicted cost of one run (before calibration)."""
        # Local import: the workloads package imports repro.runtime.task, so
        # a module-level import here would be circular.
        from ..workloads.registry import PAPER_TABLE2

        row = PAPER_TABLE2.get(benchmark.lower())
        if row is None:
            tasks = 1_000.0  # unknown (custom-registered) workload: flat guess
        elif (workload_runtime or runtime) in ("tdm", "task_superscalar"):
            tasks = float(row.tdm_tasks)
        else:
            tasks = float(row.sw_tasks)
        tasks *= self.scale
        units = tasks * RUNTIME_COST_WEIGHTS.get(runtime, 1.0)
        units *= SCHEDULER_COST_WEIGHTS.get(scheduler, 1.0)
        if dmu is not None and not getattr(dmu, "unlimited", True):
            # Finite tables block and retry when full: simulated occupancy
            # pressure adds events.  Capped so degenerate sizings stay finite.
            pressure = tasks / max(float(getattr(dmu, "tat_entries", 1)), 1.0)
            units *= 1.0 + 0.15 * min(pressure, 4.0)
        return units

    def units_for(self, resolved: object) -> float:
        """Analytic units of a resolved campaign run (``ResolvedRun`` duck)."""
        request = resolved.request
        return self.analytic_units(
            request.benchmark,
            request.runtime,
            scheduler=request.scheduler,
            workload_runtime=getattr(resolved, "workload_runtime", None),
            dmu=resolved.config.dmu,
        )

    # -------------------------------------------------------------- predict
    def predict(self, resolved: object) -> float:
        """Predicted wall seconds for one resolved run.

        An exact observation of this key (same canonical key = identical
        simulation) beats any model; otherwise the calibrated analytic
        estimate is used.
        """
        observed = self.profile.get(resolved.key)
        if observed is not None:
            try:
                seconds = float(observed["seconds"])
                if seconds > 0.0:
                    return seconds
            except (KeyError, TypeError, ValueError):
                pass
        return self.seconds_per_unit * self.units_for(resolved)

    # -------------------------------------------------------------- updates
    def observations_for(
        self, timings: Mapping[str, float], resolved_by_key: Mapping[str, object]
    ) -> Dict[str, Dict[str, float]]:
        """Profile entries for newly observed timings (seconds + units).

        Only keys whose resolved run is known contribute — units are a
        function of the workload parameters, which the timings alone do not
        carry.  The result merges into a persisted profile via
        :func:`repro.experiments.cache.store_cost_profile`.
        """
        entries: Dict[str, Dict[str, float]] = {}
        for key, seconds in timings.items():
            resolved = resolved_by_key.get(key)
            if resolved is None or seconds <= 0.0:
                continue
            entries[key] = {
                "seconds": round(float(seconds), 6),
                "units": round(self.units_for(resolved), 3),
            }
        return entries
