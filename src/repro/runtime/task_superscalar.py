"""Task Superscalar baseline: dependence management *and* scheduling in hardware.

Task Superscalar [11] offloads the whole runtime activity to the
architecture.  The model reuses the DMU for dependence tracking (the paper's
gem5 setup does the same: "Combining this hardware queue and the DMU we also
model Task Superscalar") and schedules directly from the hardware Ready Queue
with a fixed FIFO policy: workers pop ready tasks straight from the unit, so
there is no software pool and the configured software scheduler is ignored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..core.dmu import DependenceManagementUnit
from ..schedulers.base import ReadyEntry
from ..sim.events import Acquire, NotificationEvent, WaitEvent
from ..sim.resources import Lock
from ..sim.timeline import Phase
from .base import RuntimeGenerator, RuntimeSystem
from .task import TaskDefinition, TaskInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.thread import SimThread


class TaskSuperscalarRuntime(RuntimeSystem):
    """Hardware dependence tracking + hardware FIFO scheduling."""

    name = "task_superscalar"
    uses_dmu = True
    honors_scheduler = False

    def __init__(self, config, scheduler, engine, noc) -> None:
        super().__init__(config, scheduler, engine, noc)
        self._dmu = DependenceManagementUnit(config.dmu)
        self.dmu_lock = Lock(engine, "tss")
        self._acquire_dmu_lock = Acquire(self.dmu_lock)
        self.space_freed = NotificationEvent(engine, "tss-space")
        self.blocked_instruction_events = 0
        # Fixed per-operation costs hoisted out of the per-yield hot path.
        self._issue_cycles = config.dmu.instruction_issue_cycles
        self._alloc_cycles = self.costs.tdm_task_alloc_cycles()
        self._finish_cycles = self.costs.tdm_finish_cycles()
        self._hw_queue_cycles = self.costs.hw_queue_cycles()
        # NoC round trips are pure per-core constants; the table lookup
        # replaces a bounds-checking method call on every ISA instruction.
        self._noc_round_trip = tuple(
            noc.round_trip_cycles(core) for core in range(config.chip.num_cores)
        )

    @property
    def dmu(self) -> DependenceManagementUnit:
        return self._dmu

    def work_available_hint(self) -> bool:
        return self._dmu.ready_tasks > 0

    # ------------------------------------------------------------------ issue helper
    def _issue(self, thread: "SimThread", operation: Callable[[], object]) -> RuntimeGenerator:
        """Issue one ISA instruction against the DMU and return its result.

        The hot call sites (:meth:`create_task`, :meth:`try_get_task`,
        :meth:`finish_task`) inline this sequence — one less generator and
        one less ``send()`` frame per instruction — falling back to
        :meth:`_finish_blocked_issue` for the cold full-structure path; keep
        the inline copies in sync with this reference.  Unlike the TDM
        runtime, blocked stalls here charge no post-wait NoC crossing (the
        hardware queue replays the instruction internally).
        """
        yield self._issue_cycles
        yield self._noc_round_trip[thread.core_id]
        space_target = self.space_freed.wait_target()
        yield self._acquire_dmu_lock
        result = operation()
        if result.blocked:
            result = yield from self._finish_blocked_issue(thread, operation, space_target)
        else:
            yield result.cycles
            self.dmu_lock.release(thread.process)
        return result

    def _finish_blocked_issue(
        self, thread: "SimThread", operation: Callable[[], object], space_target
    ) -> RuntimeGenerator:
        """Cold path of :meth:`_issue`: wait for space, then retry.

        Entered with the DMU lock held and ``operation()`` just blocked;
        ``space_target`` was captured before the lock acquisition so no
        space-freed notification is lost to the lock wait.  The completed
        result is detached from the DMU's pooled instance because it is
        consumed after this generator returns (past further yields).
        """
        process = thread.process
        engine = self.engine
        timeline = thread.timeline
        while True:
            self.dmu_lock.release(process)
            self.blocked_instruction_events += 1
            timeline.begin(Phase.IDLE, engine.now)
            yield WaitEvent(space_target)
            timeline.begin(Phase.DEPS, engine.now)
            space_target = self.space_freed.wait_target()
            yield self._acquire_dmu_lock
            result = operation()
            if result.blocked:
                continue
            result = result.detach()
            yield result.cycles
            self.dmu_lock.release(process)
            return result

    # ------------------------------------------------------------------ creation
    def create_task(
        self, thread: "SimThread", definition: TaskDefinition, region_index: int
    ) -> RuntimeGenerator:
        instance = self.new_instance(definition, region_index)
        descriptor = instance.descriptor_address
        # Inlined _issue (see its docstring) for the 2 + num_dependences
        # instructions every creation issues.
        dmu = self._dmu
        dmu_lock = self.dmu_lock
        process = thread.process
        issue_cycles = self._issue_cycles
        round_trip = self._noc_round_trip[thread.core_id]
        acquire_dmu = self._acquire_dmu_lock
        wait_target = self.space_freed.wait_target

        yield self._alloc_cycles
        yield issue_cycles
        yield round_trip
        space_target = wait_target()
        yield acquire_dmu
        result = dmu.create_task(descriptor)
        if result.blocked:
            yield from self._finish_blocked_issue(
                thread, lambda: dmu.create_task(descriptor), space_target
            )
        else:
            yield result.cycles
            dmu_lock.release(process)

        for dependence in definition.dependences:
            yield issue_cycles
            yield round_trip
            space_target = wait_target()
            yield acquire_dmu
            result = dmu.add_dependence(
                descriptor, dependence.address, dependence.size, dependence.direction
            )
            if result.blocked:
                yield from self._finish_blocked_issue(
                    thread,
                    lambda dep=dependence: dmu.add_dependence(
                        descriptor, dep.address, dep.size, dep.direction
                    ),
                    space_target,
                )
            else:
                yield result.cycles
                dmu_lock.release(process)

        yield issue_cycles
        yield round_trip
        space_target = wait_target()
        yield acquire_dmu
        completion = dmu.complete_creation(descriptor)
        if completion.blocked:
            completion = yield from self._finish_blocked_issue(
                thread, lambda: dmu.complete_creation(descriptor), space_target
            )
        else:
            yield completion.cycles
            dmu_lock.release(process)
        if completion.became_ready:
            instance.mark_ready(self.engine.now)
            self.notify_workers()
        return instance

    # ------------------------------------------------------------------ scheduling
    def try_get_task(self, thread: "SimThread") -> RuntimeGenerator:
        dmu = self._dmu
        if dmu.ready_tasks == 0:
            return None
        yield self._hw_queue_cycles
        # Inlined _issue (see its docstring): workers pop straight from the
        # hardware Ready Queue, so this is the hottest instruction path.
        yield self._issue_cycles
        yield self._noc_round_trip[thread.core_id]
        space_target = self.space_freed.wait_target()
        yield self._acquire_dmu_lock
        result = dmu.get_ready_task()
        if result.blocked:
            result = yield from self._finish_blocked_issue(
                thread, dmu.get_ready_task, space_target
            )
        else:
            yield result.cycles
            self.dmu_lock.release(thread.process)
        if result.is_null:
            return None
        instance = self.resolve_descriptor(result.descriptor_address)
        if instance.ready_cycle is None:
            instance.mark_ready(self.engine.now)
        self.pool.total_pops += 1
        return ReadyEntry(
            task=instance,
            creation_seq=instance.uid,
            ready_seq=self.pool.next_ready_seq(),
            successor_count=result.num_successors,
            producer_core=thread.core_id,
        )

    # ------------------------------------------------------------------ finalization
    def finish_task(self, thread: "SimThread", instance: TaskInstance) -> RuntimeGenerator:
        descriptor = instance.descriptor_address
        dmu = self._dmu
        yield self._finish_cycles
        # Inlined _issue (see its docstring): one finish instruction per task.
        yield self._issue_cycles
        yield self._noc_round_trip[thread.core_id]
        space_target = self.space_freed.wait_target()
        yield self._acquire_dmu_lock
        result = dmu.finish_task(descriptor)
        if result.blocked:
            result = yield from self._finish_blocked_issue(
                thread, lambda: dmu.finish_task(descriptor), space_target
            )
        else:
            yield result.cycles
            self.dmu_lock.release(thread.process)
        instance.mark_finished(self.engine.now)
        self.tasks_finished += 1
        self.space_freed.notify_all()
        if result.tasks_woken > 0:
            self.notify_workers()
        return None

    def stats(self):
        data = super().stats()
        data["dmu_blocked_events"] = self.blocked_instruction_events
        return data
