"""Task Superscalar baseline: dependence management *and* scheduling in hardware.

Task Superscalar [11] offloads the whole runtime activity to the
architecture.  The model reuses the DMU for dependence tracking (the paper's
gem5 setup does the same: "Combining this hardware queue and the DMU we also
model Task Superscalar") and schedules directly from the hardware Ready Queue
with a fixed FIFO policy: workers pop ready tasks straight from the unit, so
there is no software pool and the configured software scheduler is ignored.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..core.dmu import DependenceManagementUnit
from ..schedulers.base import ReadyEntry
from ..sim.events import Acquire, NotificationEvent, WaitEvent
from ..sim.resources import Lock
from ..sim.timeline import Phase
from .base import RuntimeGenerator, RuntimeSystem
from .task import TaskDefinition, TaskInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.thread import SimThread


class TaskSuperscalarRuntime(RuntimeSystem):
    """Hardware dependence tracking + hardware FIFO scheduling."""

    name = "task_superscalar"
    uses_dmu = True
    honors_scheduler = False

    def __init__(self, config, scheduler, engine, noc) -> None:
        super().__init__(config, scheduler, engine, noc)
        self._dmu = DependenceManagementUnit(config.dmu)
        self.dmu_lock = Lock(engine, "tss")
        self._acquire_dmu_lock = Acquire(self.dmu_lock)
        self.space_freed = NotificationEvent(engine, "tss-space")
        self.blocked_instruction_events = 0
        # Fixed per-operation costs hoisted out of the per-yield hot path.
        self._issue_cycles = config.dmu.instruction_issue_cycles
        self._alloc_cycles = self.costs.tdm_task_alloc_cycles()
        self._finish_cycles = self.costs.tdm_finish_cycles()
        self._hw_queue_cycles = self.costs.hw_queue_cycles()

    @property
    def dmu(self) -> DependenceManagementUnit:
        return self._dmu

    def work_available_hint(self) -> bool:
        return self._dmu.ready_tasks > 0

    # ------------------------------------------------------------------ issue helper
    def _issue(self, thread: "SimThread", operation: Callable[[], object]) -> RuntimeGenerator:
        yield self._issue_cycles
        yield self.noc.round_trip_cycles(thread.core_id)
        while True:
            space_target = self.space_freed.wait_target()
            yield self._acquire_dmu_lock
            result = operation()
            if result.blocked:
                self.dmu_lock.release(thread.process)
                self.blocked_instruction_events += 1
                previous_phase = Phase.DEPS
                thread.timeline.begin(Phase.IDLE, self.engine.now)
                yield WaitEvent(space_target)
                thread.timeline.begin(previous_phase, self.engine.now)
                continue
            yield result.cycles
            self.dmu_lock.release(thread.process)
            return result

    # ------------------------------------------------------------------ creation
    def create_task(
        self, thread: "SimThread", definition: TaskDefinition, region_index: int
    ) -> RuntimeGenerator:
        instance = self.new_instance(definition, region_index)
        yield self._alloc_cycles
        yield from self._issue(
            thread, lambda: self._dmu.create_task(instance.descriptor_address)
        )
        for dependence in definition.dependences:
            yield from self._issue(
                thread,
                lambda dep=dependence: self._dmu.add_dependence(
                    instance.descriptor_address, dep.address, dep.size, dep.direction
                ),
            )
        completion = yield from self._issue(
            thread, lambda: self._dmu.complete_creation(instance.descriptor_address)
        )
        if completion.became_ready:
            instance.mark_ready(self.engine.now)
            self.notify_workers()
        return instance

    # ------------------------------------------------------------------ scheduling
    def try_get_task(self, thread: "SimThread") -> RuntimeGenerator:
        if self._dmu.ready_tasks == 0:
            return None
        yield self._hw_queue_cycles
        result = yield from self._issue(thread, self._dmu.get_ready_task)
        if result.is_null:
            return None
        instance = self.resolve_descriptor(result.descriptor_address)
        if instance.ready_cycle is None:
            instance.mark_ready(self.engine.now)
        self.pool.total_pops += 1
        return ReadyEntry(
            task=instance,
            creation_seq=instance.uid,
            ready_seq=self.pool.next_ready_seq(),
            successor_count=result.num_successors,
            producer_core=thread.core_id,
        )

    # ------------------------------------------------------------------ finalization
    def finish_task(self, thread: "SimThread", instance: TaskInstance) -> RuntimeGenerator:
        yield self._finish_cycles
        result = yield from self._issue(
            thread, lambda: self._dmu.finish_task(instance.descriptor_address)
        )
        instance.mark_finished(self.engine.now)
        self.tasks_finished += 1
        self.space_freed.notify_all()
        if result.tasks_woken > 0:
            self.notify_workers()
        return None

    def stats(self):
        data = super().stats()
        data["dmu_blocked_events"] = self.blocked_instruction_events
        return data
