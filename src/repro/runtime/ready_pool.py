"""The software pool of ready tasks.

The pool wraps a :class:`~repro.schedulers.base.Scheduler` policy and adds the
bookkeeping the runtime needs: push/pop counters, the high-water mark,
monotonically increasing ready sequence numbers, and the worker wake-up
channel.  The paper's TDM design keeps exactly this structure in software
("the runtime system adds the returned task descriptor address to a pool of
ready tasks"), which is what lets any scheduling policy be used without
hardware changes.

Wake-up batching
----------------
Every push must wake every idle worker — the runtime models require it (each
woken worker re-checks the pool, charges its scheduling costs and contends
for the runtime lock, all of which is observable in the figures).  What is
*not* observable is how the wake-ups travel through the event queue, and the
naive encoding was a storm: one zero-delay queue entry per idle worker per
push.  The pool's :class:`~repro.sim.events.NotificationEvent` now triggers
a **single batched drain entry** per wake-up window
(:class:`repro.sim.events._WaiterBatch`): the drain claims one sequence
number — the position the first waiter would have held — and resumes the
waiters back to back in registration order, which is byte-identical to the
per-worker entries it replaces.  Consecutive pushes in the same window are
free: the channel is already triggered and re-arms lazily on the next wait.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..schedulers.base import ReadyEntry, Scheduler
from ..sim.events import NotificationEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Engine


class ReadyPool:
    """Scheduler-backed pool of ready tasks with statistics and wake-ups.

    When ``engine`` is given the pool owns the worker wake-up channel
    (:attr:`wake_channel`) and every :meth:`push` notifies it; without an
    engine (unit tests exercising pure pool bookkeeping) pushes are silent.
    """

    __slots__ = ("scheduler", "wake_channel", "total_pushes", "total_pops",
                 "failed_pops", "peak_size", "_ready_seq", "size")

    def __init__(
        self,
        scheduler: Scheduler,
        engine: Optional["Engine"] = None,
        name: str = "ready-pool",
    ) -> None:
        self.scheduler = scheduler
        #: Re-arming notification channel idle workers sleep on; ``None``
        #: when the pool was built without an engine.
        self.wake_channel: Optional[NotificationEvent] = (
            NotificationEvent(engine, name) if engine is not None else None
        )
        self.total_pushes = 0
        self.total_pops = 0
        self.failed_pops = 0
        self.peak_size = 0
        self._ready_seq = 0
        #: Current pool size, mirrored here as a public counter: every
        #: mutation goes through push/pop, and the emptiness check idle
        #: workers perform on each wake-up must not chase
        #: ``scheduler.__len__`` through two more calls.
        self.size = 0

    def next_ready_seq(self) -> int:
        """Monotonic sequence number assigned to entries in push order."""
        seq = self._ready_seq
        self._ready_seq += 1
        return seq

    def push(
        self,
        task: object,
        creation_seq: int,
        successor_count: int = 0,
        producer_core: Optional[int] = None,
    ) -> ReadyEntry:
        """Create an entry for ``task``, hand it to the scheduling policy and
        wake idle workers (one batched drain entry per wake-up window — see
        the module docstring)."""
        entry = ReadyEntry(
            task=task,
            creation_seq=creation_seq,
            ready_seq=self.next_ready_seq(),
            successor_count=successor_count,
            producer_core=producer_core,
        )
        self.scheduler.push(entry)
        self.total_pushes += 1
        size = self.size = self.size + 1
        if size > self.peak_size:
            self.peak_size = size
        wake_channel = self.wake_channel
        if wake_channel is not None:
            wake_channel.notify_all()
        return entry

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        """Ask the policy for a task for ``core_id``."""
        entry = self.scheduler.pop(core_id)
        if entry is None:
            self.failed_pops += 1
        else:
            self.total_pops += 1
            self.size -= 1
        return entry

    def notify_waiters(self) -> None:
        """Wake idle workers without a push (work appeared outside the pool:
        hardware ready queues, region completion)."""
        wake_channel = self.wake_channel
        if wake_channel is not None:
            wake_channel.notify_all()

    def __len__(self) -> int:
        return self.size

    @property
    def is_empty(self) -> bool:
        return self.size == 0

    def peek_available(self) -> bool:
        """Cheap emptiness check (no cost is charged for it in the simulation)."""
        return self.size > 0
