"""The software pool of ready tasks.

The pool wraps a :class:`~repro.schedulers.base.Scheduler` policy and adds the
bookkeeping the runtime needs: push/pop counters, the high-water mark, and
monotonically increasing ready sequence numbers.  The paper's TDM design
keeps exactly this structure in software ("the runtime system adds the
returned task descriptor address to a pool of ready tasks"), which is what
lets any scheduling policy be used without hardware changes.
"""

from __future__ import annotations

from typing import Optional

from ..schedulers.base import ReadyEntry, Scheduler


class ReadyPool:
    """Scheduler-backed pool of ready tasks with statistics."""

    __slots__ = ("scheduler", "total_pushes", "total_pops", "failed_pops",
                 "peak_size", "_ready_seq", "_size")

    def __init__(self, scheduler: Scheduler) -> None:
        self.scheduler = scheduler
        self.total_pushes = 0
        self.total_pops = 0
        self.failed_pops = 0
        self.peak_size = 0
        self._ready_seq = 0
        # Pool size mirrored here: every mutation goes through push/pop, and
        # the emptiness check idle workers perform on each wake-up must not
        # chase scheduler.__len__ through two more calls.
        self._size = 0

    def next_ready_seq(self) -> int:
        """Monotonic sequence number assigned to entries in push order."""
        seq = self._ready_seq
        self._ready_seq += 1
        return seq

    def push(
        self,
        task: object,
        creation_seq: int,
        successor_count: int = 0,
        producer_core: Optional[int] = None,
    ) -> ReadyEntry:
        """Create an entry for ``task`` and hand it to the scheduling policy."""
        entry = ReadyEntry(
            task=task,
            creation_seq=creation_seq,
            ready_seq=self.next_ready_seq(),
            successor_count=successor_count,
            producer_core=producer_core,
        )
        self.scheduler.push(entry)
        self.total_pushes += 1
        size = self._size = self._size + 1
        if size > self.peak_size:
            self.peak_size = size
        return entry

    def pop(self, core_id: int) -> Optional[ReadyEntry]:
        """Ask the policy for a task for ``core_id``."""
        entry = self.scheduler.pop(core_id)
        if entry is None:
            self.failed_pops += 1
        else:
            self.total_pops += 1
            self._size -= 1
        return entry

    def __len__(self) -> int:
        return self._size

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    def peek_available(self) -> bool:
        """Cheap emptiness check (no cost is charged for it in the simulation)."""
        return self._size > 0
