"""Runtime-system factory.

Simulations select the runtime by name through
:class:`~repro.config.SimulationConfig.runtime`; this module maps those names
to the concrete classes and instantiates the configured software scheduler
alongside them.
"""

from __future__ import annotations

from typing import Dict, Type

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..schedulers.registry import create_scheduler
from ..sim.engine import Engine
from ..sim.noc import NocModel
from .base import RuntimeSystem
from .carbon import CarbonRuntime
from .software import SoftwareRuntime
from .task_superscalar import TaskSuperscalarRuntime
from .tdm import TDMRuntime

_RUNTIMES: Dict[str, Type[RuntimeSystem]] = {
    SoftwareRuntime.name: SoftwareRuntime,
    TDMRuntime.name: TDMRuntime,
    CarbonRuntime.name: CarbonRuntime,
    TaskSuperscalarRuntime.name: TaskSuperscalarRuntime,
}


def available_runtimes() -> list[str]:
    """Names of the runtime-system models evaluated by the library."""
    return sorted(_RUNTIMES)


def create_runtime(config: SimulationConfig, engine: Engine, noc: NocModel) -> RuntimeSystem:
    """Instantiate the runtime system selected by ``config.runtime``."""
    try:
        runtime_class = _RUNTIMES[config.runtime]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown runtime {config.runtime!r}; available: {', '.join(available_runtimes())}"
        ) from exc
    scheduler = create_scheduler(config.scheduler)
    return runtime_class(config, scheduler, engine, noc)
