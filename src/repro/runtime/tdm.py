"""The TDM runtime: dependence management in hardware, scheduling in software.

This is the paper's proposal.  The runtime allocates task descriptors and
issues the four TDM ISA instructions; the DMU tracks tasks and dependences
and exposes ready tasks through its Ready Queue; the runtime drains ready
tasks into its software pool and schedules them with any policy.

Timing model of one ISA instruction (Section III-D gives them barrier
semantics, so the issuing core is busy for the whole duration):

    issue cycles  +  NoC round trip  +  DMU processing cycles

The DMU processes instructions sequentially, which is modeled with a lock
around the unit.  When the DMU reports that a structure is full, the
instruction blocks: the core waits until a ``finish_task`` frees entries and
then retries (only the DMU processing part is re-attempted — the instruction
sits at the DMU, it is not re-executed by the core).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..core.dmu import DependenceManagementUnit
from ..schedulers.base import ReadyEntry
from ..sim.events import Acquire, NotificationEvent, WaitEvent
from ..sim.resources import Lock
from ..sim.timeline import Phase
from .base import RuntimeGenerator, RuntimeSystem
from .task import TaskDefinition, TaskInstance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.thread import SimThread


class TDMRuntime(RuntimeSystem):
    """Runtime system using the DMU for dependence tracking."""

    name = "tdm"
    uses_dmu = True
    honors_scheduler = True
    inline_software_pop = True

    def __init__(self, config, scheduler, engine, noc) -> None:
        super().__init__(config, scheduler, engine, noc)
        self._dmu = DependenceManagementUnit(config.dmu)
        self.dmu_lock = Lock(engine, "dmu")
        self._acquire_dmu_lock = Acquire(self.dmu_lock)
        self.space_freed = NotificationEvent(engine, "dmu-space")
        self.blocked_instruction_events = 0
        self.blocked_cycles = 0
        # Fixed per-operation costs hoisted out of the per-yield hot path.
        costs = self.costs
        self._issue_cycles = config.dmu.instruction_issue_cycles
        self._alloc_cycles = costs.tdm_task_alloc_cycles()
        self._finish_cycles = costs.tdm_finish_cycles()
        self._drain_cycles = costs.tdm_drain_cycles()
        self._push_cycles = costs.tdm_push_cycles()
        self._pop_cycles = costs.tdm_pop_cycles()
        self._lock_cycles = costs.lock_acquire_cycles()
        # NoC round trips are pure per-core constants; the table lookup
        # replaces a bounds-checking method call on every ISA instruction.
        self._noc_round_trip = tuple(
            noc.round_trip_cycles(core) for core in range(config.chip.num_cores)
        )

    @property
    def dmu(self) -> DependenceManagementUnit:
        return self._dmu

    # ------------------------------------------------------------------ ISA issue helper
    def _issue(self, thread: "SimThread", operation: Callable[[], object]) -> RuntimeGenerator:
        """Issue one TDM ISA instruction and return its result.

        Retries (without re-paying issue and NoC latency) whenever the DMU
        reports a full structure, waiting for space to be freed in between.
        Time spent stalled on a full DMU is accounted as IDLE (the core makes
        no progress and is clock gated), not as dependence-management work.

        The hot call sites (:meth:`create_task`, :meth:`finish_task`,
        :meth:`_drain_ready`) inline this sequence instead of delegating
        through ``yield from`` — one less generator allocated and one less
        frame on the ``send()`` chain per ISA instruction — and fall back to
        :meth:`_finish_blocked_issue` for the cold full-structure path.  This
        generator is kept as the single documented reference (and for any
        future instruction off the hot path); keep the two in sync.

        DMU results are pooled objects, valid only while the DMU lock is
        held plus the resumption segment that releases it (the simulator is
        cooperative: another core can only issue an instruction after this
        process yields).  Call sites must copy any field they need beyond
        that into locals; the cold path detaches a private copy because its
        result crosses a wait.
        """
        yield self._issue_cycles
        yield self._noc_round_trip[thread.core_id]
        space_target = self.space_freed.wait_target()
        yield self._acquire_dmu_lock
        result = operation()
        if result.blocked:
            result = yield from self._finish_blocked_issue(thread, operation, space_target)
        else:
            yield result.cycles
            self.dmu_lock.release(thread.process)
        return result

    def _finish_blocked_issue(
        self, thread: "SimThread", operation: Callable[[], object], space_target
    ) -> RuntimeGenerator:
        """Cold path of :meth:`_issue`: the DMU reported a full structure.

        Entered with the DMU lock held and ``operation()`` just blocked;
        ``space_target`` is the notification target captured *before* the
        lock acquisition, so a ``finish_task`` that freed space while this
        core waited for the lock is not missed.  Returns the completed
        result after charging the post-wait NoC response crossing.
        """
        process = thread.process
        engine = self.engine
        timeline = thread.timeline
        while True:
            self.dmu_lock.release(process)
            self.blocked_instruction_events += 1
            blocked_since = engine.now
            timeline.begin(Phase.IDLE, engine.now)
            yield WaitEvent(space_target)
            timeline.begin(Phase.DEPS, engine.now)
            self.blocked_cycles += engine.now - blocked_since
            space_target = self.space_freed.wait_target()
            yield self._acquire_dmu_lock
            result = operation()
            if result.blocked:
                continue
            # Detach from the pooled instance: the NoC-crossing yield below
            # lets another core issue an instruction that would recycle it.
            result = result.detach()
            yield result.cycles
            self.dmu_lock.release(process)
            # The response still crosses the NoC once after a blocked wait.
            yield self._noc_round_trip[thread.core_id] // 2
            return result

    def _drain_ready(self, thread: "SimThread") -> RuntimeGenerator:
        """Issue ``get_ready_task`` until the DMU returns null, filling the pool."""
        # Inlined _issue (see its docstring): locals hoisted because one
        # drain loop runs after every task finish.
        dmu = self._dmu
        dmu_lock = self.dmu_lock
        process = thread.process
        issue_cycles = self._issue_cycles
        round_trip = self._noc_round_trip[thread.core_id]
        acquire_dmu = self._acquire_dmu_lock
        wait_target = self.space_freed.wait_target
        get_ready = dmu.get_ready_task
        drained = 0
        while True:
            yield issue_cycles
            yield round_trip
            space_target = wait_target()
            yield acquire_dmu
            result = get_ready()
            if result.blocked:
                result = yield from self._finish_blocked_issue(thread, get_ready, space_target)
            else:
                yield result.cycles
                dmu_lock.release(process)
            if result.is_null:
                return drained
            # Snapshot before yielding: the pooled result is recycled by the
            # next get_ready_task once the DMU lock is free.
            instance = self.resolve_descriptor(result.descriptor_address)
            successor_count = result.num_successors
            yield self._drain_cycles
            yield self.acquire_runtime_lock
            yield self._push_cycles
            self.push_ready(
                instance,
                producer_core=thread.core_id,
                successor_count=successor_count,
            )
            self.runtime_lock.release(process)
            drained += 1

    # ------------------------------------------------------------------ creation
    def create_task(
        self, thread: "SimThread", definition: TaskDefinition, region_index: int
    ) -> RuntimeGenerator:
        instance = self.new_instance(definition, region_index)
        descriptor = instance.descriptor_address
        # Inlined _issue (see its docstring) for the 2 + num_dependences
        # instructions every creation issues; the cold blocked path is
        # delegated to _finish_blocked_issue.
        dmu = self._dmu
        dmu_lock = self.dmu_lock
        process = thread.process
        issue_cycles = self._issue_cycles
        round_trip = self._noc_round_trip[thread.core_id]
        acquire_dmu = self._acquire_dmu_lock
        wait_target = self.space_freed.wait_target

        yield self._alloc_cycles
        yield issue_cycles
        yield round_trip
        space_target = wait_target()
        yield acquire_dmu
        result = dmu.create_task(descriptor)
        if result.blocked:
            yield from self._finish_blocked_issue(
                thread, lambda: dmu.create_task(descriptor), space_target
            )
        else:
            yield result.cycles
            dmu_lock.release(process)

        for dependence in definition.dependences:
            yield issue_cycles
            yield round_trip
            space_target = wait_target()
            yield acquire_dmu
            result = dmu.add_dependence(
                descriptor, dependence.address, dependence.size, dependence.direction
            )
            if result.blocked:
                yield from self._finish_blocked_issue(
                    thread,
                    lambda dep=dependence: dmu.add_dependence(
                        descriptor, dep.address, dep.size, dep.direction
                    ),
                    space_target,
                )
            else:
                yield result.cycles
                dmu_lock.release(process)

        yield issue_cycles
        yield round_trip
        space_target = wait_target()
        yield acquire_dmu
        completion = dmu.complete_creation(descriptor)
        if completion.blocked:
            completion = yield from self._finish_blocked_issue(
                thread, lambda: dmu.complete_creation(descriptor), space_target
            )
        else:
            yield completion.cycles
            dmu_lock.release(process)
        if completion.became_ready:
            # The creating thread drains the task so it reaches the software
            # pool immediately (no other thread polls the DMU).
            yield from self._drain_ready(thread)
        return instance

    # ------------------------------------------------------------------ scheduling
    def try_get_task(self, thread: "SimThread") -> RuntimeGenerator:
        # The worker wake loop inlines this exact sequence when
        # inline_software_pop is set (see repro/sim/thread.py) — keep in sync.
        if not self.pool.peek_available():
            return None
        yield self.acquire_runtime_lock
        yield self._lock_cycles
        entry: Optional[ReadyEntry] = self.pool.pop(thread.core_id)
        if entry is not None:
            yield self._pop_cycles
        self.runtime_lock.release(thread.process)
        return entry

    # ------------------------------------------------------------------ finalization
    def finish_task(self, thread: "SimThread", instance: TaskInstance) -> RuntimeGenerator:
        descriptor = instance.descriptor_address
        dmu = self._dmu
        yield self._finish_cycles
        # Inlined _issue (see its docstring): one finish instruction per task.
        yield self._issue_cycles
        yield self._noc_round_trip[thread.core_id]
        space_target = self.space_freed.wait_target()
        yield self._acquire_dmu_lock
        result = dmu.finish_task(descriptor)
        if result.blocked:
            yield from self._finish_blocked_issue(
                thread, lambda: dmu.finish_task(descriptor), space_target
            )
        else:
            yield result.cycles
            self.dmu_lock.release(thread.process)
        instance.mark_finished(self.engine.now)
        self.tasks_finished += 1
        # Entries were freed in the DMU: unblock any stalled creation.
        self.space_freed.notify_all()
        # "Just after notifying a task has finished, the runtime system uses
        # get_ready_task to request the successors that have just become ready."
        yield from self._drain_ready(thread)
        return None

    def stats(self):
        data = super().stats()
        data["dmu_blocked_events"] = self.blocked_instruction_events
        data["dmu_blocked_cycles"] = self.blocked_cycles
        return data
