"""Runtime-system models.

This package contains the task and dependence abstractions shared by the
whole library (:mod:`repro.runtime.task`), the software dependence tracker
(:mod:`repro.runtime.tracker`), the ready pool used by the software
schedulers (:mod:`repro.runtime.ready_pool`), the calibrated phase cost model
(:mod:`repro.runtime.cost_model`) and the four runtime-system variants
evaluated in the paper:

* :class:`~repro.runtime.software.SoftwareRuntime` — everything in software
  (the paper's baseline),
* :class:`~repro.runtime.tdm.TDMRuntime` — dependence management offloaded to
  the DMU, scheduling in software (the paper's contribution),
* :class:`~repro.runtime.carbon.CarbonRuntime` — hardware FIFO task queues,
  dependence management in software (Carbon [10]),
* :class:`~repro.runtime.task_superscalar.TaskSuperscalarRuntime` — both
  dependence management and scheduling in hardware (Task Superscalar [11]).
"""

from .task import (
    AccessMode,
    DependenceSpec,
    TaskDefinition,
    TaskInstance,
    TaskProgram,
    TaskRegion,
    TaskState,
)
from .tracker import DependenceTracker, MatchResult
from .ready_pool import ReadyPool
from .cost_model import RuntimeCostModel
from .base import RuntimeSystem
from .software import SoftwareRuntime
from .tdm import TDMRuntime
from .carbon import CarbonRuntime
from .task_superscalar import TaskSuperscalarRuntime
from .factory import available_runtimes, create_runtime

__all__ = [
    "AccessMode",
    "DependenceSpec",
    "TaskDefinition",
    "TaskInstance",
    "TaskProgram",
    "TaskRegion",
    "TaskState",
    "DependenceTracker",
    "MatchResult",
    "ReadyPool",
    "RuntimeCostModel",
    "RuntimeSystem",
    "SoftwareRuntime",
    "TDMRuntime",
    "CarbonRuntime",
    "TaskSuperscalarRuntime",
    "available_runtimes",
    "create_runtime",
]
