"""Base class shared by all runtime-system models.

A runtime system is the component the simulated threads call into.  Its
methods are *generators* that the calling thread drives with ``yield from``:
they yield simulation commands (timeouts for busy cycles, lock acquisitions,
event waits) and finally return their result.  This keeps all timing
behaviour in one place while the thread model in :mod:`repro.sim.thread`
handles phase accounting.

The common machinery provided here:

* task-instance creation (descriptor addresses, the descriptor -> instance
  map used to resolve DMU responses),
* the software pool of ready tasks and the wake-up notification channel,
* the global runtime lock used by software TDG / pool updates,
* bookkeeping counters surfaced in :meth:`RuntimeSystem.stats`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from ..config import SimulationConfig
from ..schedulers.base import ReadyEntry, Scheduler
from ..sim.engine import Engine
from ..sim.events import Acquire, Command, NotificationEvent
from ..sim.noc import NocModel
from ..sim.resources import Lock
from .cost_model import RuntimeCostModel
from .ready_pool import ReadyPool
from .task import TaskDefinition, TaskInstance, TaskInstanceFactory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.dmu import DependenceManagementUnit
    from ..sim.thread import SimThread

RuntimeGenerator = Generator[Command, object, object]


class RuntimeSystem(abc.ABC):
    """Common state and interface of the four runtime-system models."""

    #: Registry name of the runtime ("software", "tdm", ...).
    name: str = "abstract"
    #: Whether the runtime drives a DMU model.
    uses_dmu: bool = False
    #: Whether the configured software scheduler is honoured (hardware
    #: schedulers such as Carbon / Task Superscalar use their fixed policy).
    honors_scheduler: bool = True
    #: When True the worker wake loop in :mod:`repro.sim.thread` inlines
    #: the software-pool pop — the exact yield sequence of the runtime's
    #: ``try_get_task`` (lock acquire, lock cycles, pop, pop cycles,
    #: release) — skipping one generator allocation plus one delegation
    #: frame per pop attempt, the most frequent scheduling path.  Only
    #: valid for runtimes whose ``try_get_task`` is precisely that
    #: sequence (software and TDM); keep the two in sync.
    inline_software_pop: bool = False

    def __init__(
        self,
        config: SimulationConfig,
        scheduler: Scheduler,
        engine: Engine,
        noc: NocModel,
    ) -> None:
        self.config = config
        self.costs = RuntimeCostModel(config.costs)
        self.engine = engine
        self.noc = noc
        self.scheduler = scheduler
        #: The pool owns the worker wake-up channel: every push notifies it
        #: (as one batched drain entry per wake-up window — see
        #: :mod:`repro.runtime.ready_pool`).
        self.pool = ReadyPool(scheduler, engine, name="ready-pool")
        self.runtime_lock = Lock(engine, "runtime-lock")
        #: Reusable ``Acquire(runtime_lock)`` command: the command object is
        #: immutable and yielded thousands of times per simulation, so the
        #: runtimes share one instance instead of allocating per acquisition.
        self.acquire_runtime_lock = Acquire(self.runtime_lock)
        self._factory = TaskInstanceFactory()
        self.instances_by_descriptor: Dict[int, TaskInstance] = {}
        self.all_instances: List[TaskInstance] = []
        self.tasks_created = 0
        self.tasks_finished = 0

    # ------------------------------------------------------------------ helpers
    def new_instance(self, definition: TaskDefinition, region_index: int) -> TaskInstance:
        """Materialize a task instance and register its descriptor address."""
        instance = self._factory.create(definition, region_index)
        instance.created_cycle = self.engine.now
        self.instances_by_descriptor[instance.descriptor_address] = instance
        self.all_instances.append(instance)
        self.tasks_created += 1
        return instance

    def resolve_descriptor(self, descriptor_address: int) -> TaskInstance:
        """Map a descriptor address returned by the hardware back to its instance."""
        return self.instances_by_descriptor[descriptor_address]

    @property
    def wake_channel(self) -> NotificationEvent:
        """The pool's worker wake-up channel (threads hoist this per region)."""
        return self.pool.wake_channel

    def push_ready(
        self,
        instance: TaskInstance,
        producer_core: Optional[int],
        successor_count: int,
    ) -> ReadyEntry:
        """Insert a ready task into the software pool.

        The pool itself wakes the idle workers (one batched drain entry per
        wake-up window); see :mod:`repro.runtime.ready_pool`.
        """
        instance.mark_ready(self.engine.now)
        instance.producer_core = producer_core
        return self.pool.push(
            instance,
            creation_seq=instance.uid,
            successor_count=successor_count,
            producer_core=producer_core,
        )

    def notify_workers(self) -> None:
        """Wake idle workers (used when ready work appears outside the pool)."""
        self.pool.notify_waiters()

    # ------------------------------------------------------------------ interface
    @abc.abstractmethod
    def create_task(
        self, thread: "SimThread", definition: TaskDefinition, region_index: int
    ) -> RuntimeGenerator:
        """Create a task and register its dependences (master-side, DEPS phase).

        Returns the new :class:`TaskInstance`.
        """

    @abc.abstractmethod
    def try_get_task(self, thread: "SimThread") -> RuntimeGenerator:
        """Try to obtain a ready task for ``thread`` (SCHED phase).

        Returns a :class:`~repro.schedulers.base.ReadyEntry` or ``None``.
        """

    @abc.abstractmethod
    def finish_task(self, thread: "SimThread", instance: TaskInstance) -> RuntimeGenerator:
        """Notify that ``instance`` finished (DEPS phase on the worker side)."""

    # ------------------------------------------------------------------ hints / stats
    def work_available_hint(self) -> bool:
        """Cheap check used by idle workers before attempting a pop.

        Reads the pool's public mirrored ``size`` counter directly instead
        of delegating to :meth:`ReadyPool.peek_available`: idle workers run
        this once per wake-up and the extra frame was measurable.
        """
        return self.pool.size > 0

    @property
    def dmu(self) -> Optional["DependenceManagementUnit"]:
        """The DMU model driven by this runtime (None for pure-software runtimes)."""
        return None

    def stats(self) -> Dict[str, object]:
        """Aggregate runtime statistics for reports and tests."""
        data: Dict[str, object] = {
            "runtime": self.name,
            "tasks_created": self.tasks_created,
            "tasks_finished": self.tasks_finished,
            "pool_pushes": self.pool.total_pushes,
            "pool_pops": self.pool.total_pops,
            "pool_peak": self.pool.peak_size,
            "lock_acquisitions": self.runtime_lock.acquisitions,
            "lock_wait_cycles": self.runtime_lock.total_wait_cycles,
        }
        if self.dmu is not None:
            data["dmu"] = self.dmu.stats.as_dict()
        return data

    def assert_drained(self) -> None:
        """Sanity check at end of simulation: everything created also finished."""
        if self.tasks_created != self.tasks_finished:
            raise RuntimeError(
                f"{self.name} runtime finished {self.tasks_finished} of "
                f"{self.tasks_created} created tasks"
            )
