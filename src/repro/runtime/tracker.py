"""Software dependence tracker.

This is the dependence-management engine of the pure-software runtime (and of
the Carbon baseline, which only accelerates scheduling).  It implements the
same last-writer/readers semantics as the DMU's Algorithms 1 and 2, operating
on :class:`~repro.runtime.task.TaskInstance` objects instead of hardware
tables, so the software runtime and the DMU build the *same* task dependence
graph — a property the test suite checks explicitly.

The tracker also reports how much matching work each registration performed
(readers traversed, successor links created), which drives the calibrated
software cost model: region-based dependence matching in runtimes such as
Nanos++ is dominated by exactly these traversals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..errors import ValidationError
from .task import AccessMode, TaskInstance


class _DependenceRecord:
    """Tracking state of one dependence address (last writer and readers).

    ``readers`` keeps registration order (successor edges are created in that
    order, which determinism depends on); ``reader_set`` mirrors it for the
    O(1) membership tests performed on every registration and retirement.
    """

    __slots__ = ("last_writer", "readers", "reader_set")

    def __init__(self) -> None:
        self.last_writer: Optional[TaskInstance] = None
        self.readers: List[TaskInstance] = []
        self.reader_set: Set[TaskInstance] = set()

    @property
    def is_empty(self) -> bool:
        return self.last_writer is None and not self.readers


@dataclass(frozen=True)
class MatchResult:
    """Work performed while registering one task's dependences."""

    num_dependences: int
    readers_traversed: int
    writers_matched: int
    successor_links: int
    initially_ready: bool


class DependenceTracker:
    """Address-based dependence matching with last-writer/readers semantics."""

    def __init__(self) -> None:
        self._records: Dict[int, _DependenceRecord] = {}
        self.registered_tasks = 0
        self.finished_tasks = 0
        self.total_successor_links = 0
        self.max_live_dependences = 0

    @property
    def live_dependences(self) -> int:
        """Number of addresses currently tracked."""
        return len(self._records)

    def register_task(self, task: TaskInstance) -> MatchResult:
        """Register ``task``'s dependences; mirrors the DMU's Algorithm 1.

        Must be called in program creation order.  Returns the matching work
        performed, which the cost model converts into cycles.
        """
        readers_traversed = 0
        writers_matched = 0
        successor_links = 0
        records = self._records
        for dependence in task.definition.dependences:
            record = records.get(dependence.address)
            if record is None:
                record = records[dependence.address] = _DependenceRecord()
            # RAW / WAW: depend on the last writer of the address.
            if record.last_writer is not None and record.last_writer is not task:
                writers_matched += 1
                if not record.last_writer.finished:
                    record.last_writer.add_successor(task)
                    successor_links += 1
            if dependence.is_output:
                # OUT and INOUT accesses: depend on every current reader (WAR),
                # then become the last writer.  Mirroring the DMU interface,
                # an INOUT access is communicated as an output and is *not*
                # also recorded as a reader.
                for reader in record.readers:
                    readers_traversed += 1
                    if reader is task:
                        continue
                    if not reader.finished:
                        reader.add_successor(task)
                        successor_links += 1
                record.readers = []
                record.reader_set = set()
                record.last_writer = task
            else:
                if task not in record.reader_set:
                    record.readers.append(task)
                    record.reader_set.add(task)
        self.registered_tasks += 1
        self.total_successor_links += successor_links
        live = len(records)
        if live > self.max_live_dependences:
            self.max_live_dependences = live
        initially_ready = task.num_predecessors == 0
        return MatchResult(
            num_dependences=task.definition.num_dependences,
            readers_traversed=readers_traversed,
            writers_matched=writers_matched,
            successor_links=successor_links,
            initially_ready=initially_ready,
        )

    def finish_task(self, task: TaskInstance) -> List[TaskInstance]:
        """Retire ``task``; mirrors the DMU's Algorithm 2.

        Returns the successor tasks whose predecessor count reached zero
        (newly ready).  Also cleans this task out of the per-address records
        so the tracked state stays proportional to the in-flight window.
        """
        if task.finished:
            raise ValidationError(f"task {task.name!r} finished twice")
        newly_ready: List[TaskInstance] = []
        for successor in task.successors:
            successor.num_predecessors -= 1
            if successor.num_predecessors < 0:
                raise ValidationError(
                    f"task {successor.name!r} predecessor count went negative"
                )
            if successor.num_predecessors == 0 and not successor.finished:
                newly_ready.append(successor)
        records = self._records
        for dependence in task.definition.dependences:
            record = records.get(dependence.address)
            if record is None:
                continue
            if task in record.reader_set:
                record.readers.remove(task)
                record.reader_set.discard(task)
            if record.last_writer is task:
                record.last_writer = None
            # record.is_empty, inlined (one property descriptor chase per
            # dependence per retired task was measurable).
            if record.last_writer is None and not record.readers:
                del records[dependence.address]
        self.finished_tasks += 1
        return newly_ready

    def last_writer_of(self, address: int) -> Optional[TaskInstance]:
        """Current last writer of ``address`` (None if untracked)."""
        record = self._records.get(address)
        return record.last_writer if record else None

    def readers_of(self, address: int) -> List[TaskInstance]:
        """Current readers of ``address`` (empty if untracked)."""
        record = self._records.get(address)
        return list(record.readers) if record else []
