"""Task, dependence and program abstractions.

A *workload* (see :mod:`repro.workloads`) produces a :class:`TaskProgram`: an
ordered sequence of :class:`TaskRegion` objects (parallel regions separated
by barriers), each containing :class:`TaskDefinition` objects in program
creation order.  Each definition lists its data dependences as
:class:`DependenceSpec` objects, mirroring the ``depend(in/out/inout: ...)``
clauses of OpenMP 4.0.

At simulation time the runtime system materializes every definition into a
:class:`TaskInstance`, which carries the dynamic state (descriptor address,
predecessor count, successors, timestamps, executing core).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import InvalidProgramError

#: Base virtual address used to fabricate task-descriptor addresses.  The
#: value is arbitrary; it only needs to look like a 64-bit heap pointer to the
#: TAT (the paper uses addresses such as 0x8AB0...4600 in Figure 4).
TASK_DESCRIPTOR_BASE = 0x8AB0_0000_0000
#: Size of a task descriptor in bytes; descriptor addresses are spaced by it.
TASK_DESCRIPTOR_STRIDE = 0x140


class AccessMode(enum.Enum):
    """Direction of a data dependence, as annotated by the programmer."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"

    @property
    def is_output(self) -> bool:
        """True for OUT and INOUT accesses (they make the task the last writer)."""
        return self in (AccessMode.OUT, AccessMode.INOUT)

    @property
    def is_input(self) -> bool:
        """True for IN and INOUT accesses (they read the previous writer's data)."""
        return self in (AccessMode.IN, AccessMode.INOUT)


class DependenceSpec:
    """One ``depend(...)`` clause: a memory region and an access direction.

    ``direction`` and ``is_output`` are precomputed at construction: they are
    consulted once per dependence per task registration (an inner loop of
    every runtime model) and the enum properties were measurable there.

    A plain ``__slots__`` class rather than a frozen dataclass (the
    generated dataclass machinery was measurable in workload builds), but
    still **enforced immutable**: built programs are shared across
    simulations by the campaign engine's program cache, so a mutation here
    would leak state between runs and break the byte-identity contract.
    Equality and hashing mirror the old frozen dataclass: by
    ``(address, size, mode)``.
    """

    __slots__ = ("address", "size", "mode", "direction", "is_output")

    def __init__(self, address: int, size: int, mode: AccessMode) -> None:
        if address < 0:
            raise InvalidProgramError(f"negative dependence address: {address:#x}")
        if size <= 0:
            raise InvalidProgramError(f"dependence size must be positive, got {size}")
        init = object.__setattr__
        init(self, "address", address)
        init(self, "size", size)
        init(self, "mode", mode)
        # The ``add_dependence`` ISA instruction only distinguishes inputs
        # from outputs; an ``inout`` access behaves as an output (it both
        # waits for the previous writer/readers and becomes the new last
        # writer).
        output = mode.is_output
        init(self, "is_output", output)
        init(self, "direction", "out" if output else "in")

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"DependenceSpec is immutable (programs are shared across "
            f"simulations); cannot set {name!r}"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DependenceSpec):
            return (
                self.address == other.address
                and self.size == other.size
                and self.mode is other.mode
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.address, self.size, self.mode))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DependenceSpec(address={self.address:#x}, size={self.size}, mode={self.mode})"


class TaskDefinition:
    """Static description of one task, as produced by a workload generator.

    A plain ``__slots__`` class, **enforced immutable** (see
    :class:`DependenceSpec` for why — built programs are shared across
    simulations).  ``all_addresses`` and ``input_addresses`` are
    precomputed: the locality model reads ``all_addresses`` on every task
    execution and the old per-call tuple rebuild was measurable.
    """

    __slots__ = ("uid", "name", "kind", "work_us", "dependences",
                 "memory_sensitivity", "creation_work_us",
                 "all_addresses", "input_addresses")

    def __init__(
        self,
        uid: int,
        name: str,
        kind: str,
        work_us: float,
        dependences: Tuple[DependenceSpec, ...] = (),
        memory_sensitivity: float = 0.0,
        creation_work_us: float = 0.0,
    ) -> None:
        if work_us < 0:
            raise InvalidProgramError(f"task {name}: negative work_us")
        if not (0.0 <= memory_sensitivity <= 1.0):
            raise InvalidProgramError(f"task {name}: memory_sensitivity out of [0, 1]")
        if creation_work_us < 0:
            raise InvalidProgramError(f"task {name}: negative creation_work_us")
        init = object.__setattr__
        init(self, "uid", uid)
        init(self, "name", name)
        init(self, "kind", kind)
        init(self, "work_us", work_us)
        dependences = tuple(dependences)
        init(self, "dependences", dependences)
        init(self, "memory_sensitivity", memory_sensitivity)
        init(self, "creation_work_us", creation_work_us)
        #: Every dependence address of the task (used by the locality model).
        init(self, "all_addresses", tuple([d.address for d in dependences]))
        #: Addresses this task reads (IN and INOUT dependences).
        init(
            self,
            "input_addresses",
            tuple([d.address for d in dependences if d.mode.is_input]),
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"TaskDefinition is immutable (programs are shared across "
            f"simulations); cannot set {name!r}"
        )

    @property
    def num_dependences(self) -> int:
        return len(self.dependences)

    def _key(self) -> tuple:
        return (
            self.uid, self.name, self.kind, self.work_us,
            self.dependences, self.memory_sensitivity, self.creation_work_us,
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaskDefinition):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskDefinition(uid={self.uid}, name={self.name!r}, kind={self.kind!r}, "
            f"work_us={self.work_us}, {len(self.dependences)} dependences)"
        )


class TaskState(enum.Enum):
    """Lifecycle of a task instance inside the runtime system."""

    CREATED = "created"
    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"


class TaskInstance:
    """Dynamic runtime state of one task."""

    __slots__ = (
        "definition",
        "descriptor_address",
        "state",
        "finished",
        "num_predecessors",
        "successors",
        "num_successors",
        "created_cycle",
        "ready_cycle",
        "start_cycle",
        "finish_cycle",
        "core_id",
        "producer_core",
        "region_index",
    )

    def __init__(self, definition: TaskDefinition, descriptor_address: int, region_index: int = 0) -> None:
        self.definition = definition
        self.descriptor_address = descriptor_address
        self.state = TaskState.CREATED
        #: Mirrors ``state is TaskState.FINISHED`` as a plain attribute; the
        #: dependence tracker tests it once per matched reader/writer.
        self.finished = False
        self.num_predecessors = 0
        self.successors: List["TaskInstance"] = []
        self.num_successors = 0
        self.created_cycle: int = 0
        self.ready_cycle: Optional[int] = None
        self.start_cycle: Optional[int] = None
        self.finish_cycle: Optional[int] = None
        self.core_id: Optional[int] = None
        self.producer_core: Optional[int] = None
        self.region_index = region_index

    @property
    def uid(self) -> int:
        return self.definition.uid

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def kind(self) -> str:
        return self.definition.kind

    @property
    def work_us(self) -> float:
        return self.definition.work_us

    @property
    def is_ready(self) -> bool:
        return self.state == TaskState.READY

    @property
    def is_finished(self) -> bool:
        return self.finished

    def add_successor(self, successor: "TaskInstance") -> None:
        """Link ``successor`` after this task (mirrors the DMU successor list)."""
        self.successors.append(successor)
        self.num_successors += 1
        successor.num_predecessors += 1

    def mark_ready(self, cycle: int) -> None:
        self.state = TaskState.READY
        self.ready_cycle = cycle

    def mark_running(self, cycle: int, core_id: int) -> None:
        self.state = TaskState.RUNNING
        self.start_cycle = cycle
        self.core_id = core_id

    def mark_finished(self, cycle: int) -> None:
        self.state = TaskState.FINISHED
        self.finished = True
        self.finish_cycle = cycle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskInstance({self.name!r}, state={self.state.value}, "
            f"preds={self.num_predecessors}, succs={self.num_successors})"
        )


@dataclass(frozen=True)
class TaskRegion:
    """A parallel region: tasks created in program order, closed by a barrier."""

    tasks: Tuple[TaskDefinition, ...]
    name: str = "region"
    sequential_us_before: float = 0.0

    def __post_init__(self) -> None:
        if self.sequential_us_before < 0:
            raise InvalidProgramError("sequential_us_before must be >= 0")

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def total_work_us(self) -> float:
        return sum(task.work_us for task in self.tasks)


@dataclass(frozen=True)
class TaskProgram:
    """A complete task-parallel program: regions executed back to back."""

    name: str
    regions: Tuple[TaskRegion, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.regions:
            raise InvalidProgramError(f"program {self.name!r} has no regions")
        seen: set[int] = set()
        for region in self.regions:
            for task in region.tasks:
                if task.uid in seen:
                    raise InvalidProgramError(
                        f"program {self.name!r}: duplicate task uid {task.uid}"
                    )
                seen.add(task.uid)

    @property
    def num_tasks(self) -> int:
        return sum(region.num_tasks for region in self.regions)

    @property
    def total_work_us(self) -> float:
        return sum(region.total_work_us for region in self.regions)

    @property
    def average_task_us(self) -> float:
        count = self.num_tasks
        return self.total_work_us / count if count else 0.0

    def all_tasks(self) -> Iterable[TaskDefinition]:
        """All task definitions in creation order, across regions."""
        for region in self.regions:
            yield from region.tasks

    def max_dependences_per_task(self) -> int:
        return max((task.num_dependences for task in self.all_tasks()), default=0)


class TaskInstanceFactory:
    """Materializes :class:`TaskInstance` objects with unique descriptor addresses."""

    def __init__(self) -> None:
        self._next_index = 0

    def create(self, definition: TaskDefinition, region_index: int = 0) -> TaskInstance:
        index = self._next_index
        self._next_index = index + 1
        address = TASK_DESCRIPTOR_BASE + index * TASK_DESCRIPTOR_STRIDE
        return TaskInstance(definition, address, region_index=region_index)


def single_region_program(
    name: str,
    tasks: Sequence[TaskDefinition],
    metadata: Optional[Dict[str, object]] = None,
) -> TaskProgram:
    """Convenience constructor for programs with a single parallel region."""
    return TaskProgram(
        name=name,
        regions=(TaskRegion(tasks=tuple(tasks), name=f"{name}.region0"),),
        metadata=dict(metadata or {}),
    )
