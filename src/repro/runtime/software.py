"""The pure-software runtime system (the paper's baseline).

Task creation, dependence tracking, task finalization and scheduling are all
performed in software by the executing threads.  Dependence tracking uses the
:class:`~repro.runtime.tracker.DependenceTracker` under a global runtime lock
(Nanos++ serializes updates to a dependence domain the same way), and its
cost scales with the amount of matching work performed, which is what makes
task creation the bottleneck for benchmarks with many fine-grained,
densely-connected tasks (Figure 2 of the paper).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..schedulers.base import ReadyEntry
from ..sim.events import Acquire
from .base import RuntimeGenerator, RuntimeSystem
from .task import TaskDefinition, TaskInstance
from .tracker import DependenceTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.thread import SimThread


class SoftwareRuntime(RuntimeSystem):
    """Software dependence tracking + software scheduling."""

    name = "software"
    uses_dmu = False
    honors_scheduler = True
    inline_software_pop = True

    def __init__(self, config, scheduler, engine, noc) -> None:
        super().__init__(config, scheduler, engine, noc)
        self.tracker = DependenceTracker()
        # Fixed per-operation costs hoisted out of the per-yield hot path.
        costs = self.costs
        self._alloc_cycles = costs.sw_task_alloc_cycles()
        self._lock_cycles = costs.lock_acquire_cycles()
        self._pop_cycles = costs.sw_pop_cycles()
        self._push_cycles = costs.sw_push_cycles()

    # ------------------------------------------------------------------ creation
    def create_task(
        self, thread: "SimThread", definition: TaskDefinition, region_index: int
    ) -> RuntimeGenerator:
        instance = self.new_instance(definition, region_index)
        # Descriptor allocation and dependence-region lookups happen outside
        # the lock; only linking the task into the TDG needs mutual exclusion.
        yield self._alloc_cycles
        yield self.costs.sw_dependence_lookup_cycles(definition.num_dependences)
        yield self.acquire_runtime_lock
        yield self._lock_cycles
        match = self.tracker.register_task(instance)
        yield self.costs.sw_dependence_commit_cycles(match)
        pushed = False
        if match.initially_ready:
            yield self._push_cycles
            self.push_ready(
                instance,
                producer_core=thread.core_id,
                successor_count=instance.num_successors,
            )
            pushed = True
        self.runtime_lock.release(thread.process)
        if pushed:
            self.notify_workers()
        return instance

    # ------------------------------------------------------------------ scheduling
    def try_get_task(self, thread: "SimThread") -> RuntimeGenerator:
        # The worker wake loop inlines this exact sequence when
        # inline_software_pop is set (see repro/sim/thread.py) — keep in sync.
        if not self.pool.peek_available():
            return None
        yield self.acquire_runtime_lock
        yield self._lock_cycles
        entry: Optional[ReadyEntry] = self.pool.pop(thread.core_id)
        if entry is not None:
            yield self._pop_cycles
        self.runtime_lock.release(thread.process)
        return entry

    # ------------------------------------------------------------------ finalization
    def finish_task(self, thread: "SimThread", instance: TaskInstance) -> RuntimeGenerator:
        yield self.acquire_runtime_lock
        yield self._lock_cycles
        newly_ready = self.tracker.finish_task(instance)
        yield self.costs.sw_finish_cycles(len(instance.successors))
        for successor in newly_ready:
            yield self._push_cycles
            self.push_ready(
                successor,
                producer_core=thread.core_id,
                successor_count=successor.num_successors,
            )
        instance.mark_finished(self.engine.now)
        self.tasks_finished += 1
        self.runtime_lock.release(thread.process)
        if newly_ready:
            self.notify_workers()
        return None

    def stats(self):
        data = super().stats()
        data["live_dependences_peak"] = self.tracker.max_live_dependences
        data["successor_links"] = self.tracker.total_successor_links
        return data
