"""Exception hierarchy for the TDM reproduction library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Hardware-model errors (DMU structural
problems) and simulation errors (deadlocks, invalid programs) form their own
branches because they are reported to users in different contexts: the former
indicate a mis-configured or mis-used hardware model, the latter indicate a
malformed workload or a bug in a runtime/scheduler implementation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration object has inconsistent or out-of-range values."""


class DMUError(ReproError):
    """Base class for errors raised by the Dependence Management Unit model."""


class DMUStructureFullError(DMUError):
    """A DMU structure has no free entry and blocking is not permitted.

    In the simulated system the ISA instructions block until space is
    available; this exception is raised only when the DMU is driven directly
    (outside a simulation) and asked not to block.
    """

    def __init__(self, structure: str, message: str | None = None) -> None:
        self.structure = structure
        super().__init__(message or f"DMU structure '{structure}' is full")


class DMUProtocolError(DMUError):
    """The runtime used the DMU interface incorrectly.

    Examples: adding a dependence to a task that was never created, finishing
    a task twice, or finishing a task that still has unresolved predecessors.
    """


class UnknownTaskError(DMUProtocolError):
    """An operation referenced a task descriptor address the DMU does not know."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event simulator."""


class DeadlockError(SimulationError):
    """The simulation cannot make progress.

    Raised when every process is blocked and no events remain, which means a
    runtime/scheduler combination dropped a task or a dependence cycle exists.
    """


class InvalidProgramError(SimulationError):
    """A workload produced a task program the simulator cannot execute."""


class TraceFormatError(InvalidProgramError):
    """A task-graph trace file is malformed or semantically invalid.

    Raised by :mod:`repro.scenarios.trace` with a precise *location* (for
    example ``regions[0].tasks[3].accesses[1].mode`` or ``line 7``) so a
    multi-thousand-task export is debuggable from the message alone.
    """

    def __init__(self, location: str, message: str) -> None:
        self.location = location
        super().__init__(f"{location}: {message}" if location else message)


class ValidationError(ReproError):
    """A post-simulation validation check failed (dependences violated, ...)."""


class ExperimentError(ReproError):
    """An experiment harness was invoked with unusable parameters."""
