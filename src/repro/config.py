"""Configuration objects for the chip, the DMU, the cost model and simulations.

The defaults reproduce the configuration of Table I of the paper: a 32-core
2 GHz chip, a DMU with 2048-entry 8-way TAT/DAT, 2048-entry Task/Dependence
Tables, 1024-entry list arrays with 8 elements per entry and 1-cycle SRAM
accesses.

Every configuration class is an immutable dataclass with a ``validate``
method; :func:`SimulationConfig.validated` is the single entry point used by
the simulator to reject inconsistent configurations early.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field, replace
from typing import Literal, Mapping

from .errors import ConfigurationError
from .units import DEFAULT_CLOCK_GHZ, is_power_of_two

IndexSelection = Literal["dynamic", "static"]
RuntimeKind = Literal["software", "tdm", "carbon", "task_superscalar"]

#: Storage/execution backends of the columnar DMU core (``repro.core.backends``).
#: Defined here rather than in the backends package so that ``validate`` does
#: not need to import ``repro.core`` (which itself imports this module).
DMU_BACKENDS = ("pure", "accel")


def _default_dmu_backend() -> str:
    """Default DMU backend: ``REPRO_BACKEND`` from the environment, else pure.

    The env knob lets a whole process tree (most importantly a CI test run)
    select a backend without threading ``--backend`` through every entry
    point.  Unknown values are rejected by ``DMUConfig.validate`` exactly
    like an explicit field value.
    """
    return os.environ.get("REPRO_BACKEND") or "pure"


@dataclass(frozen=True)
class DMUConfig:
    """Sizing and latency parameters of the Dependence Management Unit.

    The alias tables (TAT/DAT) determine the number of in-flight tasks and
    dependences; the Task Table and Dependence Table are sized identically to
    their alias table (one entry per in-flight object), exactly as in the
    paper ("The size of the TAT and the DAT determine the size of the Task
    and Dependence Table").
    """

    tat_entries: int = 2048
    dat_entries: int = 2048
    tat_associativity: int = 8
    dat_associativity: int = 8
    successor_list_entries: int = 1024
    dependence_list_entries: int = 1024
    reader_list_entries: int = 1024
    elements_per_list_entry: int = 8
    ready_queue_entries: int = 2048
    access_cycles: int = 1
    noc_roundtrip_cycles: int = 30
    instruction_issue_cycles: int = 8
    index_selection: IndexSelection = "dynamic"
    static_index_start_bit: int = 0
    unlimited: bool = False
    #: Storage/execution backend of the columnar core.  ``pure`` is plain
    #: Python; ``accel`` uses specialized kernels + numpy audit scans and
    #: falls back to ``pure`` (with a warning) when numpy is unavailable.
    #: Backends are execution strategies, not semantics: results are
    #: byte-identical, and :func:`repro.experiments.cache.canonical_run_key`
    #: deliberately excludes this field.  The default honors the
    #: ``REPRO_BACKEND`` environment variable (unset/empty means ``pure``).
    backend: str = field(default_factory=_default_dmu_backend)

    @property
    def task_table_entries(self) -> int:
        """The Task Table has one entry per TAT entry."""
        return self.tat_entries

    @property
    def dependence_table_entries(self) -> int:
        """The Dependence Table has one entry per DAT entry."""
        return self.dat_entries

    @property
    def task_id_bits(self) -> int:
        """Width of internal task IDs (log2 of the Task Table size)."""
        return max(1, (self.tat_entries - 1).bit_length())

    @property
    def dependence_id_bits(self) -> int:
        """Width of internal dependence IDs (log2 of the Dependence Table size)."""
        return max(1, (self.dat_entries - 1).bit_length())

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent sizing."""
        for name in (
            "tat_entries",
            "dat_entries",
            "successor_list_entries",
            "dependence_list_entries",
            "reader_list_entries",
            "ready_queue_entries",
        ):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(f"DMUConfig.{name} must be a power of two, got {value}")
        for name in ("tat_associativity", "dat_associativity"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise ConfigurationError(f"DMUConfig.{name} must be a power of two, got {value}")
        if self.tat_associativity > self.tat_entries:
            raise ConfigurationError("TAT associativity cannot exceed number of entries")
        if self.dat_associativity > self.dat_entries:
            raise ConfigurationError("DAT associativity cannot exceed number of entries")
        if self.ready_queue_entries < self.tat_entries:
            # The Ready Queue model treats overflow as a protocol error rather
            # than a blocking condition, which is only sound when every
            # in-flight task (at most one per TAT entry) has a slot.
            raise ConfigurationError(
                "ready_queue_entries must be >= tat_entries: the Ready Queue "
                f"holds one slot per in-flight task ({self.ready_queue_entries} "
                f"< {self.tat_entries} would overflow mid-simulation instead of blocking)"
            )
        if self.elements_per_list_entry < 1:
            raise ConfigurationError("elements_per_list_entry must be >= 1")
        if self.access_cycles < 0:
            raise ConfigurationError("access_cycles must be >= 0")
        if self.index_selection not in ("dynamic", "static"):
            raise ConfigurationError(f"unknown index_selection: {self.index_selection}")
        if self.static_index_start_bit < 0 or self.static_index_start_bit > 40:
            raise ConfigurationError("static_index_start_bit out of range [0, 40]")
        if self.backend not in DMU_BACKENDS:
            raise ConfigurationError(
                f"unknown DMU backend: {self.backend!r} (expected one of {DMU_BACKENDS})"
            )

    def with_sizes(self, **kwargs: int) -> "DMUConfig":
        """Return a copy with some sizing fields replaced (used by sweeps)."""
        return replace(self, **kwargs)

    @classmethod
    def ideal(cls) -> "DMUConfig":
        """An idealized DMU with effectively unlimited entries (same latency).

        Used as the normalization baseline of the design-space exploration
        (Figures 7, 8 and 9 normalize to "an ideal DMU with unlimited entries
        and equal latency").
        """
        return cls(
            tat_entries=1 << 20,
            dat_entries=1 << 20,
            successor_list_entries=1 << 20,
            dependence_list_entries=1 << 20,
            reader_list_entries=1 << 20,
            ready_queue_entries=1 << 20,
            unlimited=True,
        )


@dataclass(frozen=True)
class CoreConfig:
    """Per-core microarchitectural parameters that feed the power model.

    The detailed out-of-order structures of Table I (issue queue, ROB, ...)
    are not simulated individually; they only determine the per-core power
    envelope used by :mod:`repro.power`.
    """

    clock_ghz: float = DEFAULT_CLOCK_GHZ
    issue_width: int = 4
    rob_entries: int = 128
    l1i_kb: int = 32
    l1d_kb: int = 32
    active_power_watts: float = 1.45
    idle_power_watts: float = 0.22
    runtime_power_watts: float = 1.10

    def validate(self) -> None:
        if self.clock_ghz <= 0:
            raise ConfigurationError("clock_ghz must be positive")
        if self.active_power_watts < self.idle_power_watts:
            raise ConfigurationError("active power must be >= idle power")
        if self.runtime_power_watts < 0:
            raise ConfigurationError("runtime_power_watts must be >= 0")


@dataclass(frozen=True)
class ChipConfig:
    """Chip-level parameters: number of cores, shared cache, and the core model."""

    num_cores: int = 32
    core: CoreConfig = field(default_factory=CoreConfig)
    l2_mb: int = 4
    uncore_power_watts: float = 3.2

    @property
    def clock_ghz(self) -> float:
        return self.core.clock_ghz

    def validate(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("num_cores must be >= 1")
        if self.l2_mb <= 0:
            raise ConfigurationError("l2_mb must be positive")
        self.core.validate()


@dataclass(frozen=True)
class CostModelConfig:
    """Calibrated costs (in cycles) of the runtime-system phases.

    The software constants model Nanos++-style region dependence tracking:
    every new dependence performs a hash lookup, compares against the
    dependence's current readers/writer, and links the task into the TDG
    under a global runtime lock.  The TDM constants model only the work that
    remains in software when the DMU performs the tracking (allocating the
    task descriptor and issuing the ISA instructions).

    The defaults are calibrated so that the pure-software baseline reproduces
    the qualitative breakdown of Figure 2 of the paper (Cholesky/QR/
    Streamcluster bound by task creation on the master thread).
    """

    # -- software dependence tracking (per task creation) ------------------
    sw_task_alloc_cycles: int = 3_000
    sw_dep_base_cycles: int = 2_400
    sw_dep_per_reader_cycles: int = 650
    sw_dep_per_successor_cycles: int = 250
    # -- software task finalization ----------------------------------------
    sw_finish_base_cycles: int = 1_600
    sw_finish_per_successor_cycles: int = 450
    # -- software scheduling (ready-pool operations) ------------------------
    sw_schedule_pop_cycles: int = 1_100
    sw_schedule_push_cycles: int = 500
    sw_idle_poll_cycles: int = 2_000
    # -- runtime lock (serializes software TDG and pool updates) ------------
    lock_acquire_cycles: int = 120
    # -- TDM-side software work ---------------------------------------------
    tdm_task_alloc_cycles: int = 1_200
    tdm_finish_base_cycles: int = 500
    tdm_schedule_pop_cycles: int = 900
    tdm_schedule_push_cycles: int = 350
    tdm_drain_per_task_cycles: int = 150
    # -- hardware-scheduler baselines (Carbon / Task Superscalar) -----------
    hw_queue_access_cycles: int = 40
    hw_idle_poll_cycles: int = 600

    def validate(self) -> None:
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value < 0:
                raise ConfigurationError(f"CostModelConfig.{f.name} must be >= 0")


@dataclass(frozen=True)
class LocalityConfig:
    """Parameters of the per-core cache/data-locality model.

    A task executed on a core leaves its dependence blocks in that core's
    recently-used set; a later task scheduled on the same core whose inputs
    hit that set executes faster.  ``max_speedup_fraction`` bounds the
    execution-time reduction when every input hits, and is scaled by the
    workload's memory sensitivity.
    """

    tracked_blocks_per_core: int = 64
    max_speedup_fraction: float = 0.18
    enabled: bool = True

    def validate(self) -> None:
        if self.tracked_blocks_per_core < 1:
            raise ConfigurationError("tracked_blocks_per_core must be >= 1")
        if not (0.0 <= self.max_speedup_fraction < 1.0):
            raise ConfigurationError("max_speedup_fraction must be in [0, 1)")


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to run one simulation of one workload.

    ``runtime`` selects which runtime-system model orchestrates the
    execution; ``scheduler`` selects the software scheduling policy (ignored
    by the hardware-scheduler baselines, which use their fixed FIFO policy).
    """

    chip: ChipConfig = field(default_factory=ChipConfig)
    dmu: DMUConfig = field(default_factory=DMUConfig)
    costs: CostModelConfig = field(default_factory=CostModelConfig)
    locality: LocalityConfig = field(default_factory=LocalityConfig)
    runtime: RuntimeKind = "tdm"
    scheduler: str = "fifo"
    seed: int = 0
    max_cycles: int = 2_000_000_000_000
    #: Opt-in interval tracing: when True every thread keeps its full
    #: (phase, start, end) interval list for trace visualization.  The
    #: default records per-phase totals only — intervals are never
    #: serialized and nothing downstream of a finished experiment reads
    #: them, while materializing them dominated timeline overhead in the
    #: simulation hot loop.
    record_timeline: bool = False
    validate_execution: bool = True

    def validate(self) -> None:
        self.chip.validate()
        self.dmu.validate()
        self.costs.validate()
        self.locality.validate()
        if self.runtime not in ("software", "tdm", "carbon", "task_superscalar"):
            raise ConfigurationError(f"unknown runtime kind: {self.runtime}")
        if self.max_cycles <= 0:
            raise ConfigurationError("max_cycles must be positive")
        if self.seed < 0:
            raise ConfigurationError("seed must be >= 0")

    def validated(self) -> "SimulationConfig":
        """Validate and return ``self`` (fluent helper)."""
        self.validate()
        return self

    def with_runtime(self, runtime: RuntimeKind, scheduler: str | None = None) -> "SimulationConfig":
        """Return a copy targeting a different runtime (and optionally scheduler)."""
        return replace(self, runtime=runtime, scheduler=scheduler or self.scheduler)

    def with_scheduler(self, scheduler: str) -> "SimulationConfig":
        """Return a copy using a different software scheduler."""
        return replace(self, scheduler=scheduler)

    def with_dmu(self, dmu: DMUConfig) -> "SimulationConfig":
        """Return a copy using a different DMU configuration."""
        return replace(self, dmu=dmu)

    def with_dmu_backend(self, backend: str) -> "SimulationConfig":
        """Return a copy whose DMU core uses a different storage backend."""
        return replace(self, dmu=replace(self.dmu, backend=backend))

    # ------------------------------------------------------------------ serialization
    def to_dict(self) -> dict:
        """Nested plain-dict form (JSON-safe) covering *every* field.

        This is the payload hashed by :func:`repro.experiments.cache.canonical_run_key`
        and stored alongside cached simulation results, so it must stay
        lossless: any field that can change simulation output has to appear.
        ``dataclasses.asdict`` guarantees that automatically.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimulationConfig":
        """Rebuild a :class:`SimulationConfig` from :meth:`to_dict` output."""
        payload = dict(data)
        chip = dict(payload.pop("chip"))
        core = CoreConfig(**dict(chip.pop("core")))
        return cls(
            chip=ChipConfig(core=core, **chip),
            dmu=DMUConfig(**dict(payload.pop("dmu"))),
            costs=CostModelConfig(**dict(payload.pop("costs"))),
            locality=LocalityConfig(**dict(payload.pop("locality"))),
            **payload,
        )


def default_paper_config(runtime: RuntimeKind = "tdm", scheduler: str = "fifo") -> SimulationConfig:
    """The Table I configuration of the paper: 32 cores and the default DMU."""
    return SimulationConfig(runtime=runtime, scheduler=scheduler).validated()
