"""Time and size unit helpers shared across the simulator.

The discrete-event simulator works in integer *cycles* of the chip clock.
Workload generators and the paper's numbers are expressed in microseconds, so
these helpers perform the conversion for a configurable clock frequency.
The default clock of 2.0 GHz matches Table I of the paper.
"""

from __future__ import annotations

DEFAULT_CLOCK_GHZ = 2.0

KILOBYTE = 1024
MEGABYTE = 1024 * KILOBYTE


def cycles_per_us(clock_ghz: float = DEFAULT_CLOCK_GHZ) -> float:
    """Number of clock cycles in one microsecond at ``clock_ghz``."""
    return clock_ghz * 1000.0


def us_to_cycles(us: float, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> int:
    """Convert microseconds to an integer number of cycles (at least 1 if us > 0)."""
    if us < 0:
        raise ValueError(f"negative duration: {us}")
    cycles = int(round(us * cycles_per_us(clock_ghz)))
    if us > 0 and cycles == 0:
        return 1
    return cycles


def cycles_to_us(cycles: float, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> float:
    """Convert a cycle count to microseconds."""
    return cycles / cycles_per_us(clock_ghz)


def cycles_to_seconds(cycles: float, clock_ghz: float = DEFAULT_CLOCK_GHZ) -> float:
    """Convert a cycle count to seconds."""
    return cycles / (clock_ghz * 1e9)


def bits_to_kilobytes(bits: int) -> float:
    """Convert a bit count to kilobytes (1 KB = 8192 bits)."""
    return bits / (8.0 * KILOBYTE)


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Integer log2 of a power of two; raises ValueError otherwise."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1
