"""The Dependence Management Unit (DMU).

The DMU is the hardware contribution of the paper: a centralized unit on the
NoC that keeps a representation of the task dependence graph, tracks
dependences between in-flight tasks, and exposes ready tasks to the runtime
system (Section III).  This module implements the unit functionally and
structurally:

* internal IDs come from the TAT/DAT alias tables (set-associative, with the
  dynamic index-bit selection of Section V-E),
* per-task and per-dependence metadata live in the direct-access Task Table
  and Dependence Table — stored as parallel columns indexed by the internal
  ID, which the instruction paths below read and write directly,
* successor / dependence / reader lists live in inode-style list arrays
  (flat columnar slabs, int handles),
* ready task IDs are exposed through a FIFO Ready Queue,
* ``add_dependence`` and ``finish_task`` follow Algorithms 1 and 2 of the
  paper,
* every operation returns the number of DMU cycles it consumed, computed as
  (number of SRAM accesses) × (configured access latency),
* if any structure needed by an operation has no free entry, the operation
  performs **no state change** and returns
  :class:`~repro.core.isa.DMUBlocked`; the simulated core retries when
  capacity is freed, which models the blocking/barrier semantics of the TDM
  ISA instructions.

Result objects are pooled: each instruction mutates and returns a shared
per-type instance (see :mod:`repro.core.isa` for the caller contract), so
the per-instruction hot path allocates nothing.

Two uncharged model-level shortcuts keep the capacity pre-checks O(1)
without touching the timing model: list arrays answer
``appending_needs_new_entry`` / ``is_empty`` from maintained per-list
counters instead of a chain walk, and the reader list of a dependence is
only materialized into a Python list for ``out`` accesses (the only
direction whose algorithm consumes it).  Neither peek ever counted as SRAM
accesses, so every charged access count is unchanged.

Deviations from the paper, both documented in DESIGN.md:

* Reader lists are allocated lazily (at the first reader) instead of eagerly
  when the dependence entry is installed; with the paper's sizes (2048 DAT
  entries but 1024 RLA entries) eager allocation could not hold the
  configured number of in-flight dependences.
* A creation-completion step (:meth:`DependenceManagementUnit.complete_creation`)
  enqueues tasks whose predecessor count is already zero when their last
  dependence has been registered; the paper's algorithms only enqueue tasks
  from ``finish_task`` and would never make a dependence-free task ready.
"""

from __future__ import annotations

from typing import Dict, Union

from ..config import DMUConfig
from ..errors import DMUProtocolError, UnknownTaskError
from .alias_table import AliasTable
from .backends import resolve_backend
from .dependence_table import DependenceTable
from .isa import (
    AddDependenceResult,
    CompleteCreationResult,
    CreateTaskResult,
    DMUBlocked,
    FinishTaskResult,
    GetReadyTaskResult,
)
from .list_array import ListArray
from .ready_queue import ReadyQueue
from .stats import DMUStats
from .task_table import TaskTable

CreateOutcome = Union[CreateTaskResult, DMUBlocked]
AddDependenceOutcome = Union[AddDependenceResult, DMUBlocked]

# Structure names used consistently in stats and blocking reports.
TAT = "TAT"
DAT = "DAT"
TASK_TABLE = "TaskTable"
DEP_TABLE = "DepTable"
SLA = "SLA"
DLA = "DLA"
RLA = "RLA"
READY_QUEUE = "ReadyQ"

_NO_READERS: tuple = ()


class DependenceManagementUnit:
    """Functional + structural model of the DMU."""

    def __init__(self, config: DMUConfig) -> None:
        config.validate()
        self.config = config
        # Resolve the storage/execution backend once; every structure shares
        # the instance.  ``accel`` degrades to ``pure`` (with a warning) when
        # numpy is unavailable — results are identical either way.
        backend = resolve_backend(config.backend)
        self.backend = backend
        self.tat = AliasTable(
            TAT,
            config.tat_entries,
            config.tat_associativity,
            index_start_bit=6,
            backend=backend,
        )
        self.dat = AliasTable(
            DAT,
            config.dat_entries,
            config.dat_associativity,
            index_start_bit=config.static_index_start_bit,
            dynamic_index=(config.index_selection == "dynamic"),
            backend=backend,
        )
        self.task_table = TaskTable(config.task_table_entries, backend=backend)
        self.dependence_table = DependenceTable(
            config.dependence_table_entries, backend=backend
        )
        # Successor and dependence lists are append-only between allocation
        # and release (only reader lists see remove/flush), which lets the
        # list array compute charged walk lengths arithmetically.
        self.successor_lists = ListArray(
            SLA, config.successor_list_entries, config.elements_per_list_entry,
            append_only=True, backend=backend,
        )
        self.dependence_lists = ListArray(
            DLA, config.dependence_list_entries, config.elements_per_list_entry,
            append_only=True, backend=backend,
        )
        self.reader_lists = ListArray(
            RLA, config.reader_list_entries, config.elements_per_list_entry,
            backend=backend,
        )
        self.ready_queue = ReadyQueue(config.ready_queue_entries, backend=backend)
        self._stats = DMUStats()
        #: Deferred-counter commit hook.  The pure backend keeps it None (its
        #: instruction paths update ``_stats`` directly); the accel backend's
        #: kernels batch counter updates and install a flush callable here,
        #: which the :attr:`stats` property invokes before every external read.
        self._stats_sync = None
        access_cycles = config.access_cycles
        self._access_cycles = access_cycles
        # Pooled result objects, one per instruction type: the hot return
        # paths mutate these in place (see repro.core.isa for the caller
        # contract).  A null ready-pop always looks the same, so it has its
        # own frozen instance; create_task always costs the same 5 accesses.
        self._create_result = CreateTaskResult(5 * access_cycles, -1)
        self._add_result = AddDependenceResult(0, -1, 0)
        self._complete_result = CompleteCreationResult(0, False)
        self._finish_result = FinishTaskResult(0, 0)
        self._ready_result = GetReadyTaskResult(2 * access_cycles, None)
        self._null_ready_result = GetReadyTaskResult(
            cycles=access_cycles, descriptor_address=None
        )
        self._blocked_result = DMUBlocked("")
        # Cached column references (the structures mutate their columns in
        # place — extend/append only — so the list identities are stable for
        # the DMU's lifetime).  The instruction paths below index these
        # directly instead of going through an attribute chain plus a method
        # call per field; that is the point of the columnar layout.
        task_table = self.task_table
        self._tt_descriptor = task_table.descriptor_address
        self._tt_pred = task_table.predecessor_count
        self._tt_succ = task_table.successor_count
        self._tt_succ_list = task_table.successor_list
        self._tt_dep_list = task_table.dependence_list
        self._tt_complete = task_table.creation_complete
        dependence_table = self.dependence_table
        self._dt_valid = dependence_table.valid
        self._dt_last_writer = dependence_table.last_writer
        self._dt_lw_valid = dependence_table.last_writer_valid
        self._dt_reader_list = dependence_table.reader_list
        self._dt_address = dependence_table.address
        # Per-list counters (meaningful at head handles) for the empty-list
        # fast paths, plus tail + per-entry-valid columns for the O(1)
        # uncharged capacity pre-checks.  The pre-checks test *tail entry*
        # fullness — the pinned pre-rewrite semantics of
        # ``appending_needs_new_entry`` (see that method's docstring).
        self._sla_list_valid = self.successor_lists._list_valid
        self._sla_tail = self.successor_lists._tail
        self._sla_valid = self.successor_lists._valid
        self._dla_list_valid = self.dependence_lists._list_valid
        self._dla_tail = self.dependence_lists._tail
        self._dla_valid = self.dependence_lists._valid
        self._rla_list_valid = self.reader_lists._list_valid
        self._rla_tail = self.reader_lists._tail
        self._rla_valid = self.reader_lists._valid
        self._per_entry = config.elements_per_list_entry
        self._tat_by_address = self.tat._by_address
        self._dat_by_address = self.dat._by_address
        self._ready_push = self.ready_queue.push
        self._ready_pop = self.ready_queue.pop
        # Let the backend rebind the instruction entry points on this
        # instance (no-op for pure): the structures and cached column
        # references above are final, so kernels may close over them.
        backend.install(self)

    # ------------------------------------------------------------------ helpers
    @property
    def stats(self) -> DMUStats:
        """The DMU statistics, with any deferred backend counters committed.

        The accel backend batches its counter updates; reading through this
        property flushes them first, so external readers (the runtime models,
        the differential tests) always observe the same totals the pure
        backend maintains eagerly.
        """
        sync = self._stats_sync
        if sync is not None:
            sync()
        return self._stats

    @property
    def in_flight_tasks(self) -> int:
        """Number of tasks currently tracked (created but not finished)."""
        return self.task_table.occupancy

    @property
    def in_flight_dependences(self) -> int:
        """Number of dependence addresses currently tracked."""
        return self.dependence_table.occupancy

    @property
    def ready_tasks(self) -> int:
        """Number of task IDs currently waiting in the Ready Queue."""
        return len(self.ready_queue)

    def _cycles(self, accesses: int) -> int:
        return accesses * self.config.access_cycles

    def _lookup_task(self, descriptor_address: int) -> int:
        task_id = self.tat.lookup(descriptor_address)
        if task_id is None:
            raise UnknownTaskError(
                f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
            )
        return task_id

    def _blocked(self, structure: str) -> DMUBlocked:
        self._stats.record_blocked(structure)
        result = self._blocked_result
        result.structure = structure
        return result

    # ------------------------------------------------------------------ create_task
    def create_task(self, descriptor_address: int) -> CreateOutcome:
        """Register a new task (ISA ``create_task``).

        Allocates a TAT entry / internal task ID, initializes the Task Table
        columns and reserves an empty successor list and dependence list.
        Always five SRAM accesses: associative TAT lookup + directory write,
        one fresh entry in each of SLA and DLA, one Task Table write.
        """
        tat = self.tat
        if descriptor_address in self._tat_by_address:
            raise DMUProtocolError(
                f"task descriptor {descriptor_address:#x} created twice"
            )
        successor_lists = self.successor_lists
        dependence_lists = self.dependence_lists
        # Capacity pre-check: TAT way + ID, one SLA entry, one DLA entry.
        if not tat.can_allocate(descriptor_address):
            return self._blocked(TAT)
        if successor_lists.free_entries < 1:
            return self._blocked(SLA)
        if dependence_lists.free_entries < 1:
            return self._blocked(DLA)

        task_id = tat.allocate(descriptor_address)
        successor_list = successor_lists.new_list_head()
        dependence_list = dependence_lists.new_list_head()
        self.task_table.install(task_id, descriptor_address, successor_list, dependence_list)

        stats = self._stats
        structure_accesses = stats.structure_accesses
        structure_accesses[TAT] += 2
        structure_accesses[SLA] += 1
        structure_accesses[DLA] += 1
        structure_accesses[TASK_TABLE] += 1
        result = self._create_result
        stats.instructions["create_task"] += 1
        stats.total_cycles += result.cycles
        stats.tasks_created += 1
        result.task_id = task_id
        return result

    # ------------------------------------------------------------------ add_dependence
    def add_dependence(
        self,
        descriptor_address: int,
        dependence_address: int,
        size: int,
        direction: str,
    ) -> AddDependenceOutcome:
        """Register one dependence of a task (ISA ``add_dependence``).

        Implements Algorithm 1 of the paper with exact capacity pre-checks so
        a blocked instruction leaves no partial state behind.
        """
        if direction == "out":
            is_out = True
        elif direction == "in":
            is_out = False
        else:
            raise DMUProtocolError(f"invalid dependence direction: {direction!r}")
        tat = self.tat
        tat.lookups += 1
        task_id = self._tat_by_address.get(descriptor_address)
        if task_id is None:
            raise UnknownTaskError(
                f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
            )
        successor_lists = self.successor_lists
        dependence_lists = self.dependence_lists
        reader_lists = self.reader_lists
        stats = self._stats
        dat = self.dat
        per_entry = self._per_entry

        dat.lookups += 1
        dep_id = self._dat_by_address.get(dependence_address)
        dep_is_new = dep_id is None
        readers = _NO_READERS
        if dep_is_new:
            reader_list = -1
            writer_id = -1
            # --- capacity pre-checks (uncharged; Blocked order is pinned:
            # DAT, DLA, SLA, RLA) -----------------------------------------
            if not dat.can_allocate(dependence_address, size):
                return self._blocked(DAT)
        else:
            reader_list = self._dt_reader_list[dep_id]
            writer_id = self._dt_last_writer[dep_id] if self._dt_lw_valid[dep_id] else -1
            if is_out and reader_list >= 0:
                # The WAR pass below consumes the reader set; ``in`` accesses
                # never do, so the (uncharged) materialization is skipped.
                readers, _ = reader_lists.iterate(reader_list)

        # O(1) capacity pre-checks: tail-entry fullness via the maintained
        # tail column — the pinned pre-rewrite ``appending_needs_new_entry``
        # semantics (for the append-only SLA/DLA, tail-full and
        # no-free-slot-anywhere coincide; for reader lists with remove()
        # holes they do not, and blocking behavior follows the tail).
        task_dependence_list = self._tt_dep_list[task_id]
        dla_valid = self._dla_valid
        if dla_valid[self._dla_tail[task_dependence_list]] == per_entry and (
            dependence_lists.free_entries < 1
        ):
            return self._blocked(DLA)

        task_successor_lists = self._tt_succ_list
        sla_tail = self._sla_tail
        sla_valid = self._sla_valid
        needed_sla = 0
        if writer_id >= 0 and writer_id != task_id:
            if sla_valid[sla_tail[task_successor_lists[writer_id]]] == per_entry:
                needed_sla += 1
        if is_out:
            for reader_id in readers:
                if reader_id == task_id:
                    continue
                if sla_valid[sla_tail[task_successor_lists[reader_id]]] == per_entry:
                    needed_sla += 1
        if needed_sla and successor_lists.free_entries < needed_sla:
            return self._blocked(SLA)

        if not is_out:
            if reader_list < 0:
                needed_rla = 1
            else:
                needed_rla = (
                    1 if self._rla_valid[self._rla_tail[reader_list]] == per_entry else 0
                )
            if needed_rla and reader_lists.free_entries < 1:
                return self._blocked(RLA)

        # --- mutation phase (charged accesses identical to the object-based
        # implementation) --------------------------------------------------
        structure_accesses = stats.structure_accesses
        accesses = 3  # TAT lookup + Task Table read + DAT lookup
        structure_accesses[TAT] += 1
        structure_accesses[TASK_TABLE] += 1
        structure_accesses[DAT] += 1
        if dep_is_new:
            dep_id = dat.allocate(dependence_address, size)
            self.dependence_table.install(dep_id, dependence_address, size)
            accesses += 2  # DAT directory write + Dependence Table install
            structure_accesses[DAT] += 1
            structure_accesses[DEP_TABLE] += 1
        else:
            accesses += 1  # Dependence Table read
            structure_accesses[DEP_TABLE] += 1

        predecessors_added = 0
        task_predecessor_count = self._tt_pred
        task_successor_count = self._tt_succ

        # "Insert depID in dependence list of taskID"
        dla_accesses = dependence_lists.append(task_dependence_list, dep_id)
        accesses += dla_accesses
        structure_accesses[DLA] += dla_accesses

        # "if lastWriterID of depID is valid": RAW / WAW / WAR-with-writer edge.
        if writer_id >= 0 and writer_id != task_id:
            sla_accesses = successor_lists.append(task_successor_lists[writer_id], task_id)
            accesses += sla_accesses + 2  # successor insert + two counter updates
            structure_accesses[SLA] += sla_accesses
            structure_accesses[TASK_TABLE] += 2
            task_successor_count[writer_id] += 1
            task_predecessor_count[task_id] += 1
            predecessors_added = 1

        if not is_out:
            # "Insert taskID in reader list of depID"
            if reader_list < 0:
                reader_list = reader_lists.new_list_head()
                self._dt_reader_list[dep_id] = reader_list
                accesses += 1
                structure_accesses[RLA] += 1
            rla_accesses = reader_lists.append(reader_list, task_id)
            accesses += rla_accesses
            structure_accesses[RLA] += rla_accesses
        else:
            # WAR edges: every current reader gains this task as a successor.
            # (Counter updates accumulated in locals, committed once below.)
            sla_append = successor_lists.append
            war_sla_accesses = 0
            war_edges = 0
            for reader_id in readers:
                if reader_id == task_id:
                    continue
                war_sla_accesses += sla_append(task_successor_lists[reader_id], task_id)
                task_successor_count[reader_id] += 1
                war_edges += 1
            if war_edges:
                accesses += war_sla_accesses + 2 * war_edges
                structure_accesses[SLA] += war_sla_accesses
                structure_accesses[TASK_TABLE] += 2 * war_edges
                task_predecessor_count[task_id] += war_edges
                predecessors_added += war_edges
            # "Flush reader list of depID"
            if reader_list >= 0:
                rla_accesses = reader_lists.flush(reader_list)
                accesses += rla_accesses
                structure_accesses[RLA] += rla_accesses
            # "Set lastWriterID of depID to taskID and mark valid"
            self._dt_last_writer[dep_id] = task_id
            self._dt_lw_valid[dep_id] = 1
            accesses += 1
            structure_accesses[DEP_TABLE] += 1

        # dat.sample_occupancy(), inlined (once per add_dependence).
        dat._occupied_set_samples += 1
        dat._occupied_set_total += dat._occupied_sets
        cycles = accesses * self._access_cycles
        stats.instructions["add_dependence"] += 1
        stats.total_cycles += cycles
        stats.dependences_added += 1
        result = self._add_result
        result.cycles = cycles
        result.dependence_id = dep_id
        result.predecessors_added = predecessors_added
        return result

    # ------------------------------------------------------------------ creation completion
    def complete_creation(self, descriptor_address: int) -> CompleteCreationResult:
        """Mark a task's registration complete; enqueue it if already ready."""
        self.tat.lookups += 1
        task_id = self._tat_by_address.get(descriptor_address)
        if task_id is None:
            raise UnknownTaskError(
                f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
            )
        creation_complete = self._tt_complete
        if creation_complete[task_id]:
            raise DMUProtocolError(
                f"task descriptor {descriptor_address:#x} completed creation twice"
            )
        creation_complete[task_id] = 1
        stats = self._stats
        accesses = 2  # TAT lookup + Task Table read/update
        structure_accesses = stats.structure_accesses
        structure_accesses[TAT] += 1
        structure_accesses[TASK_TABLE] += 1
        became_ready = False
        if self._tt_pred[task_id] == 0:
            self._ready_push(task_id)
            accesses += 1
            structure_accesses[READY_QUEUE] += 1
            became_ready = True
        cycles = accesses * self._access_cycles
        stats.instructions["complete_creation"] += 1
        stats.total_cycles += cycles
        result = self._complete_result
        result.cycles = cycles
        result.became_ready = became_ready
        return result

    # ------------------------------------------------------------------ finish_task
    def finish_task(self, descriptor_address: int) -> FinishTaskResult:
        """Retire a finished task (ISA ``finish_task``); Algorithm 2 of the paper."""
        tat = self.tat
        tat.lookups += 1
        task_id = self._tat_by_address.get(descriptor_address)
        if task_id is None:
            raise UnknownTaskError(
                f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
            )
        stats = self._stats
        structure_accesses = stats.structure_accesses
        accesses = 2  # TAT lookup + Task Table read
        structure_accesses[TAT] += 1
        structure_accesses[TASK_TABLE] += 1
        tasks_woken = 0
        successor_list = self._tt_succ_list[task_id]
        dependence_list = self._tt_dep_list[task_id]

        # First loop: wake up successors.  Counter updates for the loop are
        # accumulated in locals and committed once (identical totals).  An
        # empty successor list (valid total 0, single-entry chain) skips the
        # iterate walk entirely — same one charged access, no list built.
        if self._sla_list_valid[successor_list] == 0:
            accesses += 1
            structure_accesses[SLA] += 1
        else:
            ready_queue_push = self._ready_push
            successors, sla_accesses = self.successor_lists.iterate(successor_list)
            num_successors = len(successors)
            accesses += sla_accesses + num_successors
            structure_accesses[SLA] += sla_accesses
            structure_accesses[TASK_TABLE] += num_successors
            predecessor_count = self._tt_pred
            creation_complete = self._tt_complete
            for successor_id in successors:
                remaining = predecessor_count[successor_id] - 1
                predecessor_count[successor_id] = remaining
                if remaining == 0:
                    if creation_complete[successor_id]:
                        ready_queue_push(successor_id)
                        tasks_woken += 1
                elif remaining < 0:
                    raise DMUProtocolError(
                        f"task id {successor_id} predecessor count went negative"
                    )
            accesses += tasks_woken
            structure_accesses[READY_QUEUE] += tasks_woken

        # Second loop: clean this task out of its dependences (same
        # empty-list fast path as above).
        dependence_table = self.dependence_table
        reader_lists = self.reader_lists
        if self._dla_list_valid[dependence_list] == 0:
            accesses += 1
            structure_accesses[DLA] += 1
        else:
            dat_release = self.dat.release
            dependences, dla_accesses = self.dependence_lists.iterate(dependence_list)
            accesses += dla_accesses
            structure_accesses[DLA] += dla_accesses
            dep_valid = self._dt_valid
            dep_reader_list = self._dt_reader_list
            dep_last_writer = self._dt_last_writer
            dep_last_writer_valid = self._dt_lw_valid
            rla_list_valid = self._rla_list_valid
            dep_table_accesses = 0
            rla_accesses_total = 0
            dat_releases = 0
            for dep_id in dependences:
                if not dep_valid[dep_id]:
                    # The dependence entry was already recycled by an earlier
                    # occurrence of the same address in this task's list.
                    continue
                dep_table_accesses += 1
                reader_list = dep_reader_list[dep_id]
                if reader_list >= 0:
                    _found, rla_accesses = reader_lists.remove(reader_list, task_id)
                    rla_accesses_total += rla_accesses
                writer_valid = dep_last_writer_valid[dep_id]
                if writer_valid and dep_last_writer[dep_id] == task_id:
                    dep_last_writer[dep_id] = -1
                    dep_last_writer_valid[dep_id] = 0
                    writer_valid = 0
                    dep_table_accesses += 1
                if not writer_valid and (reader_list < 0 or rla_list_valid[reader_list] == 0):
                    if reader_list >= 0:
                        rla_accesses_total += reader_lists.free_list(reader_list)
                    dependence_table.free(dep_id)
                    dep_table_accesses += 1
                    dat_release(self._dt_address[dep_id])
                    dat_releases += 1
            accesses += dep_table_accesses + rla_accesses_total + dat_releases
            structure_accesses[DEP_TABLE] += dep_table_accesses
            structure_accesses[RLA] += rla_accesses_total
            structure_accesses[DAT] += dat_releases

        # Free the task's own resources.
        sla_free_accesses = self.successor_lists.free_list(successor_list)
        accesses += sla_free_accesses
        structure_accesses[SLA] += sla_free_accesses
        dla_free_accesses = self.dependence_lists.free_list(dependence_list)
        accesses += dla_free_accesses
        structure_accesses[DLA] += dla_free_accesses
        self.task_table.free(task_id)
        accesses += 1
        structure_accesses[TASK_TABLE] += 1
        self.tat.release(descriptor_address)
        accesses += 1
        structure_accesses[TAT] += 1

        cycles = accesses * self._access_cycles
        stats.instructions["finish_task"] += 1
        stats.total_cycles += cycles
        stats.tasks_finished += 1
        result = self._finish_result
        result.cycles = cycles
        result.tasks_woken = tasks_woken
        return result

    # ------------------------------------------------------------------ get_ready_task
    def get_ready_task(self) -> GetReadyTaskResult:
        """Pop the next ready task (ISA ``get_ready_task``)."""
        stats = self._stats
        stats.structure_accesses[READY_QUEUE] += 1
        stats.instructions["get_ready_task"] += 1
        task_id = self._ready_pop()
        if task_id is None:
            stats.total_cycles += self._access_cycles
            stats.null_ready_pops += 1
            return self._null_ready_result
        stats.structure_accesses[TASK_TABLE] += 1
        result = self._ready_result
        stats.total_cycles += result.cycles
        stats.ready_pops += 1
        result.descriptor_address = self._tt_descriptor[task_id]
        result.num_successors = self._tt_succ[task_id]
        return result

    # ------------------------------------------------------------------ introspection
    def capacity_snapshot(self) -> Dict[str, int]:
        """Free-entry counts per structure (used by tests and debugging)."""
        return {
            TAT: self.tat.free_entries,
            DAT: self.dat.free_entries,
            SLA: self.successor_lists.free_entries,
            DLA: self.dependence_lists.free_entries,
            RLA: self.reader_lists.free_entries,
        }

    def assert_empty(self) -> None:
        """Raise unless every structure has been drained (all tasks finished)."""
        problems = []
        if self.task_table.occupancy:
            problems.append(f"{self.task_table.occupancy} task entries")
        if self.dependence_table.occupancy:
            problems.append(f"{self.dependence_table.occupancy} dependence entries")
        if self.successor_lists.entries_in_use:
            problems.append(f"{self.successor_lists.entries_in_use} SLA entries")
        if self.dependence_lists.entries_in_use:
            problems.append(f"{self.dependence_lists.entries_in_use} DLA entries")
        if self.reader_lists.entries_in_use:
            problems.append(f"{self.reader_lists.entries_in_use} RLA entries")
        if len(self.ready_queue):
            problems.append(f"{len(self.ready_queue)} ready-queue entries")
        if problems:
            raise DMUProtocolError("DMU not empty at end of program: " + ", ".join(problems))
