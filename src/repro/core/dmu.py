"""The Dependence Management Unit (DMU).

The DMU is the hardware contribution of the paper: a centralized unit on the
NoC that keeps a representation of the task dependence graph, tracks
dependences between in-flight tasks, and exposes ready tasks to the runtime
system (Section III).  This module implements the unit functionally and
structurally:

* internal IDs come from the TAT/DAT alias tables (set-associative, with the
  dynamic index-bit selection of Section V-E),
* per-task and per-dependence metadata live in the direct-access Task Table
  and Dependence Table,
* successor / dependence / reader lists live in inode-style list arrays,
* ready task IDs are exposed through a FIFO Ready Queue,
* ``add_dependence`` and ``finish_task`` follow Algorithms 1 and 2 of the
  paper,
* every operation returns the number of DMU cycles it consumed, computed as
  (number of SRAM accesses) × (configured access latency),
* if any structure needed by an operation has no free entry, the operation
  performs **no state change** and returns
  :class:`~repro.core.isa.DMUBlocked`; the simulated core retries when
  capacity is freed, which models the blocking/barrier semantics of the TDM
  ISA instructions.

Deviations from the paper, both documented in DESIGN.md:

* Reader lists are allocated lazily (at the first reader) instead of eagerly
  when the dependence entry is installed; with the paper's sizes (2048 DAT
  entries but 1024 RLA entries) eager allocation could not hold the
  configured number of in-flight dependences.
* A creation-completion step (:meth:`DependenceManagementUnit.complete_creation`)
  enqueues tasks whose predecessor count is already zero when their last
  dependence has been registered; the paper's algorithms only enqueue tasks
  from ``finish_task`` and would never make a dependence-free task ready.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..config import DMUConfig
from ..errors import DMUProtocolError, DMUStructureFullError, UnknownTaskError
from .alias_table import AliasTable
from .dependence_table import DependenceTable, DependenceTableEntry
from .isa import (
    AddDependenceResult,
    CompleteCreationResult,
    CreateTaskResult,
    DMUBlocked,
    FinishTaskResult,
    GetReadyTaskResult,
)
from .list_array import ListArray
from .ready_queue import ReadyQueue
from .stats import DMUStats
from .task_table import TaskTable, TaskTableEntry

CreateOutcome = Union[CreateTaskResult, DMUBlocked]
AddDependenceOutcome = Union[AddDependenceResult, DMUBlocked]

# Structure names used consistently in stats and blocking reports.
TAT = "TAT"
DAT = "DAT"
TASK_TABLE = "TaskTable"
DEP_TABLE = "DepTable"
SLA = "SLA"
DLA = "DLA"
RLA = "RLA"
READY_QUEUE = "ReadyQ"


class DependenceManagementUnit:
    """Functional + structural model of the DMU."""

    def __init__(self, config: DMUConfig) -> None:
        config.validate()
        self.config = config
        self.tat = AliasTable(
            TAT,
            config.tat_entries,
            config.tat_associativity,
            index_start_bit=6,
        )
        self.dat = AliasTable(
            DAT,
            config.dat_entries,
            config.dat_associativity,
            index_start_bit=config.static_index_start_bit,
            dynamic_index=(config.index_selection == "dynamic"),
        )
        self.task_table = TaskTable(config.task_table_entries)
        self.dependence_table = DependenceTable(config.dependence_table_entries)
        self.successor_lists = ListArray(
            SLA, config.successor_list_entries, config.elements_per_list_entry
        )
        self.dependence_lists = ListArray(
            DLA, config.dependence_list_entries, config.elements_per_list_entry
        )
        self.reader_lists = ListArray(
            RLA, config.reader_list_entries, config.elements_per_list_entry
        )
        self.ready_queue = ReadyQueue(config.ready_queue_entries)
        self.stats = DMUStats()
        self._access_cycles = config.access_cycles
        # A null ready-pop always looks the same (one access, no task), and
        # callers never mutate result objects, so every empty-queue pop can
        # share this instance instead of allocating one.
        self._null_ready_result = GetReadyTaskResult(
            cycles=self._access_cycles, descriptor_address=None
        )
        # Model-level bookkeeping (not hardware state): reverse maps used to
        # release alias-table entries and report descriptor addresses.
        self._descriptor_of_task: Dict[int, int] = {}
        self._address_of_dependence: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------ helpers
    @property
    def in_flight_tasks(self) -> int:
        """Number of tasks currently tracked (created but not finished)."""
        return self.task_table.occupancy

    @property
    def in_flight_dependences(self) -> int:
        """Number of dependence addresses currently tracked."""
        return self.dependence_table.occupancy

    @property
    def ready_tasks(self) -> int:
        """Number of task IDs currently waiting in the Ready Queue."""
        return len(self.ready_queue)

    def _cycles(self, accesses: int) -> int:
        return accesses * self.config.access_cycles

    def _lookup_task(self, descriptor_address: int) -> int:
        task_id = self.tat.lookup(descriptor_address)
        if task_id is None:
            raise UnknownTaskError(
                f"task descriptor {descriptor_address:#x} is not tracked by the DMU"
            )
        return task_id

    # ------------------------------------------------------------------ create_task
    def create_task(self, descriptor_address: int) -> CreateOutcome:
        """Register a new task (ISA ``create_task``).

        Allocates a TAT entry / internal task ID, initializes the Task Table
        entry and reserves an empty successor list and dependence list.
        """
        if descriptor_address in self.tat:
            raise DMUProtocolError(
                f"task descriptor {descriptor_address:#x} created twice"
            )
        # Capacity pre-check: TAT way + ID, one SLA entry, one DLA entry.
        if not self.tat.can_allocate(descriptor_address):
            self.stats.record_blocked(TAT)
            return DMUBlocked(TAT)
        if self.successor_lists.free_entries < 1:
            self.stats.record_blocked(SLA)
            return DMUBlocked(SLA)
        if self.dependence_lists.free_entries < 1:
            self.stats.record_blocked(DLA)
            return DMUBlocked(DLA)

        stats = self.stats
        structure_accesses = stats.structure_accesses
        accesses = 0
        task_id = self.tat.allocate(descriptor_address)
        accesses += 2  # associative lookup + directory write
        structure_accesses[TAT] += 2
        successor_list, sla_accesses = self.successor_lists.new_list()
        accesses += sla_accesses
        structure_accesses[SLA] += sla_accesses
        dependence_list, dla_accesses = self.dependence_lists.new_list()
        accesses += dla_accesses
        structure_accesses[DLA] += dla_accesses
        self.task_table.install(
            task_id,
            TaskTableEntry(
                descriptor_address=descriptor_address,
                predecessor_count=0,
                successor_count=0,
                successor_list=successor_list,
                dependence_list=dependence_list,
            ),
        )
        accesses += 1
        structure_accesses[TASK_TABLE] += 1
        self._descriptor_of_task[task_id] = descriptor_address

        cycles = accesses * self._access_cycles
        stats.instructions["create_task"] += 1
        stats.total_cycles += cycles
        stats.tasks_created += 1
        return CreateTaskResult(cycles, task_id)

    # ------------------------------------------------------------------ add_dependence
    def add_dependence(
        self,
        descriptor_address: int,
        dependence_address: int,
        size: int,
        direction: str,
    ) -> AddDependenceOutcome:
        """Register one dependence of a task (ISA ``add_dependence``).

        Implements Algorithm 1 of the paper with exact capacity pre-checks so
        a blocked instruction leaves no partial state behind.
        """
        if direction not in ("in", "out"):
            raise DMUProtocolError(f"invalid dependence direction: {direction!r}")
        task_id = self._lookup_task(descriptor_address)
        task_entry = self.task_table.get(task_id)

        dep_id = self.dat.lookup(dependence_address)
        dep_is_new = dep_id is None
        dep_entry: Optional[DependenceTableEntry] = None
        readers: list[int] = []
        if not dep_is_new:
            dep_entry = self.dependence_table.get(dep_id)
            if dep_entry.reader_list >= 0:
                readers, _ = self.reader_lists.iterate(dep_entry.reader_list)

        blocked = self._add_dependence_capacity_check(
            task_id, task_entry, dep_is_new, dep_entry, readers, dependence_address, size, direction
        )
        if blocked is not None:
            return blocked

        stats = self.stats
        structure_accesses = stats.structure_accesses
        accesses = 2  # TAT lookup + Task Table read performed above
        structure_accesses[TAT] += 1
        structure_accesses[TASK_TABLE] += 1

        # DAT lookup (+ allocation and Dependence Table install on a miss).
        accesses += 1
        structure_accesses[DAT] += 1
        if dep_is_new:
            dep_id = self.dat.allocate(dependence_address, size)
            accesses += 1
            structure_accesses[DAT] += 1
            dep_entry = DependenceTableEntry()
            self.dependence_table.install(dep_id, dep_entry)
            accesses += 1
            structure_accesses[DEP_TABLE] += 1
            self._address_of_dependence[dep_id] = (dependence_address, size)
        else:
            accesses += 1
            structure_accesses[DEP_TABLE] += 1
        assert dep_entry is not None and dep_id is not None

        predecessors_added = 0

        # "Insert depID in dependence list of taskID"
        dla_accesses = self.dependence_lists.append(task_entry.dependence_list, dep_id)
        accesses += dla_accesses
        structure_accesses[DLA] += dla_accesses

        # "if lastWriterID of depID is valid": RAW / WAW / WAR-with-writer edge.
        if dep_entry.last_writer_valid and dep_entry.last_writer != task_id:
            writer_id = dep_entry.last_writer
            writer_entry = self.task_table.get(writer_id)
            sla_accesses = self.successor_lists.append(writer_entry.successor_list, task_id)
            accesses += sla_accesses + 2  # successor insert + two counter updates
            structure_accesses[SLA] += sla_accesses
            structure_accesses[TASK_TABLE] += 2
            writer_entry.successor_count += 1
            task_entry.predecessor_count += 1
            predecessors_added += 1

        if direction == "in":
            # "Insert taskID in reader list of depID"
            if dep_entry.reader_list < 0:
                reader_list, rla_accesses = self.reader_lists.new_list()
                dep_entry.reader_list = reader_list
                accesses += rla_accesses
                structure_accesses[RLA] += rla_accesses
            rla_accesses = self.reader_lists.append(dep_entry.reader_list, task_id)
            accesses += rla_accesses
            structure_accesses[RLA] += rla_accesses
        else:
            # WAR edges: every current reader gains this task as a successor.
            # (Counter updates accumulated in locals, committed once below.)
            task_table_get = self.task_table.get
            sla_append = self.successor_lists.append
            war_sla_accesses = 0
            war_edges = 0
            for reader_id in readers:
                if reader_id == task_id:
                    continue
                reader_entry = task_table_get(reader_id)
                war_sla_accesses += sla_append(reader_entry.successor_list, task_id)
                reader_entry.successor_count += 1
                war_edges += 1
            if war_edges:
                accesses += war_sla_accesses + 2 * war_edges
                structure_accesses[SLA] += war_sla_accesses
                structure_accesses[TASK_TABLE] += 2 * war_edges
                task_entry.predecessor_count += war_edges
                predecessors_added += war_edges
            # "Flush reader list of depID"
            if dep_entry.reader_list >= 0:
                rla_accesses = self.reader_lists.flush(dep_entry.reader_list)
                accesses += rla_accesses
                structure_accesses[RLA] += rla_accesses
            # "Set lastWriterID of depID to taskID and mark valid"
            dep_entry.set_last_writer(task_id)
            accesses += 1
            structure_accesses[DEP_TABLE] += 1

        self.dat.sample_occupancy()
        cycles = accesses * self._access_cycles
        stats.instructions["add_dependence"] += 1
        stats.total_cycles += cycles
        stats.dependences_added += 1
        return AddDependenceResult(cycles, dep_id, predecessors_added)

    def _add_dependence_capacity_check(
        self,
        task_id: int,
        task_entry: TaskTableEntry,
        dep_is_new: bool,
        dep_entry: Optional[DependenceTableEntry],
        readers: list[int],
        dependence_address: int,
        size: int,
        direction: str,
    ) -> Optional[DMUBlocked]:
        """Return a :class:`DMUBlocked` if the operation could not complete."""
        dependence_lists = self.dependence_lists
        successor_lists = self.successor_lists
        reader_lists = self.reader_lists
        if dep_is_new and not self.dat.can_allocate(dependence_address, size):
            self.stats.record_blocked(DAT)
            return DMUBlocked(DAT)

        needed_dla = 1 if dependence_lists.appending_needs_new_entry(task_entry.dependence_list) else 0
        if dependence_lists.free_entries < needed_dla:
            self.stats.record_blocked(DLA)
            return DMUBlocked(DLA)

        needed_sla = 0
        if dep_entry is not None and dep_entry.last_writer_valid and dep_entry.last_writer != task_id:
            writer_entry = self.task_table.get(dep_entry.last_writer)
            if successor_lists.appending_needs_new_entry(writer_entry.successor_list):
                needed_sla += 1
        if direction == "out":
            task_table_get = self.task_table.get
            for reader_id in readers:
                if reader_id == task_id:
                    continue
                reader_entry = task_table_get(reader_id)
                if successor_lists.appending_needs_new_entry(reader_entry.successor_list):
                    needed_sla += 1
        if successor_lists.free_entries < needed_sla:
            self.stats.record_blocked(SLA)
            return DMUBlocked(SLA)

        needed_rla = 0
        if direction == "in":
            if dep_entry is None or dep_entry.reader_list < 0:
                needed_rla = 1
            elif reader_lists.appending_needs_new_entry(dep_entry.reader_list):
                needed_rla = 1
        if reader_lists.free_entries < needed_rla:
            self.stats.record_blocked(RLA)
            return DMUBlocked(RLA)
        return None

    # ------------------------------------------------------------------ creation completion
    def complete_creation(self, descriptor_address: int) -> CompleteCreationResult:
        """Mark a task's registration complete; enqueue it if already ready."""
        task_id = self._lookup_task(descriptor_address)
        entry = self.task_table.get(task_id)
        if entry.creation_complete:
            raise DMUProtocolError(
                f"task descriptor {descriptor_address:#x} completed creation twice"
            )
        entry.creation_complete = True
        accesses = 2  # TAT lookup + Task Table read/update
        self.stats.record_access(TAT, 1)
        self.stats.record_access(TASK_TABLE, 1)
        became_ready = False
        if entry.predecessor_count == 0:
            self.ready_queue.push(task_id)
            accesses += 1
            self.stats.record_access(READY_QUEUE, 1)
            became_ready = True
        cycles = self._cycles(accesses)
        self.stats.record_instruction("complete_creation", cycles)
        return CompleteCreationResult(cycles, became_ready)

    # ------------------------------------------------------------------ finish_task
    def finish_task(self, descriptor_address: int) -> FinishTaskResult:
        """Retire a finished task (ISA ``finish_task``); Algorithm 2 of the paper."""
        task_id = self._lookup_task(descriptor_address)
        entry = self.task_table.get(task_id)
        stats = self.stats
        structure_accesses = stats.structure_accesses
        accesses = 2  # TAT lookup + Task Table read
        structure_accesses[TAT] += 1
        structure_accesses[TASK_TABLE] += 1
        tasks_woken = 0

        # First loop: wake up successors.  Counter updates for the loop are
        # accumulated in locals and committed once (identical totals).
        task_table_get = self.task_table.get
        ready_queue_push = self.ready_queue.push
        successors, sla_accesses = self.successor_lists.iterate(entry.successor_list)
        accesses += sla_accesses + len(successors)
        structure_accesses[SLA] += sla_accesses
        structure_accesses[TASK_TABLE] += len(successors)
        for successor_id in successors:
            successor_entry = task_table_get(successor_id)
            remaining = successor_entry.predecessor_count - 1
            successor_entry.predecessor_count = remaining
            if remaining == 0:
                if successor_entry.creation_complete:
                    ready_queue_push(successor_id)
                    tasks_woken += 1
            elif remaining < 0:
                raise DMUProtocolError(
                    f"task id {successor_id} predecessor count went negative"
                )
        accesses += tasks_woken
        structure_accesses[READY_QUEUE] += tasks_woken

        # Second loop: clean this task out of its dependences.
        dependence_table = self.dependence_table
        reader_lists = self.reader_lists
        dependences, dla_accesses = self.dependence_lists.iterate(entry.dependence_list)
        accesses += dla_accesses
        structure_accesses[DLA] += dla_accesses
        dep_table_accesses = 0
        rla_accesses_total = 0
        dat_releases = 0
        for dep_id in dependences:
            if not dependence_table.is_valid(dep_id):
                # The dependence entry was already recycled by an earlier
                # occurrence of the same address in this task's list.
                continue
            dep_entry = dependence_table.get(dep_id)
            dep_table_accesses += 1
            reader_list = dep_entry.reader_list
            if reader_list >= 0:
                _found, rla_accesses = reader_lists.remove(reader_list, task_id)
                rla_accesses_total += rla_accesses
            if dep_entry.last_writer_valid and dep_entry.last_writer == task_id:
                dep_entry.invalidate_last_writer()
                dep_table_accesses += 1
            reader_list_empty = reader_list < 0 or reader_lists.is_empty(reader_list)
            if not dep_entry.last_writer_valid and reader_list_empty:
                if reader_list >= 0:
                    rla_accesses_total += reader_lists.free_list(reader_list)
                dependence_table.free(dep_id)
                dep_table_accesses += 1
                address, _size = self._address_of_dependence.pop(dep_id)
                self.dat.release(address)
                dat_releases += 1
        accesses += dep_table_accesses + rla_accesses_total + dat_releases
        structure_accesses[DEP_TABLE] += dep_table_accesses
        structure_accesses[RLA] += rla_accesses_total
        structure_accesses[DAT] += dat_releases

        # Free the task's own resources.
        sla_free_accesses = self.successor_lists.free_list(entry.successor_list)
        accesses += sla_free_accesses
        structure_accesses[SLA] += sla_free_accesses
        dla_free_accesses = self.dependence_lists.free_list(entry.dependence_list)
        accesses += dla_free_accesses
        structure_accesses[DLA] += dla_free_accesses
        self.task_table.free(task_id)
        accesses += 1
        structure_accesses[TASK_TABLE] += 1
        self.tat.release(descriptor_address)
        accesses += 1
        structure_accesses[TAT] += 1
        self._descriptor_of_task.pop(task_id, None)

        cycles = accesses * self._access_cycles
        stats.instructions["finish_task"] += 1
        stats.total_cycles += cycles
        stats.tasks_finished += 1
        return FinishTaskResult(cycles, tasks_woken)

    # ------------------------------------------------------------------ get_ready_task
    def get_ready_task(self) -> GetReadyTaskResult:
        """Pop the next ready task (ISA ``get_ready_task``)."""
        stats = self.stats
        stats.structure_accesses[READY_QUEUE] += 1
        stats.instructions["get_ready_task"] += 1
        task_id = self.ready_queue.pop()
        if task_id is None:
            stats.total_cycles += self._access_cycles
            stats.null_ready_pops += 1
            return self._null_ready_result
        entry = self.task_table.get(task_id)
        stats.structure_accesses[TASK_TABLE] += 1
        cycles = 2 * self._access_cycles
        stats.total_cycles += cycles
        stats.ready_pops += 1
        return GetReadyTaskResult(
            cycles=cycles,
            descriptor_address=entry.descriptor_address,
            num_successors=entry.successor_count,
        )

    # ------------------------------------------------------------------ introspection
    def capacity_snapshot(self) -> Dict[str, int]:
        """Free-entry counts per structure (used by tests and debugging)."""
        return {
            TAT: self.tat.free_entries,
            DAT: self.dat.free_entries,
            SLA: self.successor_lists.free_entries,
            DLA: self.dependence_lists.free_entries,
            RLA: self.reader_lists.free_entries,
        }

    def assert_empty(self) -> None:
        """Raise unless every structure has been drained (all tasks finished)."""
        problems = []
        if self.task_table.occupancy:
            problems.append(f"{self.task_table.occupancy} task entries")
        if self.dependence_table.occupancy:
            problems.append(f"{self.dependence_table.occupancy} dependence entries")
        if self.successor_lists.entries_in_use:
            problems.append(f"{self.successor_lists.entries_in_use} SLA entries")
        if self.dependence_lists.entries_in_use:
            problems.append(f"{self.dependence_lists.entries_in_use} DLA entries")
        if self.reader_lists.entries_in_use:
            problems.append(f"{self.reader_lists.entries_in_use} RLA entries")
        if len(self.ready_queue):
            problems.append(f"{len(self.ready_queue)} ready-queue entries")
        if problems:
            raise DMUProtocolError("DMU not empty at end of program: " + ", ".join(problems))
