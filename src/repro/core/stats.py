"""DMU activity statistics.

The statistics collected here drive three parts of the evaluation:

* the design-space exploration (blocked instructions per structure explain
  the performance loss of undersized TAT/DAT/list arrays — Figures 7 and 8),
* the DAT occupancy study (Figure 11),
* the power model (SRAM accesses per structure feed the dynamic-energy
  estimate of the DMU).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping


@dataclass
class DMUStats:
    """Counters accumulated by the DMU across a simulation."""

    instructions: Counter = field(default_factory=Counter)
    structure_accesses: Counter = field(default_factory=Counter)
    blocked_by_structure: Counter = field(default_factory=Counter)
    total_cycles: int = 0
    tasks_created: int = 0
    tasks_finished: int = 0
    dependences_added: int = 0
    ready_pops: int = 0
    null_ready_pops: int = 0

    def record_instruction(self, name: str, cycles: int) -> None:
        self.instructions[name] += 1
        self.total_cycles += cycles

    def record_access(self, structure: str, count: int = 1) -> None:
        self.structure_accesses[structure] += count

    def record_blocked(self, structure: str) -> None:
        self.blocked_by_structure[structure] += 1

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions.values())

    @property
    def total_blocked(self) -> int:
        return sum(self.blocked_by_structure.values())

    @property
    def total_accesses(self) -> int:
        return sum(self.structure_accesses.values())

    def average_cycles_per_instruction(self) -> float:
        """Mean DMU processing cycles per retired instruction."""
        retired = self.total_instructions
        return self.total_cycles / retired if retired else 0.0

    def accesses_by_structure(self) -> Mapping[str, int]:
        return dict(self.structure_accesses)

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation for reports and tests."""
        return {
            "total_instructions": self.total_instructions,
            "total_cycles": self.total_cycles,
            "total_accesses": self.total_accesses,
            "total_blocked": self.total_blocked,
            "tasks_created": self.tasks_created,
            "tasks_finished": self.tasks_finished,
            "dependences_added": self.dependences_added,
            "ready_pops": self.ready_pops,
            "null_ready_pops": self.null_ready_pops,
            "instructions": dict(self.instructions),
            "structure_accesses": dict(self.structure_accesses),
            "blocked_by_structure": dict(self.blocked_by_structure),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "DMUStats":
        """Rebuild :class:`DMUStats` from :meth:`as_dict` output.

        Only the raw counters are read; the derived totals in the dictionary
        (``total_instructions``, ...) recompute from them.
        """
        return cls(
            instructions=Counter(data.get("instructions", {})),
            structure_accesses=Counter(data.get("structure_accesses", {})),
            blocked_by_structure=Counter(data.get("blocked_by_structure", {})),
            total_cycles=int(data.get("total_cycles", 0)),
            tasks_created=int(data.get("tasks_created", 0)),
            tasks_finished=int(data.get("tasks_finished", 0)),
            dependences_added=int(data.get("dependences_added", 0)),
            ready_pops=int(data.get("ready_pops", 0)),
            null_ready_pops=int(data.get("null_ready_pops", 0)),
        )
