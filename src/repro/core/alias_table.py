"""Task and Dependence Alias Tables (TAT / DAT).

The alias tables translate 64-bit task-descriptor or dependence addresses
into small internal IDs so that the rest of the DMU can use cheap
direct-access SRAMs and narrow list elements.  Each table is a set-
associative directory plus a queue of free IDs (Section III-B1 of the paper).

The DAT additionally uses *dynamic index-bit selection*: because different
tasks frequently access different blocks of the same data structure, the low
bits of their dependence addresses are identical and a naive index would map
everything to one set.  The DMU therefore starts the index bits at
``log2(size)`` of the dependence (Section III-B1 / Section V-E), which this
module implements in :func:`dat_index_start_bit`.

Way storage is struct-of-arrays: each touched set owns a fixed slab of
``associativity`` slots in two flat parallel columns (``way address`` and
``way internal-ID``) plus an incremental per-set occupancy count — no tuple
is allocated per way insertion, and eviction shifts the short slab in place
to preserve way order.  Slabs are assigned lazily on a set's first
allocation so "ideal" configurations (2^20 entries) never pay for untouched
sets.  Internal IDs keep the fresh-counter + recycled-LIFO-stack scheme:
recycling order is observable (it decides which Task/Dependence Table row a
new allocation lands in) and is pinned by the digest tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import DMUStructureFullError
from .backends import StorageBackend, resolve_backend


def dat_index_start_bit(size: int) -> int:
    """Index start bit for a dependence of ``size`` bytes (dynamic selection).

    The paper: "the size of the dependence is used to select the address bits
    used as index, which start at the log2(size) lower bit".  Sizes that are
    not powers of two round down, and degenerate sizes fall back to bit 0.
    """
    if size <= 1:
        return 0
    return size.bit_length() - 1


class AliasTable:
    """Set-associative address → internal-ID directory with a free-ID queue."""

    def __init__(
        self,
        name: str,
        num_entries: int,
        associativity: int,
        index_start_bit: int = 0,
        dynamic_index: bool = False,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        if num_entries % associativity != 0:
            raise ValueError("num_entries must be a multiple of associativity")
        self.name = name
        self.num_entries = num_entries
        self.associativity = associativity
        self.num_sets = num_entries // associativity
        self.index_start_bit = index_start_bit
        self.dynamic_index = dynamic_index
        backend = backend if backend is not None else resolve_backend()
        self._backend = backend
        # Way columns: set with slab number s owns slots
        # [s * associativity, (s + 1) * associativity) of both columns, with
        # its live-way count in _set_count[s].  Slabs are handed out lazily.
        self._slab_of_set: Dict[int, int] = {}
        self._way_address: List[int] = backend.make_slab()
        self._way_id: List[int] = backend.make_slab()
        self._set_count: List[int] = backend.make_column()
        self._by_address: Dict[int, int] = {}
        self._address_set: Dict[int, int] = {}
        # Occupied-set count maintained incrementally: allocate/release keep
        # it in sync so occupancy sampling (once per add_dependence) does not
        # rescan every set.
        self._occupied_sets = 0
        # Internal IDs are handed out lazily (fresh counter + recycled stack)
        # so that very large "ideal" configurations cost nothing up front.
        self._next_fresh_id = 0
        self._recycled_ids: List[int] = []
        # statistics
        self.lookups = 0
        self.allocations = 0
        self.conflict_rejections = 0
        self.capacity_rejections = 0
        self.peak_occupancy = 0
        self._occupied_set_samples = 0
        self._occupied_set_total = 0

    # ------------------------------------------------------------------ indexing
    def set_index(self, address: int, size: int = 1) -> int:
        """Set selected for ``address`` (honouring dynamic index-bit selection)."""
        start_bit = dat_index_start_bit(size) if self.dynamic_index else self.index_start_bit
        return (address >> start_bit) % self.num_sets

    # ------------------------------------------------------------------ occupancy
    @property
    def entries_in_use(self) -> int:
        return len(self._by_address)

    @property
    def free_entries(self) -> int:
        return self.num_entries - len(self._by_address)

    def occupied_sets(self) -> int:
        """Number of sets that currently hold at least one valid entry."""
        return self._occupied_sets

    def sample_occupancy(self) -> None:
        """Record the current occupied-set count (drives Figure 11)."""
        self._occupied_set_samples += 1
        self._occupied_set_total += self._occupied_sets

    def average_occupied_sets(self) -> float:
        """Mean number of occupied sets over all samples taken so far."""
        if self._occupied_set_samples == 0:
            return 0.0
        return self._occupied_set_total / self._occupied_set_samples

    # ------------------------------------------------------------------ operations
    def lookup(self, address: int) -> Optional[int]:
        """Return the internal ID mapped to ``address`` (None on miss)."""
        self.lookups += 1
        return self._by_address.get(address)

    def can_allocate(self, address: int, size: int = 1) -> bool:
        """True when ``address`` could be inserted right now without blocking."""
        if address in self._by_address:
            return True
        if self.num_entries - len(self._by_address) <= 0:
            return False
        slab = self._slab_of_set.get(self.set_index(address, size))
        return slab is None or self._set_count[slab] < self.associativity

    def allocate(self, address: int, size: int = 1) -> int:
        """Map ``address`` to a fresh internal ID (or return the existing one).

        Raises :class:`DMUStructureFullError` when either no free ID remains
        (capacity rejection) or the selected set has no free way (conflict
        rejection); the two causes are counted separately because the
        index-bit-selection experiment distinguishes them.
        """
        by_address = self._by_address
        existing = by_address.get(address)
        if existing is not None:
            return existing
        if self.num_entries - len(by_address) <= 0:
            self.capacity_rejections += 1
            raise DMUStructureFullError(self.name, f"{self.name}: no free IDs")
        set_index = self.set_index(address, size)
        set_count = self._set_count
        slab = self._slab_of_set.get(set_index)
        if slab is None:
            slab = len(set_count)
            self._slab_of_set[set_index] = slab
            blank = (-1,) * self.associativity
            self._way_address.extend(blank)
            self._way_id.extend(blank)
            set_count.append(0)
        count = set_count[slab]
        if count >= self.associativity:
            self.conflict_rejections += 1
            raise DMUStructureFullError(
                self.name, f"{self.name}: set {set_index} has no free way"
            )
        if self._recycled_ids:
            internal_id = self._recycled_ids.pop()
        else:
            internal_id = self._next_fresh_id
            self._next_fresh_id += 1
        if count == 0:
            self._occupied_sets += 1
        slot = slab * self.associativity + count
        self._way_address[slot] = address
        self._way_id[slot] = internal_id
        set_count[slab] = count + 1
        by_address[address] = internal_id
        self._address_set[address] = set_index
        self.allocations += 1
        occupancy = len(by_address)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return internal_id

    def release(self, address: int) -> int:
        """Remove the mapping for ``address`` and return its ID to the free queue."""
        internal_id = self._by_address.pop(address, None)
        if internal_id is None:
            raise KeyError(f"{self.name}: address {address:#x} is not mapped")
        set_index = self._address_set.pop(address)
        slab = self._slab_of_set[set_index]
        way_address = self._way_address
        way_id = self._way_id
        base = slab * self.associativity
        count = self._set_count[slab]
        # Find the way and close the gap by shifting the (short) slab tail
        # left one slot — preserves way order exactly like the old
        # ``del ways[position]`` on a per-set list.
        for slot in range(base, base + count):
            if way_address[slot] == address:
                for shift in range(slot, base + count - 1):
                    way_address[shift] = way_address[shift + 1]
                    way_id[shift] = way_id[shift + 1]
                way_address[base + count - 1] = -1
                way_id[base + count - 1] = -1
                break
        self._set_count[slab] = count - 1
        if count == 1:
            self._occupied_sets -= 1
        self._recycled_ids.append(internal_id)
        return internal_id

    def audit(self) -> Dict[str, int]:
        """Whole-structure occupancy recount from the raw way columns.

        Delegates to the backend (vectorized under ``accel``); the
        differential tests compare this ground truth against the maintained
        ``_occupied_sets`` counter and the address directory.
        """
        return self._backend.audit_alias_table(self)

    def address_of(self, internal_id: int) -> Optional[int]:
        """Reverse lookup (used by tests and debugging; not a hardware path)."""
        for address, mapped in self._by_address.items():
            if mapped == internal_id:
                return address
        return None

    def __contains__(self, address: int) -> bool:
        return address in self._by_address

    def __len__(self) -> int:
        return self.entries_in_use

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AliasTable({self.name!r}, {self.entries_in_use}/{self.num_entries} entries, "
            f"{self.num_sets}x{self.associativity})"
        )
