"""Storage and area model of the DMU and of the comparison baselines.

Reproduces Table III of the paper (storage in KB and area in mm² of every
DMU structure) and the hardware-complexity comparison of Section VI-C
(769 KB for Task Superscalar, i.e. 7.3× the DMU's 105.25 KB).

Storage is computed from explicit field widths:

* internal task IDs are ``log2(task_table_entries)`` bits and dependence IDs
  ``log2(dependence_table_entries)`` bits (11 bits in the default
  configuration, as stated in Section III-B1),
* list-array pointers are ``log2(list_entries)`` bits (10 bits by default),
* alias-table entries store the full 64-bit address plus the internal ID,
* Task Table entries store the 64-bit descriptor address, the predecessor and
  successor counters and the two list pointers,
* Dependence Table entries store the last-writer ID and the reader-list
  pointer,
* list-array entries store ``elements_per_entry`` IDs plus the Next pointer,
* the Ready Queue stores one task ID per entry.

Area uses a small regression calibrated against the CACTI 6.0 numbers of
Table III at 22 nm: a per-structure fixed overhead (decoders, sense
amplifiers) plus a per-bit cell cost, with a higher cost for the associative
alias tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..config import DMUConfig
from ..units import bits_to_kilobytes

# Calibrated area regression (22 nm, single-port SRAM).
_DIRECT_FIXED_MM2 = 0.0075
_DIRECT_PER_BIT_UM2 = 0.100
_ASSOC_FIXED_MM2 = 0.0120
_ASSOC_PER_BIT_UM2 = 0.125
_UM2_PER_MM2 = 1e6

ADDRESS_BITS = 64
#: Counter widths used by Table III's storage accounting.
PREDECESSOR_COUNT_BITS = 4
SUCCESSOR_COUNT_BITS = 4


def _log2_bits(entries: int) -> int:
    """Number of bits needed to name one of ``entries`` items."""
    return max(1, (entries - 1).bit_length())


def sram_area_mm2(bits: int, associative: bool = False) -> float:
    """Area estimate of an SRAM structure of ``bits`` bits at 22 nm."""
    if bits <= 0:
        return 0.0
    if associative:
        return _ASSOC_FIXED_MM2 + bits * _ASSOC_PER_BIT_UM2 / _UM2_PER_MM2
    return _DIRECT_FIXED_MM2 + bits * _DIRECT_PER_BIT_UM2 / _UM2_PER_MM2


def sram_access_energy_pj(bits_per_entry: int, entries: int, associative: bool = False) -> float:
    """Per-access dynamic energy estimate (pJ) of a small SRAM structure."""
    base = 1.2 if associative else 0.6
    return base + 0.004 * bits_per_entry + 0.0006 * entries


@dataclass(frozen=True)
class StructureStorage:
    """Storage accounting of one hardware structure."""

    name: str
    entries: int
    bits_per_entry: int
    associative: bool = False

    @property
    def total_bits(self) -> int:
        return self.entries * self.bits_per_entry

    @property
    def kilobytes(self) -> float:
        return bits_to_kilobytes(self.total_bits)

    @property
    def area_mm2(self) -> float:
        return sram_area_mm2(self.total_bits, self.associative)

    @property
    def access_energy_pj(self) -> float:
        return sram_access_energy_pj(self.bits_per_entry, self.entries, self.associative)


class DMUStorageModel:
    """Storage/area breakdown of the DMU for a given configuration (Table III)."""

    def __init__(self, config: DMUConfig | None = None) -> None:
        self.config = config or DMUConfig()
        self.config.validate()

    def _task_id_bits(self) -> int:
        return _log2_bits(self.config.task_table_entries)

    def _dependence_id_bits(self) -> int:
        return _log2_bits(self.config.dependence_table_entries)

    def structures(self) -> List[StructureStorage]:
        """Per-structure storage accounting in Table III order."""
        cfg = self.config
        task_id_bits = self._task_id_bits()
        dep_id_bits = self._dependence_id_bits()
        sla_ptr_bits = _log2_bits(cfg.successor_list_entries)
        dla_ptr_bits = _log2_bits(cfg.dependence_list_entries)
        rla_ptr_bits = _log2_bits(cfg.reader_list_entries)

        task_table_bits = (
            ADDRESS_BITS
            + PREDECESSOR_COUNT_BITS
            + SUCCESSOR_COUNT_BITS
            + sla_ptr_bits
            + dla_ptr_bits
        )
        dep_table_bits = task_id_bits + rla_ptr_bits
        tat_bits = ADDRESS_BITS + task_id_bits
        dat_bits = ADDRESS_BITS + dep_id_bits
        sla_bits = cfg.elements_per_list_entry * task_id_bits + sla_ptr_bits
        dla_bits = cfg.elements_per_list_entry * dep_id_bits + dla_ptr_bits
        rla_bits = cfg.elements_per_list_entry * task_id_bits + rla_ptr_bits
        ready_queue_bits = task_id_bits

        return [
            StructureStorage("Task Table", cfg.task_table_entries, task_table_bits),
            StructureStorage("Dep Table", cfg.dependence_table_entries, dep_table_bits),
            StructureStorage("TAT", cfg.tat_entries, tat_bits, associative=True),
            StructureStorage("DAT", cfg.dat_entries, dat_bits, associative=True),
            StructureStorage("SLA", cfg.successor_list_entries, sla_bits),
            StructureStorage("DLA", cfg.dependence_list_entries, dla_bits),
            StructureStorage("RLA", cfg.reader_list_entries, rla_bits),
            StructureStorage("ReadyQ", cfg.ready_queue_entries, ready_queue_bits),
        ]

    def by_name(self) -> Dict[str, StructureStorage]:
        return {structure.name: structure for structure in self.structures()}

    @property
    def total_kilobytes(self) -> float:
        return sum(structure.kilobytes for structure in self.structures())

    @property
    def total_area_mm2(self) -> float:
        return sum(structure.area_mm2 for structure in self.structures())

    def average_access_energy_pj(self) -> float:
        """Mean per-access energy over the DMU structures (power model input)."""
        structures = self.structures()
        return sum(s.access_energy_pj for s in structures) / len(structures)


class TaskSuperscalarStorageModel:
    """Storage of the Task Superscalar pipeline for the same in-flight window.

    Section VI-C of the paper: for 2048 in-flight tasks and dependences, Task
    Superscalar requires a 1 KB Gateway, a 256 KB TRS (2048 entries x 128 B),
    a 256 KB ORT (2048 entries x 128 B) and a 256 KB Ready Queue
    (2048 entries x 128 B) — 769 KB in total; the OVT is excluded because the
    DMU does not perform dependence renaming either.
    """

    def __init__(self, in_flight_entries: int = 2048) -> None:
        if in_flight_entries < 1:
            raise ValueError("in_flight_entries must be >= 1")
        self.in_flight_entries = in_flight_entries

    def structures(self) -> List[StructureStorage]:
        entry_bits = 128 * 8
        return [
            StructureStorage("Gateway", 64, 128, associative=False),
            StructureStorage("TRS", self.in_flight_entries, entry_bits),
            StructureStorage("ORT", self.in_flight_entries, entry_bits, associative=True),
            StructureStorage("ReadyQueue", self.in_flight_entries, entry_bits),
        ]

    @property
    def total_kilobytes(self) -> float:
        return sum(structure.kilobytes for structure in self.structures())

    @property
    def total_area_mm2(self) -> float:
        return sum(structure.area_mm2 for structure in self.structures())


class CarbonStorageModel:
    """Storage of Carbon's distributed hardware task queues.

    Carbon [10] keeps ready tasks in per-core hardware queues with work
    stealing; the paper calls this "simple hardware queues" without giving a
    size, so this model assumes 64 task descriptors of 16 bytes per core
    (an estimate documented in DESIGN.md).
    """

    def __init__(self, num_cores: int = 32, entries_per_core: int = 64, bytes_per_entry: int = 16) -> None:
        self.num_cores = num_cores
        self.entries_per_core = entries_per_core
        self.bytes_per_entry = bytes_per_entry

    def structures(self) -> List[StructureStorage]:
        return [
            StructureStorage(
                f"LTQ{core}", self.entries_per_core, self.bytes_per_entry * 8
            )
            for core in range(self.num_cores)
        ]

    @property
    def total_kilobytes(self) -> float:
        return sum(structure.kilobytes for structure in self.structures())

    @property
    def total_area_mm2(self) -> float:
        return sum(structure.area_mm2 for structure in self.structures())
