"""Inode-style list arrays (Figure 5 of the paper), stored columnar.

A list array is an SRAM that stores many variable-length lists of small IDs.
Each entry holds a fixed number of element slots plus a ``Next`` field that
points to the entry where the list continues; the ``Next`` field of the last
entry points to the entry itself.  Invalid element slots hold an all-ones
marker.

The DMU uses three list arrays: the Successor List Array (task IDs), the
Dependence List Array (dependence IDs) and the Reader List Array (task IDs).
They share this implementation.

Storage is struct-of-arrays rather than object-per-entry: all entries'
element slots live in one flat list (entry ``i`` owns slots
``[i * elements_per_entry, (i + 1) * elements_per_entry)``) beside parallel
``next``/``in_use``/``valid`` columns indexed by entry.  Entry *handles* are
plain ints; no per-entry object is ever allocated on the DMU instruction
path.  Columns grow on demand so that very large ("ideal", effectively
unlimited) configurations cost nothing until entries are actually used.

Three per-list columns (meaningful at a list's *head* entry only) make the
DMU's uncharged capacity pre-checks O(1) instead of a chain walk:
``_list_valid`` (total valid elements in the chain), ``_list_entries``
(chain length in entries) and ``_tail`` (last entry of the chain).

Every mutating method returns the number of SRAM entry accesses it performed
so the DMU can charge the corresponding latency.  The access counts are part
of the timing model (and therefore of the pinned byte-identical CSV
digests), so performance work here may only change *how* a walk is executed,
never how many entries it visits.  ``append_only`` arrays (no ``remove``/
``flush``) exploit the invariant that only the tail entry can have free
slots to compute the charged walk length arithmetically.

Entry recycling order is observable (it decides which SRAM entry a new list
lands in, and the corrupted-chain guards walk real indices), so the free
list is a LIFO stack exactly like the object-based implementation it
replaced: ``_release_entry`` pushes, ``_allocate_entry`` pops, and fresh
indices are handed out in increasing order only when the stack is empty.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import DMUStructureFullError
from .backends import StorageBackend, resolve_backend

#: Marker stored in unused element slots ("Invalid elements are set to all ones").
INVALID_ELEMENT = 0xFFF


class ListArray:
    """A pool of inode-style linked lists with explicit capacity accounting."""

    def __init__(
        self,
        name: str,
        num_entries: int,
        elements_per_entry: int,
        append_only: bool = False,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        if elements_per_entry < 1:
            raise ValueError("elements_per_entry must be >= 1")
        self.name = name
        self.num_entries = num_entries
        self.elements_per_entry = elements_per_entry
        #: Append-only arrays reject ``remove``/``flush``; in exchange the
        #: append path needs no chain walk (only the tail can be non-full).
        self.append_only = append_only
        backend = backend if backend is not None else resolve_backend()
        self._backend = backend
        # Cached backend reference for the first-free-slot scan of the
        # general append path (the one scan primitive this structure needs).
        self._find_first = backend.find_first
        # Columnar storage, grown lazily as fresh entries are touched.
        self._elements: List[int] = backend.make_slab()  # flat slot slab
        self._next: List[int] = backend.make_column()  # Next pointer (self-loop at tail)
        self._in_use: List[int] = backend.make_column()  # 0/1 per entry
        self._valid: List[int] = backend.make_column()  # valid-slot count per entry
        # Per-list columns, read/written at the head entry's index only.
        self._list_valid: List[int] = backend.make_column()
        self._list_entries: List[int] = backend.make_column()
        self._tail: List[int] = backend.make_column()
        self._recycled: List[int] = backend.make_column()
        self._next_fresh_index = 0
        self.peak_entries_used = 0
        #: Number of SRAM entries not currently assigned to any list.  A
        #: plain attribute maintained by allocate/release (not a property):
        #: the DMU reads it in every capacity pre-check.
        self.free_entries = num_entries
        # All-invalid slot row, slice-assigned to blank an entry in one C
        # call instead of a per-slot Python loop.
        self._blank_row = (INVALID_ELEMENT,) * elements_per_entry

    # ------------------------------------------------------------------ capacity
    @property
    def entries_in_use(self) -> int:
        return self.num_entries - self.free_entries

    def _allocate_entry(self) -> int:
        free = self.free_entries
        if free <= 0:
            raise DMUStructureFullError(self.name)
        if self._recycled:
            # _release_entry already blanked the slots and reset the columns.
            index = self._recycled.pop()
        else:
            index = self._next_fresh_index
            self._next_fresh_index = index + 1
            self._elements.extend(self._blank_row)
            self._next.append(index)
            self._in_use.append(0)
            self._valid.append(0)
            self._list_valid.append(0)
            self._list_entries.append(0)
            self._tail.append(index)
        self._in_use[index] = 1
        self._next[index] = index
        self.free_entries = free - 1
        in_use = self.num_entries - free + 1
        if in_use > self.peak_entries_used:
            self.peak_entries_used = in_use
        return index

    def _release_entry(self, index: int) -> None:
        self._in_use[index] = 0
        base = index * self.elements_per_entry
        self._elements[base : base + self.elements_per_entry] = self._blank_row
        self._valid[index] = 0
        self._next[index] = index
        self.free_entries += 1
        self._recycled.append(index)

    # ------------------------------------------------------------------ list API
    def new_list_head(self) -> int:
        """Allocate an empty list; returns the head handle (always 1 access).

        The no-tuple variant of :meth:`new_list` for the DMU's hot create
        path, where the access count is a known constant.
        """
        head = self._allocate_entry()
        self._list_valid[head] = 0
        self._list_entries[head] = 1
        self._tail[head] = head
        return head

    def new_list(self) -> Tuple[int, int]:
        """Allocate an empty list; returns ``(head_handle, accesses)``."""
        return self.new_list_head(), 1

    def appending_needs_new_entry(self, head: int) -> bool:
        """True when the list's *tail entry* is full — the pre-rewrite
        (object-model) semantics, which the DMU's blocking behavior is
        pinned to.

        Note this is deliberately NOT "no free slot anywhere": after
        ``remove`` leaves a hole in a non-tail entry, ``append`` fills the
        hole without allocating, but the historical pre-check still reported
        True (it walked to the tail and looked only there) and the DMU
        therefore blocked on exhausted capacity.  O(1) here via the
        maintained tail column instead of the walk.
        """
        if not self._in_use[head]:
            raise ValueError(f"{self.name}: list head {head} references a free entry")
        return self._valid[self._tail[head]] == self.elements_per_entry

    def append(self, head: int, value: int) -> int:
        """Append ``value`` to the list starting at ``head``; returns accesses.

        Raises :class:`DMUStructureFullError` when a new entry is needed and
        the array is exhausted; the caller is expected to have checked
        capacity first (the DMU pre-checks before mutating any structure).
        """
        if value == INVALID_ELEMENT:
            raise ValueError("cannot store the invalid-element marker")
        per_entry = self.elements_per_entry
        valid = self._valid
        list_valid = self._list_valid
        if self.append_only:
            # Only the tail can be non-full, so the charged walk length is
            # known without walking: the walk of the general path below
            # visits every entry up to (and including) the first one with a
            # free slot, and slots fill left to right with no holes.
            if not self._in_use[head]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            chain_entries = self._list_entries[head]
            tail = self._tail[head]
            tail_valid = valid[tail]
            if tail_valid < per_entry:
                self._elements[tail * per_entry + tail_valid] = value
                valid[tail] = tail_valid + 1
                list_valid[head] += 1
                return chain_entries
            new_index = self._allocate_entry()
            self._next[tail] = new_index
            self._elements[new_index * per_entry] = value
            valid[new_index] = 1
            self._tail[head] = new_index
            self._list_entries[head] = chain_entries + 1
            list_valid[head] += 1
            return chain_entries + 1
        elements = self._elements
        next_column = self._next
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry_valid = valid[index]
            if entry_valid < per_entry:
                # First free slot, located with the C-level scan (invalid
                # slots hold the marker, so index() finds the same slot the
                # old per-slot loop did).
                base = index * per_entry
                slot = self._find_first(elements, INVALID_ELEMENT, base, base + per_entry)
                elements[slot] = value
                valid[index] = entry_valid + 1
                list_valid[head] += 1
                return accesses
            next_index = next_column[index]
            if next_index == index:
                new_index = self._allocate_entry()
                accesses += 1
                next_column[index] = new_index
                elements[new_index * per_entry] = value
                valid[new_index] = 1
                self._tail[head] = new_index
                self._list_entries[head] += 1
                list_valid[head] += 1
                return accesses
            index = next_index

    def iterate(self, head: int) -> Tuple[List[int], int]:
        """Return ``(values, accesses)`` for the whole list."""
        elements = self._elements
        next_column = self._next
        in_use = self._in_use
        valid = self._valid
        per_entry = self.elements_per_entry
        if next_column[head] == head:
            # Single-entry chain: the overwhelmingly common shape.
            if not in_use[head]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            entry_valid = valid[head]
            base = head * per_entry
            if entry_valid == per_entry:
                return elements[base : base + per_entry], 1
            if not entry_valid:
                return [], 1
            if self.append_only:
                # Slots fill left to right with no holes.
                return elements[base : base + entry_valid], 1
            return (
                [
                    element
                    for element in elements[base : base + per_entry]
                    if element != INVALID_ELEMENT
                ],
                1,
            )
        values: List[int] = []
        accesses = 0
        index = head
        while True:
            accesses += 1
            if not in_use[index]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            entry_valid = valid[index]
            if entry_valid:
                base = index * per_entry
                if entry_valid == per_entry:
                    values.extend(elements[base : base + per_entry])
                elif self.append_only:
                    # Only the tail can be partial, and it has no holes.
                    values.extend(elements[base : base + entry_valid])
                else:
                    values.extend(
                        [
                            element
                            for element in elements[base : base + per_entry]
                            if element != INVALID_ELEMENT
                        ]
                    )
            next_index = next_column[index]
            if next_index == index:
                return values, accesses
            if accesses > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            index = next_index

    def remove(self, head: int, value: int) -> Tuple[bool, int]:
        """Remove the first occurrence of ``value``; returns ``(found, accesses)``."""
        if self.append_only:
            raise ValueError(f"{self.name}: remove() on an append-only list array")
        elements = self._elements
        next_column = self._next
        in_use = self._in_use
        valid = self._valid
        per_entry = self.elements_per_entry
        if next_column[head] == head:
            # Single-entry chain fast path.
            if not in_use[head]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            if valid[head]:
                base = head * per_entry
                row = elements[base : base + per_entry]
                if value in row:
                    elements[base + row.index(value)] = INVALID_ELEMENT
                    valid[head] -= 1
                    self._list_valid[head] -= 1
                    return True, 1
            return False, 1
        accesses = 0
        index = head
        while True:
            accesses += 1
            if not in_use[index]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            if valid[index]:
                base = index * per_entry
                row = elements[base : base + per_entry]
                if value in row:
                    elements[base + row.index(value)] = INVALID_ELEMENT
                    valid[index] -= 1
                    self._list_valid[head] -= 1
                    return True, accesses
            next_index = next_column[index]
            if next_index == index:
                return False, accesses
            if accesses > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            index = next_index

    def flush(self, head: int) -> int:
        """Empty the list (keeping its head entry allocated); returns accesses.

        Used for "Flush reader list of depID" in Algorithm 1.
        """
        if self.append_only:
            raise ValueError(f"{self.name}: flush() on an append-only list array")
        next_column = self._next
        in_use = self._in_use
        if not in_use[head]:
            raise ValueError(f"{self.name}: list head {head} references a free entry")
        accesses = 1
        index = next_column[head]
        if index != head:
            while True:
                if not in_use[index]:
                    raise ValueError(
                        f"{self.name}: list head {head} references a free entry"
                    )
                accesses += 1
                if accesses > self.num_entries:
                    raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
                next_index = next_column[index]
                self._release_entry(index)
                if next_index == index:
                    break
                index = next_index
        base = head * self.elements_per_entry
        self._elements[base : base + self.elements_per_entry] = self._blank_row
        self._valid[head] = 0
        next_column[head] = head
        self._list_valid[head] = 0
        self._list_entries[head] = 1
        self._tail[head] = head
        return accesses

    def free_list(self, head: int) -> int:
        """Release every entry of the list; returns accesses."""
        next_column = self._next
        in_use = self._in_use
        if next_column[head] == head:
            # Single-entry chain fast path.
            if not in_use[head]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            self._release_entry(head)
            return 1
        accesses = 0
        index = head
        while True:
            if not in_use[index]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            accesses += 1
            if accesses > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            next_index = next_column[index]
            self._release_entry(index)
            if next_index == index:
                return accesses
            index = next_index

    def length(self, head: int) -> int:
        """Number of valid elements in the list (no access accounting)."""
        if not self._in_use[head]:
            raise ValueError(f"{self.name}: list head {head} references a free entry")
        return self._list_valid[head]

    def is_empty(self, head: int) -> bool:
        """True when the list holds no valid element."""
        return self.length(head) == 0

    def entries_of(self, head: int) -> int:
        """Number of SRAM entries the list currently spans."""
        if not self._in_use[head]:
            raise ValueError(f"{self.name}: list head {head} references a free entry")
        return self._list_entries[head]

    def audit(self) -> Dict[str, int]:
        """Whole-structure occupancy recount from the raw columns.

        Delegates to the backend (vectorized under ``accel``); the
        differential tests compare this ground truth against the maintained
        ``free_entries``/``_list_valid`` counters.
        """
        return self._backend.audit_list_array(self)

    # ------------------------------------------------------------------ internals
    def _walk(self, head: int) -> Iterator[int]:
        """Follow the chain from ``head`` (validation and tests only)."""
        index = head
        visited = 0
        while True:
            if not self._in_use[index]:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            yield index
            visited += 1
            if visited > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            if self._next[index] == index:
                return
            index = self._next[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ListArray({self.name!r}, {self.entries_in_use}/{self.num_entries} entries, "
            f"{self.elements_per_entry} elems/entry)"
        )
