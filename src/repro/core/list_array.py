"""Inode-style list arrays (Figure 5 of the paper).

A list array is an SRAM that stores many variable-length lists of small IDs.
Each entry holds a fixed number of element slots plus a ``Next`` field that
points to the entry where the list continues; the ``Next`` field of the last
entry points to the entry itself.  Invalid element slots hold an all-ones
marker.

The DMU uses three list arrays: the Successor List Array (task IDs), the
Dependence List Array (dependence IDs) and the Reader List Array (task IDs).
They share this implementation.

Every method returns the number of SRAM entry accesses it performed so the
DMU can charge the corresponding latency.  The access counts are part of the
timing model (and therefore of the pinned byte-identical CSV digests), so
performance work here may only change *how* a walk is executed, never how
many entries it visits.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import DMUStructureFullError

#: Marker stored in unused element slots ("Invalid elements are set to all ones").
INVALID_ELEMENT = 0xFFF


class _ListEntry:
    """One SRAM entry: element slots plus the Next pointer.

    ``valid`` mirrors the number of non-invalid slots so the fullness and
    length checks performed on every DMU instruction do not rescan the slot
    array.
    """

    __slots__ = ("elements", "next_index", "in_use", "valid")

    def __init__(self, elements: List[int], next_index: int, in_use: bool = False) -> None:
        self.elements = elements
        self.next_index = next_index
        self.in_use = in_use
        self.valid = len(elements) - elements.count(INVALID_ELEMENT)

    def count(self) -> int:
        return self.valid

    def is_full(self) -> bool:
        return self.valid == len(self.elements)


class ListArray:
    """A pool of inode-style linked lists with explicit capacity accounting."""

    def __init__(self, name: str, num_entries: int, elements_per_entry: int) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        if elements_per_entry < 1:
            raise ValueError("elements_per_entry must be >= 1")
        self.name = name
        self.num_entries = num_entries
        self.elements_per_entry = elements_per_entry
        # Entry objects are materialized lazily so that very large (or
        # "ideal", effectively unlimited) configurations cost nothing until
        # entries are actually used.  ``_entries`` only holds entries that are
        # currently in use or have been used before (recycled).
        self._entries: dict[int, _ListEntry] = {}
        self._recycled: List[int] = []
        self._next_fresh_index = 0
        self.peak_entries_used = 0
        #: Number of SRAM entries not currently assigned to any list.  A
        #: plain attribute maintained by allocate/release (not a property):
        #: the DMU reads it in every capacity pre-check.
        self.free_entries = num_entries
        # All-invalid slot row, slice-assigned to recycle an entry in one C
        # call instead of a per-slot Python loop.
        self._blank_row = (INVALID_ELEMENT,) * elements_per_entry

    # ------------------------------------------------------------------ capacity
    @property
    def entries_in_use(self) -> int:
        return self.num_entries - self.free_entries

    def _allocate_entry(self) -> int:
        free = self.free_entries
        if free <= 0:
            raise DMUStructureFullError(self.name)
        if self._recycled:
            # _release_entry already blanked the slots and reset `valid`.
            index = self._recycled.pop()
            entry = self._entries[index]
        else:
            index = self._next_fresh_index
            self._next_fresh_index = index + 1
            entry = _ListEntry(list(self._blank_row), next_index=index)
            self._entries[index] = entry
        entry.in_use = True
        entry.next_index = index
        self.free_entries = free - 1
        in_use = self.num_entries - free + 1
        if in_use > self.peak_entries_used:
            self.peak_entries_used = in_use
        return index

    def _release_entry(self, index: int) -> None:
        entry = self._entries[index]
        entry.in_use = False
        entry.elements[:] = self._blank_row
        entry.valid = 0
        entry.next_index = index
        self.free_entries += 1
        self._recycled.append(index)

    # ------------------------------------------------------------------ list API
    def new_list(self) -> Tuple[int, int]:
        """Allocate an empty list; returns ``(head_index, accesses)``."""
        head = self._allocate_entry()
        return head, 1

    def appending_needs_new_entry(self, head: int) -> bool:
        """True when appending one element to the list would allocate an entry."""
        entries = self._entries
        index = head
        visited = 0
        while True:
            entry = entries[index]
            if not entry.in_use:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            visited += 1
            if entry.next_index == index:
                return entry.valid == self.elements_per_entry
            if visited > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            index = entry.next_index

    def append(self, head: int, value: int) -> int:
        """Append ``value`` to the list starting at ``head``; returns accesses.

        Raises :class:`DMUStructureFullError` when a new entry is needed and
        the array is exhausted; the caller is expected to have checked
        capacity first (the DMU pre-checks before mutating any structure).
        """
        if value == INVALID_ELEMENT:
            raise ValueError("cannot store the invalid-element marker")
        entries = self._entries
        per_entry = self.elements_per_entry
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry = entries[index]
            valid = entry.valid
            if valid < per_entry:
                # First free slot, located with the C-level scan (invalid
                # slots hold the marker, so index() finds the same slot the
                # old per-slot loop did).
                elements = entry.elements
                elements[elements.index(INVALID_ELEMENT)] = value
                entry.valid = valid + 1
                return accesses
            next_index = entry.next_index
            if next_index == index:
                new_index = self._allocate_entry()
                accesses += 1
                entry.next_index = new_index
                new_entry = entries[new_index]
                new_entry.elements[0] = value
                new_entry.valid = 1
                return accesses
            index = next_index

    def iterate(self, head: int) -> Tuple[List[int], int]:
        """Return ``(values, accesses)`` for the whole list."""
        entries = self._entries
        per_entry = self.elements_per_entry
        values: List[int] = []
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry = entries[index]
            if not entry.in_use:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            valid = entry.valid
            if valid:
                elements = entry.elements
                if valid == per_entry:
                    values.extend(elements)
                else:
                    values.extend(
                        [element for element in elements if element != INVALID_ELEMENT]
                    )
            next_index = entry.next_index
            if next_index == index:
                return values, accesses
            if accesses > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            index = next_index

    def remove(self, head: int, value: int) -> Tuple[bool, int]:
        """Remove the first occurrence of ``value``; returns ``(found, accesses)``."""
        entries = self._entries
        accesses = 0
        index = head
        while True:
            accesses += 1
            entry = entries[index]
            if not entry.in_use:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            if entry.valid:
                elements = entry.elements
                if value in elements:
                    elements[elements.index(value)] = INVALID_ELEMENT
                    entry.valid -= 1
                    return True, accesses
            next_index = entry.next_index
            if next_index == index:
                return False, accesses
            if accesses > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            index = next_index

    def flush(self, head: int) -> int:
        """Empty the list (keeping its head entry allocated); returns accesses.

        Used for "Flush reader list of depID" in Algorithm 1.
        """
        entries = self._entries
        head_entry = entries[head]
        if not head_entry.in_use:
            raise ValueError(f"{self.name}: list head {head} references a free entry")
        accesses = 1
        index = head_entry.next_index
        if index != head:
            while True:
                entry = entries[index]
                if not entry.in_use:
                    raise ValueError(
                        f"{self.name}: list head {head} references a free entry"
                    )
                accesses += 1
                if accesses > self.num_entries:
                    raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
                next_index = entry.next_index
                self._release_entry(index)
                if next_index == index:
                    break
                index = next_index
        head_entry.elements[:] = self._blank_row
        head_entry.valid = 0
        head_entry.next_index = head
        return accesses

    def free_list(self, head: int) -> int:
        """Release every entry of the list; returns accesses."""
        entries = self._entries
        accesses = 0
        index = head
        while True:
            entry = entries[index]
            if not entry.in_use:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            accesses += 1
            if accesses > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            next_index = entry.next_index
            self._release_entry(index)
            if next_index == index:
                return accesses
            index = next_index

    def length(self, head: int) -> int:
        """Number of valid elements in the list (no access accounting)."""
        entries = self._entries
        total = 0
        visited = 0
        index = head
        while True:
            entry = entries[index]
            if not entry.in_use:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            total += entry.valid
            visited += 1
            if entry.next_index == index:
                return total
            if visited > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            index = entry.next_index

    def is_empty(self, head: int) -> bool:
        """True when the list holds no valid element."""
        return self.length(head) == 0

    def entries_of(self, head: int) -> int:
        """Number of SRAM entries the list currently spans."""
        return sum(1 for _ in self._walk(head))

    # ------------------------------------------------------------------ internals
    def _walk(self, head: int) -> Iterator[int]:
        index = head
        visited = 0
        while True:
            entry = self._entries[index]
            if not entry.in_use:
                raise ValueError(f"{self.name}: list head {head} references a free entry")
            yield index
            visited += 1
            if visited > self.num_entries:
                raise ValueError(f"{self.name}: corrupted list chain starting at {head}")
            if entry.next_index == index:
                return
            index = entry.next_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ListArray({self.name!r}, {self.entries_in_use}/{self.num_entries} entries, "
            f"{self.elements_per_entry} elems/entry)"
        )
