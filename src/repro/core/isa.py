"""Result types of the four TDM ISA instructions.

The runtime system communicates with the DMU through four new ISA
instructions (Section III-A of the paper): ``create_task``,
``add_dependence``, ``finish_task`` and ``get_ready_task``.  In this model an
instruction is a method call on :class:`~repro.core.dmu.DependenceManagementUnit`
that returns one of the result objects below.  Every result carries the number
of DMU cycles the operation consumed (one cycle per SRAM access times the
configured access latency); the simulator adds issue and NoC latencies on top.

When a DMU structure has no free entry the instruction cannot make progress;
instead of mutating state partially the DMU returns :class:`DMUBlocked`, and
the simulated core retries once capacity is freed (the paper gives the ISA
instructions blocking/barrier semantics).

These are plain ``__slots__`` classes with ``blocked`` as a class attribute
rather than frozen dataclasses (whose generated ``__init__`` pays an
``object.__setattr__`` call per field).  The DMU **pools** one instance per
result type and mutates it in place on every instruction — the innermost
unit of work of every DMU-based simulation allocates no result object.  The
contract for callers: a returned result is valid until the *next* ISA
instruction issued to the same DMU; copy the fields you need into locals
before then (in the simulator this means before the next ``yield`` after
releasing the DMU lock), or call :meth:`detach` to obtain a private copy
(used on the cold blocked-retry path, where the result outlives a wait).
"""

from __future__ import annotations

from typing import Optional


class DMUBlocked:
    """The instruction would block: ``structure`` has no free entry."""

    __slots__ = ("structure", "cycles")

    blocked = True

    def __init__(self, structure: str, cycles: int = 0) -> None:
        self.structure = structure
        self.cycles = cycles

    def detach(self) -> "DMUBlocked":
        """Private copy of this (possibly pooled) result."""
        return DMUBlocked(self.structure, self.cycles)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DMUBlocked(structure={self.structure!r}, cycles={self.cycles})"


class CreateTaskResult:
    """Outcome of ``create_task(task_desc)``."""

    __slots__ = ("cycles", "task_id")

    blocked = False

    def __init__(self, cycles: int, task_id: int) -> None:
        self.cycles = cycles
        self.task_id = task_id

    def detach(self) -> "CreateTaskResult":
        """Private copy of this (possibly pooled) result."""
        return CreateTaskResult(self.cycles, self.task_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CreateTaskResult(cycles={self.cycles}, task_id={self.task_id})"


class AddDependenceResult:
    """Outcome of ``add_dependence(task_desc, dep_addr, size, direction)``."""

    __slots__ = ("cycles", "dependence_id", "predecessors_added")

    blocked = False

    def __init__(self, cycles: int, dependence_id: int, predecessors_added: int) -> None:
        self.cycles = cycles
        self.dependence_id = dependence_id
        self.predecessors_added = predecessors_added

    def detach(self) -> "AddDependenceResult":
        """Private copy of this (possibly pooled) result."""
        return AddDependenceResult(self.cycles, self.dependence_id, self.predecessors_added)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AddDependenceResult(cycles={self.cycles}, "
            f"dependence_id={self.dependence_id}, "
            f"predecessors_added={self.predecessors_added})"
        )


class CompleteCreationResult:
    """Outcome of the creation-completion step.

    The paper's Algorithms only enqueue tasks into the Ready Queue from
    ``finish_task``; a task whose dependences are all already satisfied when
    it is created would otherwise never become ready.  This model therefore
    marks the end of a task's registration (conceptually folded into the last
    ``add_dependence`` / the ``create_task`` of a dependence-free task) and
    pushes the task to the Ready Queue when its predecessor count is zero.
    """

    __slots__ = ("cycles", "became_ready")

    blocked = False

    def __init__(self, cycles: int, became_ready: bool) -> None:
        self.cycles = cycles
        self.became_ready = became_ready

    def detach(self) -> "CompleteCreationResult":
        """Private copy of this (possibly pooled) result."""
        return CompleteCreationResult(self.cycles, self.became_ready)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompleteCreationResult(cycles={self.cycles}, became_ready={self.became_ready})"


class FinishTaskResult:
    """Outcome of ``finish_task(task_desc)``."""

    __slots__ = ("cycles", "tasks_woken")

    blocked = False

    def __init__(self, cycles: int, tasks_woken: int) -> None:
        self.cycles = cycles
        self.tasks_woken = tasks_woken

    def detach(self) -> "FinishTaskResult":
        """Private copy of this (possibly pooled) result."""
        return FinishTaskResult(self.cycles, self.tasks_woken)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FinishTaskResult(cycles={self.cycles}, tasks_woken={self.tasks_woken})"


class GetReadyTaskResult:
    """Outcome of ``get_ready_task()``.

    ``descriptor_address`` is ``None`` when the Ready Queue is empty (the
    hardware returns a null pointer).
    """

    __slots__ = ("cycles", "descriptor_address", "num_successors")

    blocked = False

    def __init__(
        self,
        cycles: int,
        descriptor_address: Optional[int],
        num_successors: int = 0,
    ) -> None:
        self.cycles = cycles
        self.descriptor_address = descriptor_address
        self.num_successors = num_successors

    @property
    def is_null(self) -> bool:
        return self.descriptor_address is None

    def detach(self) -> "GetReadyTaskResult":
        """Private copy of this (possibly pooled) result."""
        return GetReadyTaskResult(self.cycles, self.descriptor_address, self.num_successors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GetReadyTaskResult(cycles={self.cycles}, "
            f"descriptor_address={self.descriptor_address!r}, "
            f"num_successors={self.num_successors})"
        )
