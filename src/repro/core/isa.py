"""Result types of the four TDM ISA instructions.

The runtime system communicates with the DMU through four new ISA
instructions (Section III-A of the paper): ``create_task``,
``add_dependence``, ``finish_task`` and ``get_ready_task``.  In this model an
instruction is a method call on :class:`~repro.core.dmu.DependenceManagementUnit`
that returns one of the result objects below.  Every result carries the number
of DMU cycles the operation consumed (one cycle per SRAM access times the
configured access latency); the simulator adds issue and NoC latencies on top.

When a DMU structure has no free entry the instruction cannot make progress;
instead of mutating state partially the DMU returns :class:`DMUBlocked`, and
the simulated core retries once capacity is freed (the paper gives the ISA
instructions blocking/barrier semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DMUBlocked:
    """The instruction would block: ``structure`` has no free entry."""

    structure: str
    cycles: int = 0

    @property
    def blocked(self) -> bool:
        return True


@dataclass(frozen=True)
class CreateTaskResult:
    """Outcome of ``create_task(task_desc)``."""

    cycles: int
    task_id: int

    @property
    def blocked(self) -> bool:
        return False


@dataclass(frozen=True)
class AddDependenceResult:
    """Outcome of ``add_dependence(task_desc, dep_addr, size, direction)``."""

    cycles: int
    dependence_id: int
    predecessors_added: int

    @property
    def blocked(self) -> bool:
        return False


@dataclass(frozen=True)
class CompleteCreationResult:
    """Outcome of the creation-completion step.

    The paper's Algorithms only enqueue tasks into the Ready Queue from
    ``finish_task``; a task whose dependences are all already satisfied when
    it is created would otherwise never become ready.  This model therefore
    marks the end of a task's registration (conceptually folded into the last
    ``add_dependence`` / the ``create_task`` of a dependence-free task) and
    pushes the task to the Ready Queue when its predecessor count is zero.
    """

    cycles: int
    became_ready: bool

    @property
    def blocked(self) -> bool:
        return False


@dataclass(frozen=True)
class FinishTaskResult:
    """Outcome of ``finish_task(task_desc)``."""

    cycles: int
    tasks_woken: int

    @property
    def blocked(self) -> bool:
        return False


@dataclass(frozen=True)
class GetReadyTaskResult:
    """Outcome of ``get_ready_task()``.

    ``descriptor_address`` is ``None`` when the Ready Queue is empty (the
    hardware returns a null pointer).
    """

    cycles: int
    descriptor_address: Optional[int]
    num_successors: int = 0

    @property
    def blocked(self) -> bool:
        return False

    @property
    def is_null(self) -> bool:
        return self.descriptor_address is None
