"""The Dependence Table: direct-access SRAM indexed by internal dependence IDs.

Each entry (Figure 4 of the paper) stores the internal ID of the last task
that writes the dependence (plus a valid bit) and a pointer to the list of
reader tasks in the Reader List Array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import DMUProtocolError


@dataclass
class DependenceTableEntry:
    """One in-flight dependence tracked by the DMU."""

    last_writer: int = -1
    last_writer_valid: bool = False
    reader_list: int = -1

    def set_last_writer(self, task_id: int) -> None:
        self.last_writer = task_id
        self.last_writer_valid = True

    def invalidate_last_writer(self) -> None:
        self.last_writer = -1
        self.last_writer_valid = False


class DependenceTable:
    """Direct-access table of in-flight dependences."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        self._entries: List[Optional[DependenceTableEntry]] = [None] * num_entries
        self.peak_occupancy = 0
        self._occupancy = 0

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def install(self, dep_id: int, entry: DependenceTableEntry) -> None:
        """Initialize the entry for ``dep_id`` (first add_dependence of an address)."""
        self._check_id(dep_id)
        if self._entries[dep_id] is not None:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is already in use")
        self._entries[dep_id] = entry
        self._occupancy += 1
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    def get(self, dep_id: int) -> DependenceTableEntry:
        self._check_id(dep_id)
        entry = self._entries[dep_id]
        if entry is None:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is not valid")
        return entry

    def free(self, dep_id: int) -> None:
        self._check_id(dep_id)
        if self._entries[dep_id] is None:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is already free")
        self._entries[dep_id] = None
        self._occupancy -= 1

    def is_valid(self, dep_id: int) -> bool:
        self._check_id(dep_id)
        return self._entries[dep_id] is not None

    def _check_id(self, dep_id: int) -> None:
        if not (0 <= dep_id < self.num_entries):
            raise DMUProtocolError(
                f"dependence id {dep_id} out of range [0, {self.num_entries})"
            )
