"""The Dependence Table: direct-access SRAM indexed by internal dependence IDs.

Each entry (Figure 4 of the paper) stores the internal ID of the last task
that writes the dependence (plus a valid bit) and a pointer to the list of
reader tasks in the Reader List Array.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DMUProtocolError


class DependenceTableEntry:
    """One in-flight dependence tracked by the DMU.

    A ``__slots__`` class (one is allocated per first ``add_dependence`` of
    an address; the generated dataclass ``__init__`` was measurable there).
    """

    __slots__ = ("last_writer", "last_writer_valid", "reader_list")

    def __init__(
        self,
        last_writer: int = -1,
        last_writer_valid: bool = False,
        reader_list: int = -1,
    ) -> None:
        self.last_writer = last_writer
        self.last_writer_valid = last_writer_valid
        self.reader_list = reader_list

    def set_last_writer(self, task_id: int) -> None:
        self.last_writer = task_id
        self.last_writer_valid = True

    def invalidate_last_writer(self) -> None:
        self.last_writer = -1
        self.last_writer_valid = False


class DependenceTable:
    """Direct-access table of in-flight dependences."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        self._entries: List[Optional[DependenceTableEntry]] = [None] * num_entries
        self.peak_occupancy = 0
        self._occupancy = 0

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def install(self, dep_id: int, entry: DependenceTableEntry) -> None:
        """Initialize the entry for ``dep_id`` (first add_dependence of an address)."""
        self._check_id(dep_id)
        if self._entries[dep_id] is not None:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is already in use")
        self._entries[dep_id] = entry
        self._occupancy += 1
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    def get(self, dep_id: int) -> DependenceTableEntry:
        """Read the entry for ``dep_id`` (bounds check inlined: hot path)."""
        if 0 <= dep_id < self.num_entries:
            entry = self._entries[dep_id]
            if entry is not None:
                return entry
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is not valid")
        raise DMUProtocolError(
            f"dependence id {dep_id} out of range [0, {self.num_entries})"
        )

    def free(self, dep_id: int) -> None:
        self._check_id(dep_id)
        if self._entries[dep_id] is None:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is already free")
        self._entries[dep_id] = None
        self._occupancy -= 1

    def is_valid(self, dep_id: int) -> bool:
        if 0 <= dep_id < self.num_entries:
            return self._entries[dep_id] is not None
        raise DMUProtocolError(
            f"dependence id {dep_id} out of range [0, {self.num_entries})"
        )

    def _check_id(self, dep_id: int) -> None:
        if not (0 <= dep_id < self.num_entries):
            raise DMUProtocolError(
                f"dependence id {dep_id} out of range [0, {self.num_entries})"
            )
