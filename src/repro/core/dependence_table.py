"""The Dependence Table: direct-access SRAM indexed by internal dependence IDs.

Each entry (Figure 4 of the paper) stores the internal ID of the last task
that writes the dependence (plus a valid bit) and a pointer to the list of
reader tasks in the Reader List Array.

Storage is struct-of-arrays: one column per field, indexed by the internal
dependence ID (the handle handed out by the DAT).  The first
``add_dependence`` of an address writes the columns in place instead of
allocating an entry object, and the DMU reads/updates columns directly.
Columns grow on demand (DAT IDs are dense from zero), so "ideal"
configurations never pay for untouched capacity.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DMUProtocolError
from .backends import StorageBackend, resolve_backend


class DependenceTable:
    """Direct-access table of in-flight dependences, stored as parallel columns.

    Public columns (lists indexed by internal dependence ID):

    * ``last_writer`` — internal task ID of the last writer (``-1`` when none)
    * ``last_writer_valid`` — 0/1 valid bit for ``last_writer``
    * ``reader_list`` — Reader List Array head handle (``-1`` when absent)
    * ``valid`` — 0/1 occupancy bit
    * ``address`` / ``size`` — the dependence address this entry aliases
      (model-level bookkeeping, not a Figure-4 field: the DMU needs it to
      release the DAT mapping when the entry is recycled)
    """

    def __init__(self, num_entries: int, backend: Optional[StorageBackend] = None) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        backend = backend if backend is not None else resolve_backend()
        self._backend = backend
        self.last_writer: List[int] = backend.make_column()
        self.last_writer_valid: List[int] = backend.make_column()
        self.reader_list: List[int] = backend.make_column()
        self.valid: List[int] = backend.make_column()
        self.address: List[int] = backend.make_column()
        self.size: List[int] = backend.make_column()
        self._size = 0
        self.peak_occupancy = 0
        self._occupancy = 0

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def _grow_to(self, size: int) -> None:
        extra = size - self._size
        padding = [0] * extra
        self.last_writer.extend(padding)
        self.last_writer_valid.extend(padding)
        self.reader_list.extend(padding)
        self.valid.extend(padding)
        self.address.extend(padding)
        self.size.extend(padding)
        self._size = size

    def install(self, dep_id: int, address: int = 0, size: int = 0) -> None:
        """Initialize the columns for ``dep_id`` (first add_dependence of an address)."""
        if not (0 <= dep_id < self.num_entries):
            raise DMUProtocolError(
                f"dependence id {dep_id} out of range [0, {self.num_entries})"
            )
        if dep_id >= self._size:
            self._grow_to(dep_id + 1)
        elif self.valid[dep_id]:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is already in use")
        self.last_writer[dep_id] = -1
        self.last_writer_valid[dep_id] = 0
        self.reader_list[dep_id] = -1
        self.valid[dep_id] = 1
        self.address[dep_id] = address
        self.size[dep_id] = size
        self._occupancy += 1
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy

    def require(self, dep_id: int) -> int:
        """Bounds/validity check; returns ``dep_id`` for chaining."""
        if 0 <= dep_id < self._size and self.valid[dep_id]:
            return dep_id
        if 0 <= dep_id < self.num_entries:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is not valid")
        raise DMUProtocolError(
            f"dependence id {dep_id} out of range [0, {self.num_entries})"
        )

    def free(self, dep_id: int) -> None:
        if not (0 <= dep_id < self.num_entries):
            raise DMUProtocolError(
                f"dependence id {dep_id} out of range [0, {self.num_entries})"
            )
        if dep_id >= self._size or not self.valid[dep_id]:
            raise DMUProtocolError(f"Dependence Table entry {dep_id} is already free")
        self.valid[dep_id] = 0
        self._occupancy -= 1

    def is_valid(self, dep_id: int) -> bool:
        if 0 <= dep_id < self.num_entries:
            return dep_id < self._size and bool(self.valid[dep_id])
        raise DMUProtocolError(
            f"dependence id {dep_id} out of range [0, {self.num_entries})"
        )
