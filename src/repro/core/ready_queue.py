"""The DMU Ready Queue: a FIFO of internal task IDs ready for execution.

The queue carries the same integer handles as the columnar Task Table: a
popped ID indexes the table's columns directly (``get_ready_task`` reads the
descriptor address and successor count straight from them).  Entries are
plain ints in a ``collections.deque`` — already columnar in spirit, with no
per-entry object to convert.

The default configuration sizes the Ready Queue with as many entries as the
Task Table (2048), so it can never overflow: a task ID is only inserted when
the task is in flight, and each in-flight task occupies at most one slot.
The model therefore treats overflow as a protocol error rather than a
blocking condition, and the capacity is used by the storage model only.
"""

from __future__ import annotations

from typing import Deque, Optional

from ..errors import DMUProtocolError
from .backends import StorageBackend, resolve_backend


class ReadyQueue:
    """FIFO queue of ready task IDs with occupancy statistics."""

    def __init__(self, capacity: int, backend: Optional[StorageBackend] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        backend = backend if backend is not None else resolve_backend()
        self._backend = backend
        self._queue: Deque[int] = backend.make_queue()
        self.total_pushes = 0
        self.total_pops = 0
        self.peak_occupancy = 0

    def push(self, task_id: int) -> None:
        """Append a newly ready task ID."""
        queue = self._queue
        if len(queue) >= self.capacity:
            raise DMUProtocolError(
                "Ready Queue overflow: more ready tasks than in-flight task entries"
            )
        queue.append(task_id)
        self.total_pushes += 1
        size = len(queue)
        if size > self.peak_occupancy:
            self.peak_occupancy = size

    def pop(self) -> Optional[int]:
        """Remove and return the oldest ready task ID (None when empty)."""
        if not self._queue:
            return None
        self.total_pops += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue
