"""The paper's contribution: the Dependence Management Unit (DMU).

The DMU keeps a hardware representation of the task dependence graph and
exposes ready tasks to the runtime system.  This package models every
structure of Figure 3 of the paper:

* :mod:`repro.core.alias_table` — TAT and DAT (set-associative alias tables
  with free-ID queues and dynamic index-bit selection),
* :mod:`repro.core.task_table` / :mod:`repro.core.dependence_table` —
  direct-access SRAM tables indexed by internal IDs (struct-of-arrays
  columns, one per Figure-4 field),
* :mod:`repro.core.list_array` — inode-style successor / dependence / reader
  list arrays (flat columnar slot slab + next/in-use/valid columns),
* :mod:`repro.core.ready_queue` — the FIFO of ready task IDs,
* :mod:`repro.core.dmu` — the unit itself, implementing Algorithms 1 and 2
  with per-instruction cycle accounting and blocking on full structures,
* :mod:`repro.core.backends` — pluggable storage/execution backends
  (``pure`` Python lists vs the ``accel`` specialized kernels + numpy
  audits); byte-identical results, selectable via ``DMUConfig.backend``,
* :mod:`repro.core.storage` — the storage/area model behind Table III.
"""

from .alias_table import AliasTable, dat_index_start_bit
from .backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    StorageBackend,
    numpy_available,
    resolve_backend,
)
from .list_array import ListArray
from .task_table import TaskTable
from .dependence_table import DependenceTable
from .ready_queue import ReadyQueue
from .isa import (
    AddDependenceResult,
    CreateTaskResult,
    DMUBlocked,
    FinishTaskResult,
    GetReadyTaskResult,
)
from .dmu import DependenceManagementUnit
from .stats import DMUStats
from .storage import (
    DMUStorageModel,
    StructureStorage,
    TaskSuperscalarStorageModel,
    CarbonStorageModel,
)

__all__ = [
    "AliasTable",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "StorageBackend",
    "numpy_available",
    "resolve_backend",
    "dat_index_start_bit",
    "ListArray",
    "TaskTable",
    "DependenceTable",
    "ReadyQueue",
    "DependenceManagementUnit",
    "DMUStats",
    "DMUBlocked",
    "CreateTaskResult",
    "AddDependenceResult",
    "FinishTaskResult",
    "GetReadyTaskResult",
    "DMUStorageModel",
    "StructureStorage",
    "TaskSuperscalarStorageModel",
    "CarbonStorageModel",
]
