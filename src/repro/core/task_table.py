"""The Task Table: direct-access SRAM indexed by internal task IDs.

Each entry (Figure 4 of the paper) holds the task-descriptor address, the
predecessor and successor counters, and pointers to the task's successor list
and dependence list in the corresponding list arrays.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DMUProtocolError


class TaskTableEntry:
    """One in-flight task tracked by the DMU.

    A ``__slots__`` class (one is allocated per ``create_task`` ISA
    instruction; the generated dataclass ``__init__`` was measurable there).
    """

    __slots__ = ("descriptor_address", "predecessor_count", "successor_count",
                 "successor_list", "dependence_list", "creation_complete", "valid")

    def __init__(
        self,
        descriptor_address: int,
        predecessor_count: int = 0,
        successor_count: int = 0,
        successor_list: int = -1,
        dependence_list: int = -1,
        creation_complete: bool = False,
        valid: bool = True,
    ) -> None:
        self.descriptor_address = descriptor_address
        self.predecessor_count = predecessor_count
        self.successor_count = successor_count
        self.successor_list = successor_list
        self.dependence_list = dependence_list
        self.creation_complete = creation_complete
        self.valid = valid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskTableEntry(descriptor_address={self.descriptor_address:#x}, "
            f"predecessors={self.predecessor_count}, successors={self.successor_count})"
        )


class TaskTable:
    """Direct-access table of in-flight tasks."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        self._entries: List[Optional[TaskTableEntry]] = [None] * num_entries
        self.peak_occupancy = 0
        self._occupancy = 0

    @property
    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return self._occupancy

    def install(self, task_id: int, entry: TaskTableEntry) -> None:
        """Initialize the entry for ``task_id`` (create_task)."""
        self._check_id(task_id)
        if self._entries[task_id] is not None:
            raise DMUProtocolError(f"Task Table entry {task_id} is already in use")
        self._entries[task_id] = entry
        self._occupancy += 1
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    def get(self, task_id: int) -> TaskTableEntry:
        """Read the entry for ``task_id``.

        Called several times per ISA instruction, so the bounds check is
        inlined rather than delegated to :meth:`_check_id`.
        """
        if 0 <= task_id < self.num_entries:
            entry = self._entries[task_id]
            if entry is not None:
                return entry
            raise DMUProtocolError(f"Task Table entry {task_id} is not valid")
        raise DMUProtocolError(
            f"task id {task_id} out of range [0, {self.num_entries})"
        )

    def free(self, task_id: int) -> None:
        """Invalidate the entry for ``task_id`` (finish_task)."""
        self._check_id(task_id)
        if self._entries[task_id] is None:
            raise DMUProtocolError(f"Task Table entry {task_id} is already free")
        self._entries[task_id] = None
        self._occupancy -= 1

    def is_valid(self, task_id: int) -> bool:
        if 0 <= task_id < self.num_entries:
            return self._entries[task_id] is not None
        raise DMUProtocolError(
            f"task id {task_id} out of range [0, {self.num_entries})"
        )

    def _check_id(self, task_id: int) -> None:
        if not (0 <= task_id < self.num_entries):
            raise DMUProtocolError(
                f"task id {task_id} out of range [0, {self.num_entries})"
            )
