"""The Task Table: direct-access SRAM indexed by internal task IDs.

Each entry (Figure 4 of the paper) holds the task-descriptor address, the
predecessor and successor counters, and pointers to the task's successor list
and dependence list in the corresponding list arrays.

Storage is struct-of-arrays: one column per field, indexed by the internal
task ID (the *handle* handed out by the TAT).  ``create_task`` writes the
columns in place instead of allocating an entry object per instruction, and
the DMU's hot paths read/update columns directly (``table.predecessor_count
[task_id]``).  Columns grow on demand — the TAT hands out IDs densely from
zero (fresh counter plus a recycled-ID stack), so very large "ideal"
configurations never pay for untouched capacity.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import DMUProtocolError
from .backends import StorageBackend, resolve_backend


class TaskTable:
    """Direct-access table of in-flight tasks, stored as parallel columns.

    Public columns (lists indexed by internal task ID; read and written
    directly by the DMU's instruction paths):

    * ``descriptor_address`` — 64-bit task-descriptor address
    * ``predecessor_count`` / ``successor_count`` — dependence counters
    * ``successor_list`` / ``dependence_list`` — list-array head handles
    * ``creation_complete`` — 0/1, set by the creation-completion step
    * ``valid`` — 0/1 occupancy bit
    """

    def __init__(self, num_entries: int, backend: Optional[StorageBackend] = None) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        backend = backend if backend is not None else resolve_backend()
        self._backend = backend
        self.descriptor_address: List[int] = backend.make_column()
        self.predecessor_count: List[int] = backend.make_column()
        self.successor_count: List[int] = backend.make_column()
        self.successor_list: List[int] = backend.make_column()
        self.dependence_list: List[int] = backend.make_column()
        self.creation_complete: List[int] = backend.make_column()
        self.valid: List[int] = backend.make_column()
        self._size = 0
        self.peak_occupancy = 0
        self._occupancy = 0

    @property
    def occupancy(self) -> int:
        """Number of valid entries currently held."""
        return self._occupancy

    def _grow_to(self, size: int) -> None:
        extra = size - self._size
        padding = [0] * extra
        self.descriptor_address.extend(padding)
        self.predecessor_count.extend(padding)
        self.successor_count.extend(padding)
        self.successor_list.extend(padding)
        self.dependence_list.extend(padding)
        self.creation_complete.extend(padding)
        self.valid.extend(padding)
        self._size = size

    def install(
        self,
        task_id: int,
        descriptor_address: int,
        successor_list: int,
        dependence_list: int,
    ) -> None:
        """Initialize the columns for ``task_id`` (create_task)."""
        if not (0 <= task_id < self.num_entries):
            raise DMUProtocolError(
                f"task id {task_id} out of range [0, {self.num_entries})"
            )
        if task_id >= self._size:
            self._grow_to(task_id + 1)
        elif self.valid[task_id]:
            raise DMUProtocolError(f"Task Table entry {task_id} is already in use")
        self.descriptor_address[task_id] = descriptor_address
        self.predecessor_count[task_id] = 0
        self.successor_count[task_id] = 0
        self.successor_list[task_id] = successor_list
        self.dependence_list[task_id] = dependence_list
        self.creation_complete[task_id] = 0
        self.valid[task_id] = 1
        self._occupancy += 1
        if self._occupancy > self.peak_occupancy:
            self.peak_occupancy = self._occupancy

    def require(self, task_id: int) -> int:
        """Bounds/validity check; returns ``task_id`` for chaining.

        The DMU's hot paths skip this (IDs handed out by the TAT are valid
        by construction); it guards the externally-reachable entry points.
        """
        if 0 <= task_id < self._size and self.valid[task_id]:
            return task_id
        if 0 <= task_id < self.num_entries:
            raise DMUProtocolError(f"Task Table entry {task_id} is not valid")
        raise DMUProtocolError(
            f"task id {task_id} out of range [0, {self.num_entries})"
        )

    def free(self, task_id: int) -> None:
        """Invalidate the entry for ``task_id`` (finish_task)."""
        if not (0 <= task_id < self.num_entries):
            raise DMUProtocolError(
                f"task id {task_id} out of range [0, {self.num_entries})"
            )
        if task_id >= self._size or not self.valid[task_id]:
            raise DMUProtocolError(f"Task Table entry {task_id} is already free")
        self.valid[task_id] = 0
        self._occupancy -= 1

    def is_valid(self, task_id: int) -> bool:
        if 0 <= task_id < self.num_entries:
            return task_id < self._size and bool(self.valid[task_id])
        raise DMUProtocolError(
            f"task id {task_id} out of range [0, {self.num_entries})"
        )
